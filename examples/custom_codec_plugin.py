#!/usr/bin/env python3
"""Writing a custom codec plug-in (the extensibility story of section 3.3).

The vxZIP archiver's codec set is extensible: a plug-in supplies a native
encoder plus a decoder written in vxc, and the archiver takes care of
embedding the decoder and attaching it to every file it compresses.  This
example builds a tiny domain-specific codec -- run-length encoding for
sensor/telemetry dumps full of repeated samples -- registers it, archives
data with it, and then extracts the data using only the archived decoder.

Run with:  python examples/custom_codec_plugin.py
"""

import io
import random
import struct

import repro.api as vxa
from repro.codecs.base import Codec, CodecInfo
from repro.codecs.registry import CodecRegistry
from repro.errors import CodecError
from repro.vxc.compiler import CATEGORY_DECODER, CATEGORY_LIBRARY, SourceUnit
from repro.codecs.guest.lib import LIB_IO

MAGIC = b"VXR1"

_GUEST_DECODER = r"""
// RLE telemetry decoder: stream of (count u8, value u8) pairs after the header.
int decode_stream() {
    int src;
    int src_len;
    int original;
    int offset;
    int produced;
    int count;
    int value;
    int i;
    src = in_read_all();
    src_len = in_len;
    if (src_len < 8) { exit(40); }
    if (load_u32le(src) != 0x31525856) { exit(41); }       // "VXR1"
    original = load_u32le(src + 4);
    out_init();
    offset = 8;
    produced = 0;
    while (produced < original) {
        if (offset + 2 > src_len) { exit(42); }
        count = peek8(src + offset);
        value = peek8(src + offset + 1);
        offset = offset + 2;
        for (i = 0; i < count; i = i + 1) { out_byte(value); }
        produced = produced + count;
    }
    if (produced != original) { exit(43); }
    out_flush();
    return 0;
}

int main() {
    while (1) {
        decode_stream();
        if (done() != 0) { break; }
        heap_reset();
    }
    return 0;
}
"""


class TelemetryRleCodec(Codec):
    """Run-length codec for telemetry dumps (a domain-specific plug-in)."""

    info = CodecInfo(
        name="vxrle",
        description="Run-length codec for repetitive telemetry dumps",
        availability="examples/custom_codec_plugin.py",
        output_format="raw data",
        category="general",
        lossy=False,
    )

    @property
    def magic(self) -> bytes:
        return MAGIC

    def can_encode(self, data: bytes) -> bool:
        return True

    def encode(self, data: bytes, **options) -> bytes:
        out = bytearray(struct.pack("<4sI", MAGIC, len(data)))
        index = 0
        while index < len(data):
            value = data[index]
            run = 1
            while index + run < len(data) and data[index + run] == value and run < 255:
                run += 1
            out += bytes((run, value))
            index += run
        return bytes(out)

    def decode(self, data: bytes) -> bytes:
        if data[:4] != MAGIC:
            raise CodecError("not a vxrle stream")
        (original,) = struct.unpack_from("<I", data, 4)
        out = bytearray()
        offset = 8
        while len(out) < original:
            count, value = data[offset], data[offset + 1]
            out += bytes([value]) * count
            offset += 2
        return bytes(out)

    def guest_units(self):
        return [
            SourceUnit("lib_io", LIB_IO, CATEGORY_LIBRARY),
            SourceUnit("vxrle", _GUEST_DECODER, CATEGORY_DECODER),
        ]


def make_telemetry(samples: int, seed: int = 0) -> bytes:
    """Telemetry-like dump: long stretches of identical sensor readings."""
    rng = random.Random(seed)
    out = bytearray()
    level = 128
    while len(out) < samples:
        level = max(0, min(255, level + rng.randint(-2, 2)))
        out += bytes([level]) * rng.randint(20, 200)
    return bytes(out[:samples])


def main() -> None:
    telemetry = make_telemetry(50_000, seed=7)

    registry = CodecRegistry()                 # the six standard codecs...
    registry.register(TelemetryRleCodec())     # ...plus our plug-in

    buffer = io.BytesIO()
    with vxa.create(buffer, vxa.WriteOptions(registry=registry)) as builder:
        info = builder.add("telemetry/day001.bin", telemetry, codec="vxrle")
        manifest = builder.finish()
    print(f"telemetry dump : {info.original_size} bytes")
    print(f"stored as      : {info.stored_size} bytes with codec {info.codec}")
    print(f"archive        : {manifest.archive_size} bytes, decoders embedded: "
          f"{[d.codec_name for d in manifest.decoders]}")

    # A reader that has never heard of 'vxrle' still extracts the data,
    # because the decoder travels with the archive.
    buffer.seek(0)
    with vxa.open(buffer, vxa.ReadOptions(mode=vxa.MODE_VXA,
                                          registry=CodecRegistry())) as archive:
        result = archive.extract("telemetry/day001.bin")
    print(f"extracted      : {len(result.data)} bytes via archived "
          f"{result.codec_name} decoder (match: {result.data == telemetry})")


if __name__ == "__main__":
    main()
