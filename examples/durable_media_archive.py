#!/usr/bin/env python3
"""Durable media archive: the paper's motivating long-term scenario.

A photographer/musician archives media today; decades later the codecs used
are obsolete and the reading software has no decoders for them.  With VXA the
archive still opens, because every file carries its own decoder and the only
thing the future reader must provide is the (stable) virtual machine.

The script:

1. archives photographs and music, losslessly and lossily, plus files that
   are *already* compressed (the recogniser-decoder path);
2. simulates the future by constructing a reader whose codec registry is
   empty of media codecs;
3. extracts everything into plain BMP/WAV -- the simple uncompressed formats
   the paper argues will remain readable -- and prints quality statistics;
4. shows the storage-overhead amortisation of section 5.3 on this archive.

Run with:  python examples/durable_media_archive.py
"""

import io

import numpy as np

import repro.api as vxa
from repro.codecs.registry import CodecRegistry
from repro.codecs.vximg import VximgCodec
from repro.codecs.vxz import VxzCodec
from repro.formats.bmp import read_bmp
from repro.formats.ppm import write_ppm
from repro.formats.wav import read_wav, write_wav
from repro.workloads.audio import synthetic_music
from repro.workloads.images import synthetic_photo


def main() -> None:
    photos = {f"photos/holiday_{i}.ppm": synthetic_photo(72, 56, seed=10 + i) for i in range(3)}
    songs = {
        f"music/track_{i}.wav": synthetic_music(seconds=1.0, sample_rate=16000,
                                                channels=2, seed=20 + i)
        for i in range(2)
    }
    # One file arrives already compressed by an "old tool" (the redec path).
    legacy_image = VximgCodec(quality=60).encode_pixels(synthetic_photo(48, 48, seed=30))

    buffer = io.BytesIO()
    with vxa.create(buffer, vxa.WriteOptions(allow_lossy=True)) as builder:
        for name, pixels in photos.items():
            builder.add(name, write_ppm(pixels))
        for name, audio in songs.items():
            builder.add(name, write_wav(audio), codec="vxsnd")         # lossy, like Ogg
            builder.add(name.replace(".wav", ".lossless.wav"), write_wav(audio),
                        codec="vxflac")                                 # archival master
        builder.add("legacy/scan_1999.vxi", legacy_image)
        manifest = builder.finish()

    print("=== archive written today ===")
    for info in manifest.files:
        kind = "pre-compressed" if info.precompressed else f"encoded with {info.codec}"
        print(f"  {info.name:32s} {info.original_size:7d} -> {info.stored_size:7d} bytes ({kind})")
    print(f"  total archive: {manifest.archive_size} bytes, "
          f"decoder overhead {manifest.decoder_overhead_fraction * 100:.1f}% "
          f"({manifest.decoder_overhead_bytes} bytes across "
          f"{len(manifest.decoders)} embedded decoders)")

    # ----------------------------------------------------------- decades later
    print("\n=== decades later: no media codecs installed ===")
    future_options = vxa.ReadOptions(
        mode=vxa.MODE_VXA,
        force_decode=True,
        registry=CodecRegistry([VxzCodec()], default="vxz"),
    )
    buffer.seek(0)
    reader = vxa.open(buffer, future_options)
    for name in reader.names():
        result = reader.extract(name)
        if result.data[:2] == b"BM":
            pixels = read_bmp(result.data)
            detail = f"BMP image {pixels.shape[1]}x{pixels.shape[0]}"
            source_name = name if name in photos else None
            if source_name:
                error = np.abs(pixels.astype(int) - photos[source_name].astype(int)).mean()
                detail += f", mean error vs original {error:.1f}/255"
        elif result.data[:4] == b"RIFF":
            audio = read_wav(result.data)
            detail = (f"WAV audio {audio.num_frames} frames @ {audio.sample_rate} Hz "
                      f"({audio.channels} ch)")
        else:
            detail = f"raw data, {len(result.data)} bytes"
        print(f"  {name:32s} -> {detail}   [decoded by archived {result.codec_name} decoder]")
    reader.close()

    # --------------------------------------------------- storage amortisation
    print("\n=== decoder overhead amortisation (paper section 5.3) ===")
    for count in (1, 4, 8):
        with vxa.create(io.BytesIO(), vxa.WriteOptions(allow_lossy=True)) as builder_n:
            for index in range(count):
                builder_n.add(f"track_{index}.wav",
                              write_wav(synthetic_music(seconds=1.0, sample_rate=16000,
                                                        channels=2, seed=40 + index)),
                              codec="vxsnd")
            manifest_n = builder_n.finish()
        overhead = manifest_n.decoder_overhead_fraction
        print(f"  {count:2d} song(s): archive {manifest_n.archive_size:8d} bytes, "
              f"decoder overhead {overhead * 100:5.2f}%")


if __name__ == "__main__":
    main()
