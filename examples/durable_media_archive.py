#!/usr/bin/env python3
"""Durable media archive: the paper's motivating long-term scenario.

A photographer/musician archives media today; decades later the codecs used
are obsolete and the reading software has no decoders for them.  With VXA the
archive still opens, because every file carries its own decoder and the only
thing the future reader must provide is the (stable) virtual machine.

The script:

1. archives photographs and music, losslessly and lossily, plus files that
   are *already* compressed (the recogniser-decoder path);
2. simulates the future by constructing a reader whose codec registry is
   empty of media codecs;
3. extracts everything into plain BMP/WAV -- the simple uncompressed formats
   the paper argues will remain readable -- and prints quality statistics;
4. shows the storage-overhead amortisation of section 5.3 on this archive.

Run with:  python examples/durable_media_archive.py
"""

import numpy as np

from repro.codecs.registry import CodecRegistry
from repro.codecs.vximg import VximgCodec
from repro.codecs.vxsnd import VxsndCodec
from repro.codecs.vxz import VxzCodec
from repro.core import ArchiveReader, ArchiveWriter, MODE_VXA
from repro.formats.bmp import read_bmp
from repro.formats.ppm import write_ppm
from repro.formats.wav import read_wav, write_wav
from repro.workloads.audio import synthetic_music
from repro.workloads.images import synthetic_photo


def main() -> None:
    photos = {f"photos/holiday_{i}.ppm": synthetic_photo(72, 56, seed=10 + i) for i in range(3)}
    songs = {
        f"music/track_{i}.wav": synthetic_music(seconds=1.0, sample_rate=16000,
                                                channels=2, seed=20 + i)
        for i in range(2)
    }
    # One file arrives already compressed by an "old tool" (the redec path).
    legacy_image = VximgCodec(quality=60).encode_pixels(synthetic_photo(48, 48, seed=30))

    writer = ArchiveWriter(allow_lossy=True)
    for name, pixels in photos.items():
        writer.add_file(name, write_ppm(pixels))
    for name, audio in songs.items():
        writer.add_file(name, write_wav(audio), codec="vxsnd")         # lossy, like Ogg
        writer.add_file(name.replace(".wav", ".lossless.wav"), write_wav(audio),
                        codec="vxflac")                                 # archival master
    writer.add_file("legacy/scan_1999.vxi", legacy_image)
    archive = writer.finish()
    manifest = writer.manifest

    print("=== archive written today ===")
    for info in manifest.files:
        kind = "pre-compressed" if info.precompressed else f"encoded with {info.codec}"
        print(f"  {info.name:32s} {info.original_size:7d} -> {info.stored_size:7d} bytes ({kind})")
    print(f"  total archive: {len(archive)} bytes, "
          f"decoder overhead {manifest.decoder_overhead_fraction * 100:.1f}% "
          f"({manifest.decoder_overhead_bytes} bytes across "
          f"{len(manifest.decoders)} embedded decoders)")

    # ----------------------------------------------------------- decades later
    print("\n=== decades later: no media codecs installed ===")
    future_registry = CodecRegistry([VxzCodec()], default="vxz")
    reader = ArchiveReader(archive, registry=future_registry)
    for name in reader.names():
        result = reader.extract(name, mode=MODE_VXA, force_decode=True)
        if result.data[:2] == b"BM":
            pixels = read_bmp(result.data)
            detail = f"BMP image {pixels.shape[1]}x{pixels.shape[0]}"
            source_name = name if name in photos else None
            if source_name:
                error = np.abs(pixels.astype(int) - photos[source_name].astype(int)).mean()
                detail += f", mean error vs original {error:.1f}/255"
        elif result.data[:4] == b"RIFF":
            audio = read_wav(result.data)
            detail = (f"WAV audio {audio.num_frames} frames @ {audio.sample_rate} Hz "
                      f"({audio.channels} ch)")
        else:
            detail = f"raw data, {len(result.data)} bytes"
        print(f"  {name:32s} -> {detail}   [decoded by archived {result.codec_name} decoder]")

    # --------------------------------------------------- storage amortisation
    print("\n=== decoder overhead amortisation (paper section 5.3) ===")
    for count in (1, 4, 8):
        writer_n = ArchiveWriter(allow_lossy=True)
        for index in range(count):
            writer_n.add_file(f"track_{index}.wav",
                              write_wav(synthetic_music(seconds=1.0, sample_rate=16000,
                                                        channels=2, seed=40 + index)),
                              codec="vxsnd")
        archive_n = writer_n.finish()
        overhead = writer_n.manifest.decoder_overhead_fraction
        print(f"  {count:2d} song(s): archive {len(archive_n):8d} bytes, "
              f"decoder overhead {overhead * 100:5.2f}%")


if __name__ == "__main__":
    main()
