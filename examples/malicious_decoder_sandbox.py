#!/usr/bin/env python3
"""Sandboxing demonstration: what a buggy or malicious archived decoder can(not) do.

Paper section 2.4: "Assuming the virtual machine is implemented correctly,
the worst harm a decoder can cause is to garble the data it was supposed to
produce."  This example writes several deliberately hostile "decoders" in vxc
and VXA-32 assembly, embeds them in the VM, and shows every attack being
contained:

* wild writes and reads outside the sandbox fault,
* jumps into data or out of the code segment fault,
* infinite loops hit the instruction budget,
* unbounded output hits the output budget,
* host file handles other than the three virtual ones do not exist,
* and after every fault the host process carries on undamaged.

Run with:  python examples/malicious_decoder_sandbox.py
"""

from repro.elf.builder import build_executable
from repro.errors import GuestFault
from repro.isa.assembler import assemble
from repro.vm.limits import ExecutionLimits
from repro.vm.machine import VirtualMachine
from repro.vxc.compiler import compile_source

ATTACKS = []


def attack(title):
    def register(build):
        ATTACKS.append((title, build))
        return build
    return register


@attack("wild write far outside the sandbox (simulates the GDI+ JPEG overflow)")
def wild_write():
    source = """
    int main() {
        poke32(0x20000000, 0x41414141);   // 512 MB: far beyond the sandbox
        return 0;
    }
    """
    return compile_source(source, codec_name="evil-write").elf


@attack("scan host memory for secrets (read snooping)")
def wild_read():
    source = """
    int main() {
        int address;
        int total;
        total = 0;
        for (address = 0x10000000; address < 0x10001000; address = address + 4) {
            total = total + peek32(address);      // outside the sandbox
        }
        return total;
    }
    """
    return compile_source(source, codec_name="evil-read").elf


@attack("jump into the data segment to run smuggled bytes")
def jump_to_data():
    return build_executable(assemble("""
    _start:
        movi r1, smuggled
        jmpr r1
    .data
    smuggled:
        .word 0xffffffff
    """))


@attack("spin forever to wedge the archive reader")
def infinite_loop():
    source = "int main() { while (1) { } return 0; }"
    return compile_source(source, codec_name="evil-spin").elf


@attack("write output forever to fill the disk")
def output_flood():
    source = """
    byte junk[4096];
    int main() {
        while (1) {
            write(1, junk, 4096);
        }
        return 0;
    }
    """
    return compile_source(source, codec_name="evil-flood").elf


@attack("open a host file handle that is not one of the three virtual ones")
def bad_file_handle():
    source = """
    int main() {
        int result;
        result = read(42, 0, 16);          // fd 42 does not exist for decoders
        if (result < 0) {
            exit(7);                        // correctly refused -> report it
        }
        return 0;
    }
    """
    return compile_source(source, codec_name="evil-fd").elf


def main() -> None:
    limits = ExecutionLimits(max_instructions=2_000_000, max_output_bytes=256 * 1024)
    print("Running hostile decoders inside the VXA virtual machine\n")
    for title, build in ATTACKS:
        image = build()
        vm = VirtualMachine(image, limits=limits)
        try:
            result = vm.decode(b"some encoded input", limits=limits)
        except GuestFault as fault:
            outcome = f"CONTAINED by the VM -> {type(fault).__name__}: {fault}"
        else:
            if result.exit_code == 7:
                outcome = ("CONTAINED -> virtual syscall layer refused the handle "
                           f"(decoder exited with status {result.exit_code})")
            else:
                outcome = (f"decoder exited with status {result.exit_code}, "
                           f"output limited to {len(result.output)} bytes")
        print(f"* {title}\n    {outcome}\n")
    print("Host process is still alive and unharmed; all attacks were confined "
          "to the decoder's own sandbox.")


if __name__ == "__main__":
    main()
