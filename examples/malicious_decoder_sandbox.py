#!/usr/bin/env python3
"""Sandboxing demonstration: what a buggy or malicious archived decoder can(not) do.

Paper section 2.4: "Assuming the virtual machine is implemented correctly,
the worst harm a decoder can cause is to garble the data it was supposed to
produce."  This example writes several deliberately hostile "decoders" in vxc
and VXA-32 assembly, embeds them in the VM, and shows every attack being
contained:

* wild writes and reads outside the sandbox fault,
* jumps into data or out of the code segment fault,
* infinite loops hit the instruction budget,
* unbounded output hits the output budget,
* host file handles other than the three virtual ones do not exist,
* and after every fault the host process carries on undamaged.

Part two moves up a layer to *archive-level* containment: the same
guarantees surfaced through `repro.api` as salvage policy.  A deterministic
`FaultPlan` sabotages individual members of a real archive (corrupted
payload, exhausted instruction budget, a wedged decoder cut off by
`member_deadline`), and `ReadOptions(on_error="quarantine")` extracts every
healthy member byte-for-byte anyway, returning an `ExtractionReport` that
names each casualty, its error, and how many attempts it was given.

Run with:  python examples/malicious_decoder_sandbox.py
"""

import io
import pathlib
import tempfile

import repro.api as vxa
from repro.elf.builder import build_executable
from repro.errors import GuestFault
from repro.isa.assembler import assemble
from repro.vm.limits import ExecutionLimits
from repro.vm.machine import VirtualMachine
from repro.vxc.compiler import compile_source

ATTACKS = []


def attack(title):
    def register(build):
        ATTACKS.append((title, build))
        return build
    return register


@attack("wild write far outside the sandbox (simulates the GDI+ JPEG overflow)")
def wild_write():
    source = """
    int main() {
        poke32(0x20000000, 0x41414141);   // 512 MB: far beyond the sandbox
        return 0;
    }
    """
    return compile_source(source, codec_name="evil-write").elf


@attack("scan host memory for secrets (read snooping)")
def wild_read():
    source = """
    int main() {
        int address;
        int total;
        total = 0;
        for (address = 0x10000000; address < 0x10001000; address = address + 4) {
            total = total + peek32(address);      // outside the sandbox
        }
        return total;
    }
    """
    return compile_source(source, codec_name="evil-read").elf


@attack("jump into the data segment to run smuggled bytes")
def jump_to_data():
    return build_executable(assemble("""
    _start:
        movi r1, smuggled
        jmpr r1
    .data
    smuggled:
        .word 0xffffffff
    """))


@attack("spin forever to wedge the archive reader")
def infinite_loop():
    source = "int main() { while (1) { } return 0; }"
    return compile_source(source, codec_name="evil-spin").elf


@attack("write output forever to fill the disk")
def output_flood():
    source = """
    byte junk[4096];
    int main() {
        while (1) {
            write(1, junk, 4096);
        }
        return 0;
    }
    """
    return compile_source(source, codec_name="evil-flood").elf


@attack("open a host file handle that is not one of the three virtual ones")
def bad_file_handle():
    source = """
    int main() {
        int result;
        result = read(42, 0, 16);          // fd 42 does not exist for decoders
        if (result < 0) {
            exit(7);                        // correctly refused -> report it
        }
        return 0;
    }
    """
    return compile_source(source, codec_name="evil-fd").elf


def run_vm_attacks() -> None:
    limits = ExecutionLimits(max_instructions=2_000_000, max_output_bytes=256 * 1024)
    print("Running hostile decoders inside the VXA virtual machine\n")
    for title, build in ATTACKS:
        image = build()
        vm = VirtualMachine(image, limits=limits)
        try:
            result = vm.decode(b"some encoded input", limits=limits)
        except GuestFault as fault:
            outcome = f"CONTAINED by the VM -> {type(fault).__name__}: {fault}"
        else:
            if result.exit_code == 7:
                outcome = ("CONTAINED -> virtual syscall layer refused the handle "
                           f"(decoder exited with status {result.exit_code})")
            else:
                outcome = (f"decoder exited with status {result.exit_code}, "
                           f"output limited to {len(result.output)} bytes")
        print(f"* {title}\n    {outcome}\n")
    print("Host process is still alive and unharmed; all attacks were confined "
          "to the decoder's own sandbox.\n")


def run_salvage_demo() -> None:
    """Archive-level containment: quarantine the casualties, save the rest."""
    print("Salvaging an archive whose members fail in three different ways\n")
    buffer = io.BytesIO()
    with vxa.create(buffer) as builder:
        for index in range(6):
            builder.add(f"file{index}.txt", (f"member {index} " * 150).encode())

    plan = vxa.FaultPlan(specs=(
        # One flipped payload byte -> the decoder output fails its CRC.
        vxa.FaultSpec(member="file1.txt", kind="corrupt-payload"),
        # Starve the decoder of instructions -> ResourceLimitExceeded.
        vxa.FaultSpec(member="file3.txt", kind="exhaust-fuel"),
        # Fail the decoder's second virtual system call outright.
        vxa.FaultSpec(member="file4.txt", kind="syscall-error", at=2),
    ), seed=2026)
    options = vxa.ReadOptions(
        mode=vxa.MODE_VXA,
        on_error=vxa.ON_ERROR_QUARANTINE,   # or "skip"; default "abort"
        retries=1,                          # worker-crash retry budget
        member_deadline=5.0,                # wall-clock cap per member decode
        fault_plan=plan,
    )
    with tempfile.TemporaryDirectory() as out:
        with vxa.open(io.BytesIO(buffer.getvalue()), options) as archive:
            report = archive.extract_into(pathlib.Path(out))
        for record in report:
            print(f"* {record.name}: extracted, {record.size} bytes intact")
        for failure in report.failures:
            status = "quarantined" if failure.quarantined else "skipped"
            print(f"* {failure.name}: {status} after {failure.attempts} "
                  f"attempt(s) -> {failure.error_type}: {failure.message}")
    print(f"\n{len(report)} member(s) salvaged, {len(report.failures)} "
          f"quarantined; one bad member never costs you the rest of the "
          f"archive (vxunzip extract --keep-going).")


def main() -> None:
    run_vm_attacks()
    run_salvage_demo()


if __name__ == "__main__":
    main()
