#!/usr/bin/env python3
"""Quickstart: create a vxZIP archive, then read it back with *no* codec knowledge.

This walks the core VXA loop from the paper:

1. the archiver compresses a handful of files with whatever codecs fit,
   embedding each codec's decoder (a VXA-32 ELF executable) in the archive;
2. an archive reader that knows nothing about the codecs loads those archived
   decoders into the sandboxed virtual machine and recovers every file;
3. the archive is still a genuine ZIP file that ordinary tools can list.

Run with:  python examples/quickstart.py
"""

import io
import zipfile

from repro.codecs.registry import CodecRegistry
from repro.codecs.vxz import VxzCodec
from repro.core import ArchiveReader, ArchiveWriter, MODE_VXA, check_archive, format_report
from repro.formats.ppm import write_ppm
from repro.formats.wav import write_wav
from repro.workloads.audio import synthetic_music
from repro.workloads.images import synthetic_photo
from repro.workloads.text import synthetic_source_tree_bytes


def main() -> None:
    # ---------------------------------------------------------------- inputs
    files = {
        "project/src/main.c": synthetic_source_tree_bytes(15000, seed=1),
        "project/assets/photo.ppm": write_ppm(synthetic_photo(64, 48, seed=2)),
        "project/assets/theme.wav": write_wav(
            synthetic_music(seconds=0.5, sample_rate=16000, channels=2, seed=3)
        ),
    }

    # ------------------------------------------------------- write the archive
    writer = ArchiveWriter(allow_lossy=True)
    for name, data in files.items():
        info = writer.add_file(name, data)
        print(f"archived {name:28s} {info.original_size:7d} -> {info.stored_size:7d} bytes "
              f"(codec={info.codec})")
    archive = writer.finish()
    manifest = writer.manifest
    print(f"\narchive size          : {len(archive)} bytes")
    print(f"decoders embedded     : {[d.codec_name for d in manifest.decoders]}")
    print(f"decoder space overhead: {manifest.decoder_overhead_fraction * 100:.1f}%")

    # --------------------------------------------- ordinary tools still work
    with zipfile.ZipFile(io.BytesIO(archive)) as plain_zip:
        print(f"\nstandard zipfile sees : {plain_zip.namelist()}")

    # ------------------------- read it back using only the archived decoders
    # The reader gets a registry containing nothing but the mandatory default,
    # and we force VXA mode anyway: every byte below is produced by decoders
    # that travelled inside the archive, running in the sandboxed VM.
    minimal_registry = CodecRegistry([VxzCodec()], default="vxz")
    reader = ArchiveReader(archive, registry=minimal_registry)
    print("\nextracting with archived decoders only:")
    for name in reader.names():
        result = reader.extract(name, mode=MODE_VXA)
        original = files[name]
        note = "bit-identical" if result.data == original else \
            f"decoded to {result.codec_name} output ({len(result.data)} bytes)"
        print(f"  {name:28s} via {result.codec_name:7s} decoder in VM -> {note}")

    # ----------------------------------------------------- integrity checking
    report = check_archive(archive)
    print("\n" + format_report(report))


if __name__ == "__main__":
    main()
