#!/usr/bin/env python3
"""Quickstart: create a vxZIP archive, then read it back with *no* codec knowledge.

This walks the core VXA loop from the paper, using the streaming
``repro.api`` facade:

1. ``vxa.create`` compresses a handful of files with whatever codecs fit,
   embedding each codec's decoder (a VXA-32 ELF executable) in the archive,
   writing straight to disk;
2. ``vxa.open`` -- on a reader that knows nothing about the codecs -- loads
   those archived decoders into the sandboxed virtual machine and recovers
   every file, streaming member contents without slurping the archive;
3. the archive is still a genuine ZIP file that ordinary tools can list.

Run with:  python examples/quickstart.py
"""

import pathlib
import tempfile
import zipfile

import repro.api as vxa
from repro.codecs.registry import CodecRegistry
from repro.codecs.vxz import VxzCodec
from repro.core.integrity import format_report
from repro.formats.ppm import write_ppm
from repro.formats.wav import write_wav
from repro.workloads.audio import synthetic_music
from repro.workloads.images import synthetic_photo
from repro.workloads.text import synthetic_source_tree_bytes


def main() -> None:
    # ---------------------------------------------------------------- inputs
    files = {
        "project/src/main.c": synthetic_source_tree_bytes(15000, seed=1),
        "project/assets/photo.ppm": write_ppm(synthetic_photo(64, 48, seed=2)),
        "project/assets/theme.wav": write_wav(
            synthetic_music(seconds=0.5, sample_rate=16000, channels=2, seed=3)
        ),
    }

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="vxa-quickstart-"))
    archive_path = workdir / "project.zip"

    # ------------------------------------------------------- write the archive
    with vxa.create(archive_path, vxa.WriteOptions(allow_lossy=True)) as builder:
        for name, data in files.items():
            info = builder.add(name, data)
            print(f"archived {name:28s} {info.original_size:7d} -> "
                  f"{info.stored_size:7d} bytes (codec={info.codec})")
        manifest = builder.finish()
    print(f"\narchive size          : {manifest.archive_size} bytes -> {archive_path}")
    print(f"decoders embedded     : {[d.codec_name for d in manifest.decoders]}")
    print(f"decoder space overhead: {manifest.decoder_overhead_fraction * 100:.1f}%")

    # --------------------------------------------- ordinary tools still work
    with zipfile.ZipFile(archive_path) as plain_zip:
        print(f"\nstandard zipfile sees : {plain_zip.namelist()}")

    # ------------------------- read it back using only the archived decoders
    # The reader gets a registry containing nothing but the mandatory default,
    # and we force VXA mode anyway: every byte below is produced by decoders
    # that travelled inside the archive, running in the sandboxed VM.  The
    # facade streams from the file on disk -- the archive is never loaded
    # into memory as one blob.
    options = vxa.ReadOptions(
        mode=vxa.MODE_VXA,
        registry=CodecRegistry([VxzCodec()], default="vxz"),
    )
    with vxa.open(archive_path, options) as archive:
        print("\nextracting with archived decoders only:")
        for name in archive.names():
            result = archive.extract(name)
            original = files[name]
            note = "bit-identical" if result.data == original else \
                f"decoded to {result.codec_name} output ({len(result.data)} bytes)"
            print(f"  {name:28s} via {result.codec_name:7s} decoder in VM -> {note}")

        # Streaming access: read the first kilobyte of a member without
        # extracting the rest.
        with archive.open_member("project/src/main.c") as stream:
            head = stream.read(1024)
        print(f"\nstreamed first {len(head)} bytes of project/src/main.c "
              f"({head[:32]!r}...)")

        # ------------------------------------------------- integrity checking
        report = archive.check()
        print("\n" + format_report(report))


if __name__ == "__main__":
    main()
