#!/usr/bin/env python3
"""Parallel extraction and the ``vxserve`` batch service, end to end.

Because every vxZIP member carries (a reference to) its own sandboxed
decoder, members are independent decode jobs -- embarrassingly parallel
work.  This example shows the three ways to exploit that:

1. ``Archive.extract_into(..., jobs=N)`` -- the facade shards members by
   decoder image across a worker pool (`repro.parallel.Scheduler`), so each
   worker translates a decoder once and reuses the warm code cache for all
   of that decoder's members; output is byte-identical to the serial path;
2. ``Archive.check(jobs=N)`` -- the always-run-the-archived-decoder
   integrity check, sharded the same way, with identical verdicts;
3. ``BatchService`` -- the engine behind the ``vxserve`` console script: a
   long-running JSON-lines service multiplexing extract/check requests for
   many archives onto one shared pool, keeping per-decoder-image caches hot
   across requests.

Run with:  python examples/parallel_extract.py
"""

import json
import pathlib
import tempfile

import repro.api as vxa
from repro.core.policy import SecurityAttributes, VmReusePolicy
from repro.parallel.scheduler import Scheduler
from repro.parallel.service import BatchService
from repro.workloads import synthetic_log_bytes, synthetic_source_tree_bytes


def main() -> None:
    work = pathlib.Path(tempfile.mkdtemp(prefix="vxa-parallel-"))
    archive_path = work / "batch.zip"

    # A mixed archive: two decoder images, two protection domains, one raw
    # member -- enough structure for the scheduler to have real decisions.
    with vxa.create(archive_path) as builder:
        for index in range(6):
            builder.add(
                f"logs/app{index}.log",
                synthetic_log_bytes(8_000, seed=index),
                codec="vxz",
                attributes=SecurityAttributes(owner=index % 2, mode=0o644),
            )
        for index in range(3):
            builder.add(
                f"src/tree{index}.txt",
                synthetic_source_tree_bytes(6_000, seed=30 + index),
                codec="vxbwt",
            )
        builder.add("README", b"raw member, no decoder involved\n",
                    store_raw=True)

    options = vxa.ReadOptions(
        mode=vxa.MODE_VXA,                            # always run the VM path
        reuse=VmReusePolicy.REUSE_SAME_ATTRIBUTES,    # section 2.4 safe reuse
        jobs=4,                                       # default for this session
        executor=vxa.EXECUTOR_THREAD,                 # in-process: demo-sized
    )

    # ------------------------------------------------ 1. sharded extraction
    with vxa.open(archive_path, options) as archive:
        plan = archive.extraction_plan()
        shards = Scheduler(options.jobs).plan(plan)
        print(f"{len(plan)} members -> {len(shards)} shard(s):")
        for shard in shards:
            decoders = len(shard.decoder_images())
            print(f"  worker {shard.worker}: {len(shard.items)} member(s), "
                  f"{decoders} decoder image(s), ~{shard.cost} stored bytes")

        records = archive.extract_into(work / "out")   # uses options.jobs
        stats = archive.session.stats
        print(f"extracted {len(records)} members with jobs={options.jobs}")
        print(f"merged worker stats: {stats.decodes} decodes, "
              f"{stats.fragments_translated} fragments translated, "
              f"{stats.vm_reuses} VM reuses, {stats.evictions} evictions")

    # ------------------------------------------------ 2. sharded checking
    with vxa.open(archive_path, options) as archive:
        report = archive.check(jobs=4)
        print(f"integrity: {report.passed}/{report.checked} passed "
              f"(parallel verdicts == serial verdicts, by construction)")

    # ------------------------------------------------ 3. the batch service
    # ``vxserve`` speaks JSON lines over stdio or a unix socket; the same
    # dispatcher is usable in-process, one request dict per call.
    service = BatchService(jobs=2, executor=vxa.EXECUTOR_THREAD)
    try:
        for request in [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "extract", "archive": str(archive_path),
             "dest": str(work / "served"), "mode": "vxa", "jobs": 2},
            {"id": 3, "op": "check", "archive": str(archive_path)},
            {"id": 4, "op": "stats"},
        ]:
            response = service.handle(request)
            summary = response["result"] if response["ok"] else response["error"]
            print(f"vxserve {request['op']:7s} -> "
                  f"{json.dumps(summary, default=str)[:100]}")
    finally:
        service.close()
    print(f"(outputs under {work})")


if __name__ == "__main__":
    main()
