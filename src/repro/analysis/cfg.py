"""Control-flow-graph recovery for VXA-32 decoder images.

Recursive-descent disassembly from the image entry point: instructions are
decoded along control-flow edges only (never by a blind linear sweep -- the
variable-length encoding makes that unsound, paper section 4.2), then
partitioned into basic blocks.  The walk detects the ill-formed-code classes
the verifier must refuse:

* branches targeting the *middle* of a reachable instruction,
* two reachable instructions overlapping the same bytes,
* branch or call targets outside the executable region,
* straight-line code falling off the end of the text segment,
* reachable bytes that do not decode at all.

Each problem becomes a structured :class:`CfgError` (pc + machine-readable
reason) rather than an exception, so :class:`~repro.analysis.verify.AnalysisReport`
can list every defect in one pass.

Code reachable *only* as the fall-through of a ``VXCALL`` is walked
leniently (``severity="warning"``): a decoder ending in ``vxcall`` with
``EXIT``/``DONE`` in ``r0`` never resumes, so trailing garbage there is
unreachable in practice but not provably so without value analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf.reader import parse_executable
from repro.elf.structures import ElfImage
from repro.errors import InvalidInstructionError
from repro.isa.encoding import Instruction, decode
from repro.isa.opcodes import CONDITIONAL_JUMPS, Op, OPCODES

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class CfgError:
    """One structural defect found during CFG recovery."""

    pc: int
    reason: str
    message: str
    severity: str = SEVERITY_ERROR


@dataclass
class BasicBlock:
    """A maximal straight-line run of reachable instructions."""

    start: int
    instructions: list[tuple[int, Instruction]] = field(default_factory=list)
    successors: tuple[int, ...] = ()
    call_target: int | None = None     # direct CALL out of this block
    indirect: bool = False             # ends in JMPR or CALLR

    @property
    def end(self) -> int:
        if not self.instructions:
            return self.start
        pc, insn = self.instructions[-1]
        return pc + insn.length

    @property
    def terminator(self) -> Instruction | None:
        if not self.instructions:
            return None
        insn = self.instructions[-1][1]
        return insn if OPCODES[insn.op].is_terminator else None


@dataclass
class ControlFlowGraph:
    """Recovered control flow of one decoder image."""

    entry: int
    text_start: int
    text_end: int
    insns: dict[int, Instruction]
    blocks: dict[int, BasicBlock]
    errors: list[CfgError]
    call_targets: set[int]
    functions: dict[int, set[int]]     # function entry -> block starts
    call_graph: dict[int, set[int]]    # function entry -> direct callees

    @property
    def ok(self) -> bool:
        return not any(e.severity == SEVERITY_ERROR for e in self.errors)


def recover_cfg(image: ElfImage | bytes) -> ControlFlowGraph:
    """Recover the CFG of ``image`` from its entry point."""
    if isinstance(image, (bytes, bytearray)):
        image = parse_executable(bytes(image))
    text_start, text_end, code = _text_bytes(image)

    errors: list[CfgError] = []
    insns: dict[int, Instruction] = {}
    edges: dict[int, list[int]] = {}
    call_sites: dict[int, int] = {}      # CALL pc -> target
    indirect_pcs: set[int] = set()
    leaders: set[int] = set()
    vxcall_followups: list[int] = []

    def add_error(pc: int, reason: str, message: str, soft: bool) -> None:
        errors.append(CfgError(pc, reason, message,
                               SEVERITY_WARNING if soft else SEVERITY_ERROR))

    def valid_target(site: int, target: int, soft: bool, what: str) -> bool:
        if not text_start <= target < text_end:
            add_error(site, "target-out-of-text",
                      f"{what} at 0x{site:x} targets 0x{target:x}, "
                      f"outside text [0x{text_start:x}, 0x{text_end:x})", soft)
            return False
        return True

    def walk(roots: list[int], soft: bool) -> None:
        worklist = list(roots)
        while worklist:
            pc = worklist.pop()
            if pc in insns:
                continue
            try:
                insn = decode(code, pc - text_start)
            except InvalidInstructionError as error:
                at = text_start + (error.offset if error.offset is not None
                                   else pc - text_start)
                reason = error.reason
                if reason in ("past-end", "truncated"):
                    reason = "falls-off-text"
                add_error(at, reason, str(error), soft)
                continue
            if pc + insn.length > text_end:
                add_error(pc, "falls-off-text",
                          f"instruction at 0x{pc:x} straddles the end of text",
                          soft)
                continue
            insns[pc] = insn
            next_pc = pc + insn.length
            info = OPCODES[insn.op]
            succs: list[int] = []
            if insn.op is Op.HALT or insn.op is Op.RET:
                pass
            elif insn.op is Op.VXCALL:
                # EXIT/DONE never resume; the fall-through is walked in a
                # separate lenient pass so junk after a final vxcall is a
                # warning, not a rejection.
                if next_pc < text_end:
                    vxcall_followups.append(next_pc)
            elif insn.op is Op.JMP:
                target = next_pc + insn.imm
                if valid_target(pc, target, soft, "jump"):
                    succs.append(target)
            elif insn.op in CONDITIONAL_JUMPS:
                target = next_pc + insn.imm
                if valid_target(pc, target, soft, "branch"):
                    succs.append(target)
                if next_pc < text_end:
                    succs.append(next_pc)
                else:
                    add_error(pc, "falls-off-text",
                              f"branch fall-through at 0x{pc:x} leaves text", soft)
            elif insn.op is Op.CALL:
                target = next_pc + insn.imm
                if valid_target(pc, target, soft, "call"):
                    call_sites[pc] = target
                    worklist.append(target)
                    leaders.add(target)
                if next_pc < text_end:
                    succs.append(next_pc)
                else:
                    add_error(pc, "falls-off-text",
                              f"call return point at 0x{pc:x} leaves text", soft)
            elif insn.op is Op.CALLR:
                indirect_pcs.add(pc)
                if next_pc < text_end:
                    succs.append(next_pc)
            elif insn.op is Op.JMPR:
                indirect_pcs.add(pc)
            elif next_pc < text_end:
                succs.append(next_pc)
            else:
                add_error(pc, "falls-off-text",
                          f"code at 0x{pc:x} falls off the end of text", soft)
            edges[pc] = succs
            if info.is_terminator:
                leaders.update(succs)
            worklist.extend(succs)

    if not text_start <= image.entry < text_end:
        errors.append(CfgError(image.entry, "entry-out-of-text",
                               f"entry point 0x{image.entry:x} is outside the "
                               f"executable region"))
    else:
        walk([image.entry], soft=False)
        while vxcall_followups:
            pending = [pc for pc in vxcall_followups if pc not in insns]
            vxcall_followups = []
            for pc in pending:
                leaders.add(pc)
                walk([pc], soft=True)
    leaders.add(image.entry)

    # Overlap / mid-instruction detection: every decoded start must not fall
    # inside the byte span of another decoded instruction.
    interior: dict[int, int] = {}
    for pc, insn in insns.items():
        for inner in range(pc + 1, pc + insn.length):
            interior[inner] = pc
    for pc in insns:
        if pc in interior:
            errors.append(CfgError(
                pc, "mid-instruction-target",
                f"instruction at 0x{pc:x} starts inside the instruction at "
                f"0x{interior[pc]:x} (overlapping decodings)"))
    for site, succs in edges.items():
        for target in succs:
            if target not in insns and target in interior:
                errors.append(CfgError(
                    site, "mid-instruction-target",
                    f"branch at 0x{site:x} targets 0x{target:x}, the middle "
                    f"of the instruction at 0x{interior[target]:x}"))
    for site, target in call_sites.items():
        if target not in insns and target in interior:
            errors.append(CfgError(
                site, "mid-instruction-target",
                f"call at 0x{site:x} targets 0x{target:x}, the middle of the "
                f"instruction at 0x{interior[target]:x}"))

    blocks = _partition(insns, edges, call_sites, indirect_pcs, leaders)
    call_targets = set(call_sites.values())
    functions, call_graph = _partition_functions(
        blocks, image.entry, call_targets)

    return ControlFlowGraph(
        entry=image.entry,
        text_start=text_start,
        text_end=text_end,
        insns=insns,
        blocks=blocks,
        errors=errors,
        call_targets=call_targets,
        functions=functions,
        call_graph=call_graph,
    )


def _text_bytes(image: ElfImage) -> tuple[int, int, bytes]:
    """Assemble the executable region into one contiguous byte buffer.

    Gaps between executable segments are zero-filled; a zero byte decodes as
    ``HALT``, so padding is inert rather than ill-formed.
    """
    spans = [(s.vaddr, s.vaddr + s.memsz, s.data)
             for s in image.segments if s.executable]
    if not spans:
        return 0, 0, b""
    start = min(lo for lo, _, _ in spans)
    end = max(hi for _, hi, _ in spans)
    buffer = bytearray(end - start)
    for lo, _, data in spans:
        buffer[lo - start:lo - start + len(data)] = data
    return start, end, bytes(buffer)


def _partition(
    insns: dict[int, Instruction],
    edges: dict[int, list[int]],
    call_sites: dict[int, int],
    indirect_pcs: set[int],
    leaders: set[int],
) -> dict[int, BasicBlock]:
    blocks: dict[int, BasicBlock] = {}
    for leader in sorted(leaders):
        if leader not in insns:
            continue
        block = BasicBlock(start=leader)
        pc = leader
        while True:
            insn = insns[pc]
            block.instructions.append((pc, insn))
            if OPCODES[insn.op].is_terminator:
                block.successors = tuple(edges.get(pc, ()))
                block.call_target = call_sites.get(pc)
                block.indirect = pc in indirect_pcs
                break
            next_pc = pc + insn.length
            if next_pc in leaders or next_pc not in insns:
                block.successors = tuple(edges.get(pc, ()))
                break
            pc = next_pc
        blocks[leader] = block
    return blocks


def _partition_functions(
    blocks: dict[int, BasicBlock],
    entry: int,
    call_targets: set[int],
) -> tuple[dict[int, set[int]], dict[int, set[int]]]:
    """Group blocks into functions: blocks reachable from each entry without
    following call edges (a CALL's successor is its own return point)."""
    functions: dict[int, set[int]] = {}
    call_graph: dict[int, set[int]] = {}
    for fn_entry in sorted({entry} | call_targets):
        if fn_entry not in blocks:
            functions[fn_entry] = set()
            call_graph[fn_entry] = set()
            continue
        seen = {fn_entry}
        callees: set[int] = set()
        stack = [fn_entry]
        while stack:
            at = stack.pop()
            block = blocks.get(at)
            if block is None:
                continue
            if block.call_target is not None:
                callees.add(block.call_target)
            for succ in block.successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        functions[fn_entry] = seen
        call_graph[fn_entry] = callees
    return functions, call_graph
