"""Abstract domains for the VXA-32 static analyser.

The analyser tracks each register (and each provable stack slot) as an
:class:`AbstractValue` combining three ingredients:

* a **zone** saying what the value is an offset from:

  - ``ZONE_ABS``  -- a plain unsigned 32-bit value,
  - ``ZONE_SP``   -- the stack pointer the current function had on entry,
    plus a signed byte delta,
  - ``ZONE_FP``   -- the frame-pointer *value* the current function received
    on entry, plus a signed byte delta (used to prove ``preserves_fp``),
  - ``ZONE_TOP``  -- unknown;

* an **interval** ``[lo, hi]`` over the value (ABS) or the delta (SP/FP);
* an **alignment** pair ``(align, phase)`` with ``align`` a power of two,
  meaning ``value % align == phase`` (delta modulo for SP/FP).

Zone-relative tracking is what makes the verifier size-independent: an
``SP`` access is proved safe from its delta bounds alone, so the same proof
holds for every sandbox at least ``AnalysisReport.min_size`` bytes large.
All transfer helpers are total and conservative -- anything they cannot
represent precisely collapses toward :data:`TOP`, never toward a narrower
claim.
"""

from __future__ import annotations

from dataclasses import dataclass

U32_MASK = 0xFFFFFFFF

#: Stack/frame deltas beyond this many bytes collapse to TOP.  The clamp
#: both guarantees widening terminates and bounds how deep a "proved" stack
#: access can reach, which :mod:`repro.analysis.verify` folds into the
#: stack-boundedness check.
DELTA_LIMIT = 1 << 20

#: Largest alignment the domain distinguishes.
ALIGN_CAP = 16

ZONE_TOP = "top"
ZONE_ABS = "abs"
ZONE_SP = "sp"
ZONE_FP = "fp"


def _alignment_of(value: int) -> int:
    """Largest tracked power of two dividing ``value`` (``value == 0`` -> cap)."""
    if value == 0:
        return ALIGN_CAP
    return min(value & -value, ALIGN_CAP)


@dataclass(frozen=True)
class AbstractValue:
    """One point in the combined zone/interval/alignment domain."""

    zone: str = ZONE_TOP
    lo: int = 0
    hi: int = 0
    align: int = 1
    phase: int = 0

    # -- predicates --------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.zone == ZONE_TOP

    @property
    def is_exact(self) -> bool:
        return self.zone != ZONE_TOP and self.lo == self.hi

    # -- transfer helpers --------------------------------------------------

    def add_const(self, c: int) -> "AbstractValue":
        """Add the signed constant ``c`` (32-bit wrap-around semantics)."""
        if self.zone == ZONE_TOP:
            return TOP
        if self.zone == ZONE_ABS:
            if self.lo == self.hi:
                return exact(self.lo + c)
            lo, hi = self.lo + c, self.hi + c
            if lo < 0 or hi > U32_MASK:
                return TOP
            return AbstractValue(ZONE_ABS, lo, hi, self.align,
                                 (self.phase + c) % self.align)
        lo, hi = self.lo + c, self.hi + c
        if lo < -DELTA_LIMIT or hi > DELTA_LIMIT:
            return TOP
        return AbstractValue(self.zone, lo, hi, self.align,
                             (self.phase + c) % self.align)

    def add(self, other: "AbstractValue") -> "AbstractValue":
        if other.is_exact and other.zone == ZONE_ABS:
            return self.add_const(signed32(other.lo))
        if self.is_exact and self.zone == ZONE_ABS:
            return other.add_const(signed32(self.lo))
        if self.zone == ZONE_ABS and other.zone == ZONE_ABS:
            lo, hi = self.lo + other.lo, self.hi + other.hi
            if hi > U32_MASK:
                return TOP
            g = _join_align(self.align, self.phase + other.phase,
                            other.align, self.phase + other.phase)
            return AbstractValue(ZONE_ABS, lo, hi, g,
                                 (self.phase + other.phase) % g)
        if self.zone in (ZONE_SP, ZONE_FP) and other.zone == ZONE_ABS:
            lo, hi = self.lo + other.lo, self.hi + other.hi
            if lo < -DELTA_LIMIT or hi > DELTA_LIMIT:
                return TOP
            g = min(self.align, other.align)
            return AbstractValue(self.zone, lo, hi, g,
                                 (self.phase + other.phase) % g)
        if other.zone in (ZONE_SP, ZONE_FP) and self.zone == ZONE_ABS:
            return other.add(self)
        return TOP

    def sub(self, other: "AbstractValue") -> "AbstractValue":
        if other.is_exact and other.zone == ZONE_ABS:
            return self.add_const(-signed32(other.lo))
        if self.zone == ZONE_ABS and other.zone == ZONE_ABS:
            lo, hi = self.lo - other.hi, self.hi - other.lo
            if lo < 0:
                return TOP
            return AbstractValue(ZONE_ABS, lo, hi, 1, 0)
        if self.zone in (ZONE_SP, ZONE_FP) and other.zone == ZONE_ABS:
            lo, hi = self.lo - other.hi, self.hi - other.lo
            if lo < -DELTA_LIMIT or hi > DELTA_LIMIT:
                return TOP
            return AbstractValue(self.zone, lo, hi, 1, 0)
        if self.zone == other.zone and self.zone in (ZONE_SP, ZONE_FP):
            lo, hi = self.lo - other.hi, self.hi - other.lo
            if lo < 0:
                return TOP
            return AbstractValue(ZONE_ABS, lo, hi, 1, 0)
        return TOP

    def band(self, other: "AbstractValue") -> "AbstractValue":
        """Bitwise AND.  Unsigned AND never exceeds either operand."""
        if self.is_exact and other.is_exact and \
                self.zone == ZONE_ABS and other.zone == ZONE_ABS:
            return exact(self.lo & other.lo)
        bounds = [v.hi for v in (self, other) if v.zone == ZONE_ABS]
        if not bounds:
            return TOP
        return AbstractValue(ZONE_ABS, 0, min(bounds), 1, 0)

    def shl_const(self, count: int) -> "AbstractValue":
        count &= 31
        if count == 0:
            return self
        if self.zone != ZONE_ABS:
            return TOP
        if self.lo == self.hi:
            return exact((self.lo << count) & U32_MASK)
        hi = self.hi << count
        if hi > U32_MASK:
            return TOP
        align = min(self.align << count, ALIGN_CAP)
        return AbstractValue(ZONE_ABS, self.lo << count, hi, align,
                             (self.phase << count) % align)

    def shru_const(self, count: int) -> "AbstractValue":
        count &= 31
        if count == 0:
            return self
        if self.zone == ZONE_ABS:
            return AbstractValue(ZONE_ABS, self.lo >> count, self.hi >> count, 1, 0)
        # Any 32-bit value shifted right by a nonzero count is bounded.
        return AbstractValue(ZONE_ABS, 0, U32_MASK >> count, 1, 0)

    # -- lattice operations ------------------------------------------------

    def join(self, other: "AbstractValue") -> "AbstractValue":
        if self == other:
            return self
        if self.zone != other.zone or ZONE_TOP in (self.zone, other.zone):
            return TOP
        g = _join_align(self.align, self.phase, other.align, other.phase)
        return AbstractValue(self.zone, min(self.lo, other.lo),
                             max(self.hi, other.hi), g, self.phase % g)

    def widen(self, newer: "AbstractValue") -> "AbstractValue":
        """Widening: blow any unstable interval bound out to the zone limit."""
        joined = self.join(newer)
        if joined.zone == ZONE_TOP:
            return TOP
        lo, hi = joined.lo, joined.hi
        if newer.lo < self.lo:
            lo = 0 if joined.zone == ZONE_ABS else -DELTA_LIMIT
        if newer.hi > self.hi:
            hi = U32_MASK if joined.zone == ZONE_ABS else DELTA_LIMIT
        return AbstractValue(joined.zone, lo, hi, joined.align, joined.phase)


def signed32(value: int) -> int:
    value &= U32_MASK
    return value - 0x100000000 if value >= 0x80000000 else value


def _join_align(a1: int, p1: int, a2: int, p2: int) -> int:
    """Largest power of two ``g <= min(a1, a2)`` with ``p1 == p2 (mod g)``."""
    g = min(a1, a2)
    while g > 1 and (p1 - p2) % g:
        g >>= 1
    return g


#: The unique top element.
TOP = AbstractValue()


def exact(value: int) -> AbstractValue:
    value &= U32_MASK
    align = _alignment_of(value)
    return AbstractValue(ZONE_ABS, value, value, align, value % align)


def interval(lo: int, hi: int, align: int = 1, phase: int = 0) -> AbstractValue:
    lo = max(lo, 0)
    hi = min(hi, U32_MASK)
    if lo > hi:
        return TOP
    return AbstractValue(ZONE_ABS, lo, hi, align, phase % align)


def sp_entry() -> AbstractValue:
    """The stack pointer as the current function received it."""
    return AbstractValue(ZONE_SP, 0, 0, 1, 0)


def fp_entry() -> AbstractValue:
    """The frame-pointer value the current function received on entry."""
    return AbstractValue(ZONE_FP, 0, 0, 1, 0)
