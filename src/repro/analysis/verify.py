"""Static verifier for VXA-32 decoder images.

Combines CFG recovery (:mod:`repro.analysis.cfg`) with abstract
interpretation (:mod:`repro.analysis.absint`) to classify every memory
access, branch and virtual system call as

* ``proved``  -- safe in every sandbox of at least ``min_size`` bytes,
* ``guard``   -- not statically resolvable; the dynamic bounds guard stays,
* ``unsafe``  -- statically guaranteed to fault or structurally ill-formed.

The resulting :class:`AnalysisReport` is serialisable (``as_dict`` /
``from_dict``) so parallel extraction workers and the vxserve batch service
can ship it alongside the image, and it is memoised process-wide by image
digest so repeated loads of the same decoder analyse once.

The PROVED_SAFE contract consumed by ``vm/translator.py``: for an access pc
in ``proved_reads``/``proved_writes``, *every* concrete execution of that
instruction in a sandbox with ``memory.size >= min_size`` stays inside the
sandbox, so the translator may omit its bounds guard.  Python-level index
checks on the sandbox buffer still backstop every access, so even a verifier
bug can only degrade the fault *address precision* of a hostile image, never
host isolation (see the package README).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from repro.analysis.absint import AnalysisResult, analyze
from repro.analysis.cfg import (
    SEVERITY_ERROR,
    ControlFlowGraph,
    recover_cfg,
)
from repro.analysis.domains import DELTA_LIMIT, ZONE_ABS, ZONE_SP
from repro.elf.reader import parse_executable
from repro.elf.structures import ElfImage
from repro.isa.opcodes import Op
from repro.vm.loader import DEFAULT_STACK_SIZE, HEAP_HEADROOM
from repro.vm.memory import GUEST_ADDRESS_SPACE_LIMIT

VERDICT_PROVED = "proved"
VERDICT_GUARD = "guard"
VERDICT_UNSAFE = "unsafe"

#: Bytes a proved stack access may reach above the function-entry sp.  The
#: root function starts at ``stack_top = (size - 16) & ~0xF``, so 16 bytes
#: of slack always exist above it; every callee starts at least 4 bytes
#: lower (the pushed return address), buying 4 more.
_ROOT_SLACK = 16
_NESTED_SLACK = 20

#: Safety margin between the proven maximum stack depth and the bottom of
#: the reserved stack area.
_STACK_MARGIN = 4096

_REPORT_MEMO: dict[str, "AnalysisReport"] = {}
_REPORT_MEMO_LOCK = threading.Lock()
_REPORT_MEMO_LIMIT = 64


@dataclass(frozen=True)
class SiteVerdict:
    """Classification of one instruction site."""

    pc: int
    kind: str        # "read" | "write" | "branch" | "syscall" | "code"
    verdict: str     # "proved" | "guard" | "unsafe"
    detail: str = ""


@dataclass
class AnalysisReport:
    """Serialisable outcome of statically verifying one decoder image."""

    image_sha256: str
    verdict: str                   # "safe" | "unsafe"
    min_size: int                  # smallest sandbox the proofs hold for
    stack_bounded: bool
    total_down: int                # proven max stack depth (bytes)
    text_start: int
    text_end: int
    proved_reads: frozenset[int] = frozenset()
    proved_writes: frozenset[int] = frozenset()
    sites: list[SiteVerdict] = field(default_factory=list)
    errors: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.verdict == "safe"

    @property
    def unsafe_sites(self) -> list[SiteVerdict]:
        return [s for s in self.sites if s.verdict == VERDICT_UNSAFE]

    def counts(self) -> dict[str, int]:
        tally = {VERDICT_PROVED: 0, VERDICT_GUARD: 0, VERDICT_UNSAFE: 0}
        for site in self.sites:
            tally[site.verdict] += 1
        return tally

    def as_dict(self) -> dict:
        return {
            "image_sha256": self.image_sha256,
            "verdict": self.verdict,
            "min_size": self.min_size,
            "stack_bounded": self.stack_bounded,
            "total_down": self.total_down,
            "text_start": self.text_start,
            "text_end": self.text_end,
            "proved_reads": sorted(self.proved_reads),
            "proved_writes": sorted(self.proved_writes),
            "sites": [
                {"pc": s.pc, "kind": s.kind, "verdict": s.verdict,
                 "detail": s.detail}
                for s in self.sites
            ],
            "errors": list(self.errors),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AnalysisReport":
        return cls(
            image_sha256=payload["image_sha256"],
            verdict=payload["verdict"],
            min_size=payload["min_size"],
            stack_bounded=payload["stack_bounded"],
            total_down=payload["total_down"],
            text_start=payload["text_start"],
            text_end=payload["text_end"],
            proved_reads=frozenset(payload["proved_reads"]),
            proved_writes=frozenset(payload["proved_writes"]),
            sites=[SiteVerdict(s["pc"], s["kind"], s["verdict"],
                               s.get("detail", ""))
                   for s in payload["sites"]],
            errors=list(payload["errors"]),
        )


def verify_image(image: ElfImage | bytes) -> AnalysisReport:
    """Statically verify ``image``, memoised by its SHA-256 when raw bytes."""
    digest = ""
    if isinstance(image, (bytes, bytearray)):
        digest = hashlib.sha256(bytes(image)).hexdigest()
        with _REPORT_MEMO_LOCK:
            cached = _REPORT_MEMO.get(digest)
        if cached is not None:
            return cached
        parsed = parse_executable(bytes(image))
    else:
        parsed = image
    report = _verify_parsed(parsed, digest)
    if digest:
        with _REPORT_MEMO_LOCK:
            if len(_REPORT_MEMO) >= _REPORT_MEMO_LIMIT:
                _REPORT_MEMO.clear()
            _REPORT_MEMO[digest] = report
    return report


def _verify_parsed(image: ElfImage, digest: str) -> AnalysisReport:
    cfg = recover_cfg(image)
    result = analyze(cfg)
    min_size = image.load_size + HEAP_HEADROOM + DEFAULT_STACK_SIZE

    stack_ok = (result.stack_bounded
                and result.total_down <= min_size - _STACK_MARGIN)

    sites = _classify_sites(cfg, result, min_size, stack_ok)
    errors = [
        {"pc": e.pc, "reason": e.reason, "message": e.message,
         "severity": e.severity}
        for e in cfg.errors
    ]
    for e in cfg.errors:
        if e.severity == SEVERITY_ERROR:
            sites.append(SiteVerdict(e.pc, "code", VERDICT_UNSAFE, e.reason))

    proved_reads = frozenset(
        s.pc for s in sites if s.kind == "read" and s.verdict == VERDICT_PROVED)
    proved_writes = frozenset(
        s.pc for s in sites if s.kind == "write" and s.verdict == VERDICT_PROVED)
    verdict = "safe" if not any(s.verdict == VERDICT_UNSAFE for s in sites) \
        else "unsafe"
    sites.sort(key=lambda s: (s.pc, s.kind))
    return AnalysisReport(
        image_sha256=digest,
        verdict=verdict,
        min_size=min_size,
        stack_bounded=stack_ok,
        total_down=result.total_down,
        text_start=cfg.text_start,
        text_end=cfg.text_end,
        proved_reads=proved_reads,
        proved_writes=proved_writes,
        sites=sites,
        errors=errors,
    )


def _classify_sites(
    cfg: ControlFlowGraph,
    result: AnalysisResult,
    min_size: int,
    stack_ok: bool,
) -> list[SiteVerdict]:
    # Memory accesses: an instruction may be observed in several calling
    # contexts; it is proved only if proved in all of them, unsafe if any
    # context makes it definitely fault.
    merged: dict[tuple[int, str], tuple[str, int, str]] = {}
    for access in result.accesses:
        verdict, detail = _classify_access(access, min_size, stack_ok)
        key = (access.pc, access.kind)
        known = merged.get(key)
        if known is None:
            merged[key] = (verdict, access.width, detail)
        else:
            merged[key] = (_worst(known[0], verdict), known[1],
                           detail if verdict != VERDICT_PROVED else known[2])
    sites = [SiteVerdict(pc, kind, verdict, detail)
             for (pc, kind), (verdict, _w, detail) in merged.items()]

    # Syscall sites: the only legal numbers are 0..4; an interval disjoint
    # from that range always raises SyscallFault.
    syscall_best: dict[int, str] = {}
    for site in result.syscalls:
        number = site.number
        if number.zone == ZONE_ABS and number.hi <= 4:
            verdict = VERDICT_PROVED
        elif number.zone == ZONE_ABS and number.lo > 4:
            verdict = VERDICT_UNSAFE
        else:
            verdict = VERDICT_GUARD
        known = syscall_best.get(site.pc)
        syscall_best[site.pc] = _worst(known, verdict) if known else verdict
    sites.extend(SiteVerdict(pc, "syscall", verdict,
                             "" if verdict == VERDICT_PROVED
                             else "syscall number not statically 0..4")
                 for pc, verdict in syscall_best.items())

    # Branch sites: direct targets were validated during CFG recovery
    # (violations are CfgErrors); indirect control flow stays dynamic.
    for block in cfg.blocks.values():
        terminator = block.terminator
        if terminator is None:
            continue
        pc = block.instructions[-1][0]
        if terminator.op in (Op.JMPR, Op.CALLR):
            sites.append(SiteVerdict(pc, "branch", VERDICT_GUARD,
                                     "indirect target resolved dynamically"))
        elif terminator.op is Op.RET:
            sites.append(SiteVerdict(pc, "branch", VERDICT_GUARD,
                                     "return target resolved dynamically"))
        elif terminator.op in (Op.JMP, Op.CALL) or \
                terminator.info.is_branch and terminator.info.fmt.value == "rel":
            sites.append(SiteVerdict(pc, "branch", VERDICT_PROVED))
    return sites


def _classify_access(access, min_size: int, stack_ok: bool) -> tuple[str, str]:
    address = access.address
    width = access.width
    if address.zone == ZONE_ABS:
        if address.hi + width <= min_size:
            return VERDICT_PROVED, ""
        if address.lo + width > GUEST_ADDRESS_SPACE_LIMIT:
            return (VERDICT_UNSAFE,
                    f"address >= 0x{address.lo:x} exceeds the guest address "
                    f"space in every sandbox")
        return VERDICT_GUARD, "address range not bounded by min_size"
    if address.zone == ZONE_SP and stack_ok:
        slack = _ROOT_SLACK if access.root else _NESTED_SLACK
        if address.hi + width <= slack and address.lo >= -DELTA_LIMIT:
            return VERDICT_PROVED, ""
        return VERDICT_GUARD, "stack delta not bounded"
    return VERDICT_GUARD, "address not statically resolvable"


def _worst(a: str, b: str) -> str:
    order = {VERDICT_PROVED: 0, VERDICT_GUARD: 1, VERDICT_UNSAFE: 2}
    return a if order[a] >= order[b] else b
