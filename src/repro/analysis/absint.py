"""Abstract interpretation over recovered VXA-32 control flow.

Each function is analysed separately with a worklist fixpoint over the
domains in :mod:`repro.analysis.domains`.  The per-function state tracks the
eight registers plus a map of provable stack slots (entry-``sp``-relative,
4-byte, word-aligned).  On entry ``sp`` is ``SP(0)`` and ``fp`` is
``FP(0)`` -- the analysis never needs concrete addresses, which is what
makes its conclusions valid for every sufficiently large sandbox.

Calls are handled with **function summaries** computed by an optimistic
outer fixpoint: each summary starts at the best claim (stack-disciplined,
frame-pointer-preserving, writes nothing above its frame) and degrades
monotonically as the per-function analyses observe violations, so the loop
terminates and the final summaries are sound by induction on call-tree
height.

Memory-model caveat (shared with :mod:`repro.analysis.verify` and spelled
out in the package README): stack slots are assumed not to be aliased by
statically-unresolvable stores.  The dynamic backstop keeps isolation intact
even where a hostile image violates that assumption.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.domains import (
    DELTA_LIMIT,
    TOP,
    U32_MASK,
    ZONE_ABS,
    ZONE_FP,
    ZONE_SP,
    AbstractValue,
    exact,
    fp_entry,
    interval,
    signed32,
    sp_entry,
)
from repro.isa.encoding import Instruction
from repro.isa.opcodes import REG_SP, Op

#: Sentinel stack depth meaning "unbounded / unknown".
UNBOUNDED = 1 << 30

#: Block visits before joins switch to widening.
_WIDEN_AFTER = 3

_LOAD_WIDTHS = {Op.LD32: 4, Op.LD16U: 2, Op.LD8U: 1, Op.LD16S: 2, Op.LD8S: 1}
_STORE_WIDTHS = {Op.ST32: 4, Op.ST16: 2, Op.ST8: 1}


@dataclass
class FunctionSummary:
    """What callers may assume about one callee (optimistic start)."""

    sp_disciplined: bool = True    # sp is exactly restored at every RET
    preserves_fp: bool = True      # fp is exactly restored at every RET
    writes_above: bool = False     # writes a resolved slot above entry+4
    writes_unknown: bool = False   # performs any non-sp-relative write
    max_down: int = 0              # own-frame depth below entry sp, bytes
    calls_unknown: bool = False    # contains a reachable CALLR


@dataclass(frozen=True)
class Access:
    """One memory-access site with its abstract address."""

    pc: int
    kind: str                      # "read" | "write"
    width: int
    address: AbstractValue
    root: bool                     # observed in the entry function


@dataclass(frozen=True)
class SyscallSite:
    pc: int
    number: AbstractValue


@dataclass
class AnalysisResult:
    """Everything the verifier needs from the abstract interpretation."""

    summaries: dict[int, FunctionSummary]
    accesses: list[Access]
    syscalls: list[SyscallSite]
    stack_bounded: bool
    total_down: int                # max stack bytes below the root entry sp


class State:
    """Register file + provable stack slots at one program point."""

    __slots__ = ("regs", "slots")

    def __init__(self, regs: list[AbstractValue], slots: dict[int, AbstractValue]):
        self.regs = regs
        self.slots = slots

    @classmethod
    def at_function_entry(cls) -> "State":
        regs = [TOP] * 8
        regs[6] = fp_entry()
        regs[7] = sp_entry()
        return cls(regs, {})

    def copy(self) -> "State":
        return State(list(self.regs), dict(self.slots))

    def merge(self, other: "State", widen: bool) -> "State":
        regs = []
        for mine, theirs in zip(self.regs, other.regs):
            regs.append(mine.widen(theirs) if widen else mine.join(theirs))
        slots: dict[int, AbstractValue] = {}
        for key in self.slots.keys() & other.slots.keys():
            merged = (self.slots[key].widen(other.slots[key]) if widen
                      else self.slots[key].join(other.slots[key]))
            if not merged.is_top:
                slots[key] = merged
        return State(regs, slots)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, State)
                and self.regs == other.regs and self.slots == other.slots)

    def __hash__(self) -> int:  # pragma: no cover - states are not hashed
        raise TypeError("State is unhashable")


@dataclass
class _Observations:
    """Per-function facts gathered on the post-fixpoint collection pass."""

    accesses: list[Access] = field(default_factory=list)
    syscalls: list[SyscallSite] = field(default_factory=list)
    ret_sp_ok: bool = True
    ret_fp_ok: bool = True
    writes_above: bool = False
    writes_unknown: bool = False
    local_down: int = 0
    call_sites: list[tuple[int, int | None, int | None]] = field(default_factory=list)
    calls_unknown: bool = False


def analyze(cfg: ControlFlowGraph) -> AnalysisResult:
    """Run the interprocedural analysis over a recovered CFG."""
    summaries = {fn: FunctionSummary() for fn in cfg.functions}
    observations: dict[int, _Observations] = {}
    # The summary lattice is finite and every update is a monotone
    # degradation, so this converges well inside the iteration cap; the cap
    # only guards against bugs, falling back to fully pessimistic summaries.
    for _ in range(8 + 2 * len(summaries)):
        changed = False
        for fn in cfg.functions:
            states = _function_fixpoint(cfg, fn, summaries)
            obs = _collect(cfg, fn, states, summaries)
            observations[fn] = obs
            updated = FunctionSummary(
                sp_disciplined=obs.ret_sp_ok,
                preserves_fp=obs.ret_fp_ok,
                writes_above=obs.writes_above,
                writes_unknown=obs.writes_unknown,
                max_down=min(obs.local_down, UNBOUNDED),
                calls_unknown=obs.calls_unknown,
            )
            if updated != summaries[fn]:
                summaries[fn] = updated
                changed = True
        if not changed:
            break
    else:  # pragma: no cover - monotonicity bug backstop
        summaries = {fn: FunctionSummary(False, False, True, True, UNBOUNDED, True)
                     for fn in cfg.functions}
        for fn in cfg.functions:
            states = _function_fixpoint(cfg, fn, summaries)
            observations[fn] = _collect(cfg, fn, states, summaries)

    total_down = _total_down(cfg, observations)
    accesses = [a for obs in observations.values() for a in obs.accesses]
    syscalls = [s for obs in observations.values() for s in obs.syscalls]
    return AnalysisResult(
        summaries=summaries,
        accesses=accesses,
        syscalls=syscalls,
        stack_bounded=total_down < UNBOUNDED,
        total_down=total_down,
    )


def _function_fixpoint(
    cfg: ControlFlowGraph,
    fn_entry: int,
    summaries: dict[int, FunctionSummary],
) -> dict[int, State]:
    members = cfg.functions.get(fn_entry, set())
    if fn_entry not in cfg.blocks:
        return {}
    in_states: dict[int, State] = {fn_entry: State.at_function_entry()}
    visits: dict[int, int] = {}
    worklist: deque[int] = deque([fn_entry])
    while worklist:
        start = worklist.popleft()
        block = cfg.blocks.get(start)
        if block is None:
            continue
        state = in_states[start].copy()
        for pc, insn in block.instructions:
            _step(state, pc, insn, block.call_target, summaries, None, False)
        for succ in block.successors:
            if succ not in members:
                continue
            known = in_states.get(succ)
            if known is None:
                in_states[succ] = state.copy()
                worklist.append(succ)
                continue
            visits[succ] = visits.get(succ, 0) + 1
            merged = known.merge(state, widen=visits[succ] > _WIDEN_AFTER)
            if merged != known:
                in_states[succ] = merged
                worklist.append(succ)
    return in_states


def _collect(
    cfg: ControlFlowGraph,
    fn_entry: int,
    in_states: dict[int, State],
    summaries: dict[int, FunctionSummary],
) -> _Observations:
    obs = _Observations()
    root = fn_entry == cfg.entry
    for start, entry_state in in_states.items():
        block = cfg.blocks.get(start)
        if block is None:
            continue
        state = entry_state.copy()
        for pc, insn in block.instructions:
            _step(state, pc, insn, block.call_target, summaries, obs, root)
    return obs


def _total_down(cfg: ControlFlowGraph,
                observations: dict[int, _Observations]) -> int:
    """Max stack depth below the root entry sp, ``UNBOUNDED`` on recursion,
    unknown calls, or any call made with sp above the function entry."""
    memo: dict[int, int] = {}
    visiting: set[int] = set()

    def depth(fn: int) -> int:
        if fn in memo:
            return memo[fn]
        if fn in visiting:
            return UNBOUNDED
        obs = observations.get(fn)
        if obs is None:
            return UNBOUNDED
        visiting.add(fn)
        worst = obs.local_down
        if obs.calls_unknown:
            worst = UNBOUNDED
        for callee, lo, hi in obs.call_sites:
            if lo is None or hi is None or hi > 0:
                worst = UNBOUNDED
                break
            worst = max(worst, -lo + 4 + depth(callee))
        visiting.discard(fn)
        worst = min(worst, UNBOUNDED)
        memo[fn] = worst
        return worst

    return depth(cfg.entry)


# ---------------------------------------------------------------------------
# Transfer function
# ---------------------------------------------------------------------------

def _step(
    state: State,
    pc: int,
    insn: Instruction,
    call_target: int | None,
    summaries: dict[int, FunctionSummary],
    obs: _Observations | None,
    root: bool,
) -> None:
    """Execute one instruction abstractly, recording into ``obs`` when set."""
    op = insn.op
    regs = state.regs
    rd, rs = insn.rd, insn.rs

    if op in _LOAD_WIDTHS:
        width = _LOAD_WIDTHS[op]
        address = regs[rs].add_const(signed32(insn.imm))
        _record_access(obs, pc, "read", width, address, root)
        regs[rd] = _load_result(state, op, width, address)
    elif op in _STORE_WIDTHS:
        width = _STORE_WIDTHS[op]
        address = regs[rd].add_const(signed32(insn.imm))
        _record_access(obs, pc, "write", width, address, root)
        _store_effect(state, address, width, regs[rs], obs)
    elif op is Op.PUSH:
        value = regs[rd]
        new_sp = regs[REG_SP].add_const(-4)
        regs[REG_SP] = new_sp
        _record_access(obs, pc, "write", 4, new_sp, root)
        _store_effect(state, new_sp, 4, value, obs)
    elif op is Op.POP:
        address = regs[REG_SP]
        _record_access(obs, pc, "read", 4, address, root)
        value = _load_result(state, Op.LD32, 4, address)
        regs[REG_SP] = regs[REG_SP].add_const(4)
        regs[rd] = value
    elif op is Op.MOVI:
        regs[rd] = exact(insn.imm)
    elif op is Op.MOV:
        regs[rd] = regs[rs]
    elif op is Op.LEA:
        regs[rd] = regs[rs].add_const(signed32(insn.imm))
    elif op is Op.ADD:
        regs[rd] = regs[rd].add(regs[rs])
    elif op is Op.ADDI:
        regs[rd] = regs[rd].add_const(signed32(insn.imm))
    elif op is Op.SUB:
        regs[rd] = regs[rd].sub(regs[rs])
    elif op is Op.SUBI:
        regs[rd] = regs[rd].add_const(-signed32(insn.imm))
    elif op in (Op.MUL, Op.MULI):
        other = exact(insn.imm) if op is Op.MULI else regs[rs]
        regs[rd] = _mul(regs[rd], other)
    elif op in (Op.AND, Op.ANDI):
        other = exact(insn.imm) if op is Op.ANDI else regs[rs]
        regs[rd] = regs[rd].band(other)
    elif op in (Op.OR, Op.ORI, Op.XOR, Op.XORI):
        other = exact(insn.imm) if op in (Op.ORI, Op.XORI) else regs[rs]
        regs[rd] = _or_xor(op, regs[rd], other)
    elif op is Op.SHLI:
        regs[rd] = regs[rd].shl_const(insn.imm)
    elif op is Op.SHL:
        regs[rd] = (regs[rd].shl_const(regs[rs].lo)
                    if regs[rs].is_exact and regs[rs].zone == ZONE_ABS else TOP)
    elif op is Op.SHRUI:
        regs[rd] = regs[rd].shru_const(insn.imm)
    elif op is Op.SHRU:
        regs[rd] = (regs[rd].shru_const(regs[rs].lo)
                    if regs[rs].is_exact and regs[rs].zone == ZONE_ABS else TOP)
    elif op in (Op.SHRS, Op.SHRSI):
        # Arithmetic == logical shift when the value is provably non-negative.
        count = (insn.imm if op is Op.SHRSI
                 else (regs[rs].lo if regs[rs].is_exact
                       and regs[rs].zone == ZONE_ABS else None))
        value = regs[rd]
        if count is not None and value.zone == ZONE_ABS and value.hi < 1 << 31:
            regs[rd] = value.shru_const(count)
        else:
            regs[rd] = TOP
    elif op in (Op.DIVU, Op.REMU):
        divisor = regs[rs]
        if divisor.is_exact and divisor.zone == ZONE_ABS and divisor.lo > 0:
            d = divisor.lo
            if op is Op.REMU:
                regs[rd] = interval(0, d - 1)
            elif regs[rd].zone == ZONE_ABS:
                regs[rd] = interval(regs[rd].lo // d, regs[rd].hi // d)
            else:
                regs[rd] = interval(0, U32_MASK // d)
        else:
            regs[rd] = TOP
    elif op in (Op.DIVS, Op.REMS):
        regs[rd] = TOP
    elif op is Op.NOT:
        regs[rd] = exact(~regs[rs].lo) if regs[rs].is_exact \
            and regs[rs].zone == ZONE_ABS else TOP
    elif op is Op.NEG:
        regs[rd] = exact(-regs[rs].lo) if regs[rs].is_exact \
            and regs[rs].zone == ZONE_ABS else TOP
    elif op is Op.VXCALL:
        if obs is not None:
            obs.syscalls.append(SyscallSite(pc, regs[0]))
        regs[0] = TOP
        # READ may overwrite guest memory at a computed address: drop value
        # slots, keep frame-linkage slots (see module docstring caveat).
        state.slots = {k: v for k, v in state.slots.items() if v.zone == ZONE_FP}
    elif op is Op.CALL:
        ret_slot = regs[REG_SP].add_const(-4)
        _record_access(obs, pc, "write", 4, ret_slot, root)
        if obs is not None:
            sp = regs[REG_SP]
            if sp.zone == ZONE_SP:
                obs.call_sites.append((call_target, sp.lo, sp.hi)
                                      if call_target is not None
                                      else (-1, None, None))
                obs.local_down = max(obs.local_down, -(sp.lo - 4))
            else:
                obs.call_sites.append((call_target if call_target is not None
                                       else -1, None, None))
        summary = summaries.get(call_target) if call_target is not None else None
        _after_call(state, summary, obs)
    elif op is Op.CALLR:
        ret_slot = regs[REG_SP].add_const(-4)
        _record_access(obs, pc, "write", 4, ret_slot, root)
        if obs is not None:
            obs.calls_unknown = True
            obs.writes_above = True
            obs.writes_unknown = True
        _after_call(state, None, obs)
    elif op is Op.RET:
        address = regs[REG_SP]
        _record_access(obs, pc, "read", 4, address, root)
        if obs is not None:
            sp, fp = regs[REG_SP], regs[6]
            if not (sp.zone == ZONE_SP and sp.lo == sp.hi == 0):
                obs.ret_sp_ok = False
            if not (fp.zone == ZONE_FP and fp.lo == fp.hi == 0):
                obs.ret_fp_ok = False
    # HALT, NOP, CMP/CMPI (flags untracked) and branches leave the state as-is.

    if obs is not None:
        sp = regs[REG_SP]
        if sp.zone == ZONE_SP:
            obs.local_down = max(obs.local_down, -sp.lo)
        else:
            obs.local_down = UNBOUNDED


def _after_call(state: State, summary: FunctionSummary | None,
                obs: _Observations | None) -> None:
    """Apply a callee summary (``None`` means fully unknown callee)."""
    regs = state.regs
    for index in range(6):
        regs[index] = TOP
    if summary is None:
        regs[6] = TOP
        regs[REG_SP] = TOP
        state.slots = {}
        return
    if not summary.preserves_fp:
        regs[6] = TOP
    if not summary.sp_disciplined:
        regs[REG_SP] = TOP
    if summary.writes_above or summary.calls_unknown:
        state.slots = {}
    elif summary.writes_unknown:
        state.slots = {k: v for k, v in state.slots.items() if v.zone == ZONE_FP}
    if obs is not None:
        obs.writes_above |= summary.writes_above or summary.calls_unknown
        obs.writes_unknown |= summary.writes_unknown or summary.calls_unknown


def _record_access(obs: _Observations | None, pc: int, kind: str, width: int,
                   address: AbstractValue, root: bool) -> None:
    if obs is None:
        return
    obs.accesses.append(Access(pc, kind, width, address, root))
    if kind == "write":
        if address.zone == ZONE_SP:
            if address.hi + width > 4:
                obs.writes_above = True
        else:
            obs.writes_unknown = True
    if address.zone == ZONE_SP:
        obs.local_down = max(obs.local_down, -address.lo)


def _load_result(state: State, op: Op, width: int,
                 address: AbstractValue) -> AbstractValue:
    if (op is Op.LD32 and address.zone == ZONE_SP and address.is_exact
            and address.lo % 4 == 0):
        return state.slots.get(address.lo, TOP)
    if op is Op.LD8U:
        return interval(0, 0xFF)
    if op is Op.LD16U:
        return interval(0, 0xFFFF)
    return TOP


def _store_effect(state: State, address: AbstractValue, width: int,
                  value: AbstractValue, obs: _Observations | None) -> None:
    if address.zone == ZONE_SP:
        if address.is_exact and width == 4 and address.lo % 4 == 0:
            if value.is_top:
                state.slots.pop(address.lo, None)
            else:
                state.slots[address.lo] = value
            return
        lo = max(address.lo, -DELTA_LIMIT)
        hi = min(address.hi, DELTA_LIMIT)
        for key in list(state.slots):
            if key + 4 > lo and key < hi + width:
                del state.slots[key]
        return
    # Statically-unresolvable store: drop value slots, keep frame linkage
    # (documented memory-model caveat; the dynamic backstop covers hostile
    # images that violate it).
    state.slots = {k: v for k, v in state.slots.items() if v.zone == ZONE_FP}


def _mul(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a.is_exact and b.is_exact and a.zone == b.zone == ZONE_ABS:
        return exact(a.lo * b.lo)
    if a.zone == b.zone == ZONE_ABS and a.hi * b.hi <= U32_MASK:
        return interval(a.lo * b.lo, a.hi * b.hi)
    return TOP


def _or_xor(op: Op, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a.is_exact and b.is_exact and a.zone == b.zone == ZONE_ABS:
        if op in (Op.OR, Op.ORI):
            return exact(a.lo | b.lo)
        return exact(a.lo ^ b.lo)
    if a.zone == b.zone == ZONE_ABS and a.hi + b.hi <= U32_MASK:
        lo = max(a.lo, b.lo) if op in (Op.OR, Op.ORI) else 0
        return interval(lo, a.hi + b.hi)
    return TOP
