"""Static analysis of VXA-32 decoder images.

Public surface:

* :func:`repro.analysis.verify.verify_image` -- one-call static verification
  returning an :class:`~repro.analysis.verify.AnalysisReport`;
* :func:`repro.analysis.cfg.recover_cfg` -- CFG recovery on its own;
* :func:`repro.analysis.absint.analyze` -- the abstract interpreter.

See ``README.md`` in this package for the abstract domains and the
PROVED_SAFE contract the translator's guard elision relies on.
"""

from repro.analysis.absint import AnalysisResult, analyze
from repro.analysis.cfg import ControlFlowGraph, recover_cfg
from repro.analysis.verify import (
    VERDICT_GUARD,
    VERDICT_PROVED,
    VERDICT_UNSAFE,
    AnalysisReport,
    SiteVerdict,
    verify_image,
)

__all__ = [
    "AnalysisReport",
    "AnalysisResult",
    "ControlFlowGraph",
    "SiteVerdict",
    "VERDICT_GUARD",
    "VERDICT_PROVED",
    "VERDICT_UNSAFE",
    "analyze",
    "recover_cfg",
    "verify_image",
]
