"""Streaming ZIP archive writer with support for decoder pseudo-files."""

from __future__ import annotations

import io
import zlib

from repro.errors import ZipFormatError
from repro.zipformat.commit import (
    KIND_MEMBER,
    KIND_PSEUDO,
    MARKER_SIZE,
    CommitMarker,
    DigestTable,
    ExtentDigest,
    sha256,
)
from repro.zipformat.crc import crc32
from repro.zipformat.structures import (
    METHOD_DEFLATE,
    METHOD_STORE,
    ZipEntry,
    pack_central_header,
    pack_eocd,
    pack_local_header,
)

#: Largest user comment a committed archive can carry: the ZIP comment field
#: is 16-bit, and the commit marker rides in its final ``MARKER_SIZE`` bytes.
MAX_COMMITTED_COMMENT = 0xFFFF - MARKER_SIZE


def deflate_compress(data: bytes, level: int = 9) -> bytes:
    """Raw DEFLATE compression (the fixed algorithm decoders are stored with)."""
    compressor = zlib.compressobj(level, zlib.DEFLATED, -15)
    return compressor.compress(data) + compressor.flush()


def deflate_decompress(data: bytes, expected_size: int | None = None) -> bytes:
    """Raw DEFLATE decompression with an optional output-size sanity bound."""
    decompressor = zlib.decompressobj(-15)
    limit = expected_size if expected_size is not None else -1
    try:
        output = decompressor.decompress(data, max(0, limit) if limit >= 0 else 0)
        output += decompressor.flush()
    except zlib.error as error:
        raise ZipFormatError(f"corrupt deflate member: {error}") from None
    if expected_size is not None and len(output) != expected_size:
        raise ZipFormatError(
            f"deflate member decompressed to {len(output)} bytes, expected {expected_size}"
        )
    return output


class ZipWriter:
    """Builds a ZIP archive, either in memory or onto a caller-supplied sink.

    With no arguments the writer accumulates into an internal buffer and
    :meth:`finish` returns the archive bytes (the historical behaviour).
    Given a writable binary ``sink`` (a file opened with ``"wb"``, a socket
    wrapper, ...), members are written through as they are added and never
    held together in memory; :meth:`finish` then returns ``None`` and
    :attr:`total_size` reports how many bytes were produced.

    Members added with ``in_central_directory=False`` become "pseudo-files":
    they occupy space in the archive body with their own local header, but do
    not appear in the central directory, so ordinary ZIP tools never list
    them -- exactly how vxZIP hides archived decoders (paper section 3.2).
    """

    def __init__(self, sink=None):
        self._owns_sink = sink is None
        self._sink = io.BytesIO() if sink is None else sink
        self._offset = 0
        self._entries: list[ZipEntry] = []
        self._digests: list[ExtentDigest] = []
        self._finished = False

    def _write(self, blob: bytes) -> None:
        self._sink.write(blob)
        self._offset += len(blob)

    # -- adding members --------------------------------------------------------------

    def add_member(
        self,
        name: str,
        payload: bytes,
        *,
        method: int = METHOD_STORE,
        uncompressed_size: int | None = None,
        crc: int | None = None,
        extra: bytes = b"",
        comment: bytes = b"",
        in_central_directory: bool = True,
        external_attributes: int = 0,
    ) -> ZipEntry:
        """Add one member whose *stored* bytes are ``payload``.

        For ``METHOD_STORE`` the payload is the member data itself; for other
        methods the caller supplies already-compressed bytes together with
        the original size and CRC.
        """
        if self._finished:
            raise ZipFormatError("archive already finalised")
        if method == METHOD_STORE:
            uncompressed_size = len(payload)
            crc = crc32(payload) if crc is None else crc
        else:
            if uncompressed_size is None or crc is None:
                raise ZipFormatError(
                    "compressed members need an explicit uncompressed size and CRC"
                )
        entry = ZipEntry(
            name=name,
            method=method,
            crc32=crc,
            compressed_size=len(payload),
            uncompressed_size=uncompressed_size,
            local_header_offset=self._offset,
            extra=extra,
            comment=comment,
            in_central_directory=in_central_directory,
            external_attributes=external_attributes,
        )
        header = pack_local_header(entry)
        self._write(header)
        self._write(payload)
        self._entries.append(entry)
        # Digest the whole extent (header + name + extra + payload) so that
        # header corruption is as detectable later as payload bitrot.
        self._digests.append(ExtentDigest(
            kind=KIND_MEMBER if in_central_directory else KIND_PSEUDO,
            offset=entry.local_header_offset,
            size=len(header) + len(payload),
            digest=sha256(header + payload),
            name=name,
        ))
        return entry

    def add_deflate_member(self, name: str, data: bytes, **kwargs) -> ZipEntry:
        """Convenience: compress ``data`` with deflate and add it (method 8)."""
        compressed = deflate_compress(data)
        return self.add_member(
            name,
            compressed,
            method=METHOD_DEFLATE,
            uncompressed_size=len(data),
            crc=crc32(data),
            **kwargs,
        )

    def add_pseudo_file(self, data: bytes, *, deflate: bool = True) -> ZipEntry:
        """Add a hidden pseudo-file (used for archived decoders).

        Decoders are themselves compressed "using a fixed, well-known
        algorithm: namely the ubiquitous deflate method" (section 3.2).
        """
        if deflate:
            compressed = deflate_compress(data)
            return self.add_member(
                "",
                compressed,
                method=METHOD_DEFLATE,
                uncompressed_size=len(data),
                crc=crc32(data),
                in_central_directory=False,
            )
        return self.add_member("", data, in_central_directory=False)

    # -- finishing ---------------------------------------------------------------------

    @property
    def current_offset(self) -> int:
        return self._offset

    @property
    def total_size(self) -> int:
        """Bytes written so far (the archive size once finished)."""
        return self._offset

    def finish(self, comment: bytes = b"", *, commit: bool = False):
        """Write the central directory and EOCD.

        With ``commit=True`` a per-extent digest table is first written as a
        hidden pseudo-file and a commit marker is appended to the EOCD
        comment -- see :mod:`repro.zipformat.commit`.  Plain ZIP readers see
        both as inert bytes; commit-aware readers get torn-write detection
        and a bitrot oracle.

        Returns the archive bytes when the writer owns its buffer, ``None``
        when writing to a caller-supplied sink.
        """
        if self._finished:
            raise ZipFormatError("archive already finalised")
        marker_suffix = b""
        if commit:
            if len(comment) > MAX_COMMITTED_COMMENT:
                raise ZipFormatError(
                    f"comment of {len(comment)} bytes leaves no room for the "
                    f"commit marker (max {MAX_COMMITTED_COMMENT})"
                )
            table_blob = DigestTable(extents=list(self._digests)).pack()
            # Stored uncompressed: the table must stay readable even when
            # nothing else in the archive is.
            table_entry = self.add_member("", table_blob, in_central_directory=False)
            table_extent = self._digests.pop()  # the table does not digest itself
            table_offset = table_entry.local_header_offset
            table_size = table_extent.size
            table_sha = table_extent.digest  # covers the full extent, like all rows
        directory = bytearray()
        listed = [entry for entry in self._entries if entry.in_central_directory]
        for entry in listed:
            directory += pack_central_header(entry)
        directory_offset = self._offset
        # Recorded for callers that need the directory's extent after the
        # fact (the torn-finalize fault injector tears inside it).
        self.directory_offset = directory_offset
        self.directory_size = len(directory)
        self._write(bytes(directory))
        if commit:
            marker_suffix = CommitMarker(
                directory_offset=directory_offset,
                directory_size=len(directory),
                directory_sha256=sha256(bytes(directory)),
                table_offset=table_offset,
                table_size=table_size,
                table_sha256=table_sha,
            ).pack()
        self._write(pack_eocd(len(listed), len(directory), directory_offset,
                              comment + marker_suffix))
        self._finished = True
        if self._owns_sink:
            return self._sink.getvalue()
        return None
