"""From-scratch ZIP container: the substrate vxZIP builds on."""

from repro.zipformat.commit import (
    CommitMarker,
    DigestTable,
    ExtentDigest,
    MARKER_SIZE,
    find_marker_in_tail,
    parse_marker,
    split_comment,
)
from repro.zipformat.crc import StreamingCrc32, crc32
from repro.zipformat.reader import ByteSource, DEFAULT_CHUNK_SIZE, ZipReader
from repro.zipformat.structures import (
    ExtraField,
    METHOD_DEFLATE,
    METHOD_STORE,
    METHOD_VXA,
    ZipEntry,
    dos_datetime,
    pack_extra_fields,
    unpack_extra_fields,
)
from repro.zipformat.writer import ZipWriter, deflate_compress, deflate_decompress

__all__ = [
    "CommitMarker",
    "DigestTable",
    "ExtentDigest",
    "MARKER_SIZE",
    "find_marker_in_tail",
    "parse_marker",
    "split_comment",
    "StreamingCrc32",
    "crc32",
    "ByteSource",
    "DEFAULT_CHUNK_SIZE",
    "ZipReader",
    "ExtraField",
    "METHOD_DEFLATE",
    "METHOD_STORE",
    "METHOD_VXA",
    "ZipEntry",
    "dos_datetime",
    "pack_extra_fields",
    "unpack_extra_fields",
    "ZipWriter",
    "deflate_compress",
    "deflate_decompress",
]
