"""ZIP archive reader used by vxUnZIP."""

from __future__ import annotations

from repro.errors import ZipFormatError
from repro.zipformat.crc import crc32
from repro.zipformat.structures import (
    METHOD_DEFLATE,
    METHOD_STORE,
    METHOD_VXA,
    ZipEntry,
    find_eocd,
    unpack_central_header,
    unpack_local_header,
)
from repro.zipformat.writer import deflate_decompress

#: Refuse to inflate members that claim more than this (zip-bomb guard).
MAX_MEMBER_SIZE = 1 << 31


class ZipReader:
    """Parses a ZIP archive from bytes.

    Regular members are enumerated through the central directory, as standard
    tools do.  Decoder pseudo-files are *not* listed there; they are reached
    by absolute offset (stored in the VXA extension header of the members
    that use them) via :meth:`read_member_at`.
    """

    def __init__(self, data: bytes):
        self._data = data
        entry_count, directory_size, directory_offset, comment = find_eocd(data)
        if directory_offset + directory_size > len(data):
            raise ZipFormatError("central directory extends past end of archive")
        self.comment = comment
        self.entries: list[ZipEntry] = []
        offset = directory_offset
        for _ in range(entry_count):
            entry, offset = unpack_central_header(data, offset)
            self.entries.append(entry)

    # -- lookup ------------------------------------------------------------------------

    def names(self) -> list[str]:
        return [entry.name for entry in self.entries]

    def find(self, name: str) -> ZipEntry:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise ZipFormatError(f"archive has no member named {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(entry.name == name for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # -- member access -----------------------------------------------------------------

    def read_stored_bytes(self, entry: ZipEntry) -> bytes:
        """Return a member's stored (possibly compressed) bytes."""
        local_entry, data_offset = unpack_local_header(self._data, entry.local_header_offset)
        size = entry.compressed_size or local_entry.compressed_size
        end = data_offset + size
        if end > len(self._data):
            raise ZipFormatError(f"member {entry.name!r} extends past end of archive")
        return self._data[data_offset:end]

    def read_member(self, entry: ZipEntry, *, verify_crc: bool = True) -> bytes:
        """Decompress a member stored with a traditional ZIP method.

        Members using the VXA method cannot be read this way -- they need the
        archived decoder (raise, so callers fall back to the VXA path).
        """
        if entry.uncompressed_size > MAX_MEMBER_SIZE:
            raise ZipFormatError(f"member {entry.name!r} is implausibly large")
        stored = self.read_stored_bytes(entry)
        if entry.method == METHOD_STORE:
            data = stored
        elif entry.method == METHOD_DEFLATE:
            data = deflate_decompress(stored, entry.uncompressed_size)
        elif entry.method == METHOD_VXA:
            raise ZipFormatError(
                f"member {entry.name!r} uses the VXA method; extract it through "
                "the archive reader so the attached decoder can run"
            )
        else:
            raise ZipFormatError(
                f"member {entry.name!r} uses unsupported method {entry.method}"
            )
        if verify_crc and crc32(data) != entry.crc32:
            raise ZipFormatError(f"CRC mismatch for member {entry.name!r}")
        return data

    def read_member_at(self, offset: int, *, verify_crc: bool = True) -> tuple[ZipEntry, bytes]:
        """Read a member (typically a decoder pseudo-file) by local-header offset."""
        entry, data_offset = unpack_local_header(self._data, offset)
        end = data_offset + entry.compressed_size
        if end > len(self._data):
            raise ZipFormatError("pseudo-file extends past end of archive")
        stored = self._data[data_offset:end]
        if entry.method == METHOD_STORE:
            data = stored
        elif entry.method == METHOD_DEFLATE:
            data = deflate_decompress(stored, entry.uncompressed_size)
        else:
            raise ZipFormatError(
                f"pseudo-file at offset {offset} uses unsupported method {entry.method}"
            )
        if verify_crc and crc32(data) != entry.crc32:
            raise ZipFormatError(f"CRC mismatch for pseudo-file at offset {offset}")
        return entry, data
