"""ZIP archive reader used by vxUnZIP.

The reader operates over any seekable byte source -- in-memory bytes, an
``open(path, "rb")`` handle, an ``mmap`` -- and never materialises the whole
archive as a single ``bytes`` object: the end-of-central-directory record is
located by reading only the archive tail, the central directory is read as
one (small) blob, and member payloads are fetched by absolute offset in
bounded chunks.  This is what lets the :mod:`repro.api` facade serve
multi-gigabyte archives without loading them into memory.
"""

from __future__ import annotations

import io
import zlib
from typing import Iterator

from repro.errors import ZipFormatError
from repro.zipformat.commit import (
    CommitMarker,
    DigestTable,
    find_marker_in_tail,
    sha256,
    split_comment,
)
from repro.zipformat.crc import StreamingCrc32, crc32
from repro.zipformat.structures import (
    CENTRAL_HEADER_SIGNATURE,
    EOCD_MAX_SCAN,
    EOCD_SIGNATURE,
    LOCAL_HEADER_SIGNATURE,
    METHOD_DEFLATE,
    METHOD_STORE,
    METHOD_VXA,
    ZipEntry,
    parse_eocd,
    read_local_header,
    unpack_central_header,
    unpack_local_header,
)
from repro.zipformat.writer import deflate_decompress

#: Refuse to inflate members that claim more than this (zip-bomb guard).
MAX_MEMBER_SIZE = 1 << 31

#: Default unit for chunked member reads.
DEFAULT_CHUNK_SIZE = 1 << 16


class ByteSource:
    """Random-access byte reads over a seekable file object.

    ``read_at`` loops over short reads, so sources whose ``read()`` returns
    fewer bytes than requested (sockets wrapped in files, throttled readers,
    the capped-read objects the test suite uses) still work.
    """

    def __init__(self, file):
        for method in ("read", "seek", "tell"):
            if not hasattr(file, method):
                raise ZipFormatError(
                    "archive source must be a seekable binary file object "
                    f"(missing {method}())"
                )
        self._file = file
        file.seek(0, io.SEEK_END)
        self._size = file.tell()

    @property
    def size(self) -> int:
        return self._size

    def read_at(self, offset: int, length: int) -> bytes:
        """Read up to ``length`` bytes starting at ``offset``."""
        if length <= 0 or offset >= self._size:
            return b""
        self._file.seek(offset)
        chunks: list[bytes] = []
        remaining = min(length, self._size - offset)
        while remaining > 0:
            chunk = self._file.read(remaining)
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def iter_at(self, offset: int, length: int,
                chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
        """Yield ``length`` bytes starting at ``offset`` in bounded chunks."""
        position = offset
        end = offset + length
        while position < end:
            want = min(chunk_size, end - position)
            chunk = self.read_at(position, want)
            if len(chunk) < want:
                raise ZipFormatError("archive truncated during member read")
            position += len(chunk)
            yield chunk


class ZipReader:
    """Parses a ZIP archive from bytes or a seekable binary file object.

    Regular members are enumerated through the central directory, as standard
    tools do.  Decoder pseudo-files are *not* listed there; they are reached
    by absolute offset (stored in the VXA extension header of the members
    that use them) via :meth:`read_member_at`.
    """

    def __init__(self, source, *, salvage: bool = False):
        if isinstance(source, (bytes, bytearray, memoryview)):
            source = io.BytesIO(bytes(source))
        self._source = ByteSource(source)
        self.comment = b""
        self.entries: list[ZipEntry] = []
        #: Pseudo-file entries discovered by a salvage scan (empty otherwise).
        self.pseudo_entries: list[ZipEntry] = []
        self.commit_marker: CommitMarker | None = None
        #: True when the central directory's SHA-256 matched the commit marker.
        self.commit_verified = False
        self.digest_table: DigestTable | None = None
        #: True when the directory was rebuilt by scanning local headers.
        self.directory_reconstructed = False
        self.directory_offset: int | None = None
        self.directory_size: int | None = None
        #: Human-readable notes about damage encountered while opening.
        self.damage: list[str] = []
        try:
            self._open_via_directory(salvage=salvage)
        except ZipFormatError:
            if not salvage:
                raise
            self._open_via_scan()
        self._load_digest_table()

    # -- opening -----------------------------------------------------------------------

    def _open_via_directory(self, *, salvage: bool) -> None:
        entry_count, directory_size, directory_offset, raw_comment = self._locate_eocd()
        if directory_offset + directory_size > self._source.size:
            raise ZipFormatError("central directory extends past end of archive")
        self.comment, self.commit_marker = split_comment(raw_comment)
        directory = self._source.read_at(directory_offset, directory_size)
        if len(directory) < directory_size:
            raise ZipFormatError("central directory is truncated")
        if self.commit_marker is not None:
            if sha256(directory) == self.commit_marker.directory_sha256:
                self.commit_verified = True
            else:
                # The archive *claims* a committed state the directory bytes
                # contradict -- directory bitrot.  The directory may still
                # parse into plausible-looking garbage, so never trust it.
                raise ZipFormatError(
                    "central directory does not match the archive commit record"
                )
        entries: list[ZipEntry] = []
        offset = 0
        for _ in range(entry_count):
            entry, offset = unpack_central_header(directory, offset)
            entries.append(entry)
        self.entries = entries
        self.directory_offset = directory_offset
        self.directory_size = directory_size

    def _locate_eocd(self):
        """Find and parse the EOCD, scanning every candidate signature.

        The last ``PK\\x05\\x06`` in the tail is not necessarily the real
        record: comments and trailing junk can contain the byte pattern, and
        truncation can clip the genuine record.  Candidates are tried from
        the end backwards; one wins only if it parses cleanly and its
        directory bounds fit below it in the file.
        """
        size = self._source.size
        scan = min(size, EOCD_MAX_SCAN)
        base = size - scan
        tail = self._source.read_at(base, scan)
        position = tail.rfind(EOCD_SIGNATURE)
        first_error: ZipFormatError | None = None
        while position >= 0:
            try:
                parsed = parse_eocd(tail, position)
            except ZipFormatError as error:
                if first_error is None:
                    first_error = error
            else:
                _, directory_size, directory_offset, _ = parsed
                if directory_offset + directory_size <= base + position:
                    return parsed
                if first_error is None:
                    first_error = ZipFormatError(
                        "end of central directory record points outside the archive"
                    )
            position = tail.rfind(EOCD_SIGNATURE, 0, position)
        if first_error is not None:
            raise first_error
        raise ZipFormatError("end of central directory record not found")

    def _open_via_scan(self) -> None:
        """Reconstruct the member list by scanning local headers from offset 0.

        This is the damage-tolerant path: the central directory and EOCD are
        treated as lost, every parseable local-header extent is recovered
        (named members into :attr:`entries`, decoder pseudo-files into
        :attr:`pseudo_entries`), and corrupt stretches are skipped by
        resynchronising on the next record signature.
        """
        self.directory_reconstructed = True
        self.entries = []
        self.pseudo_entries = []
        self.directory_offset = None
        self.directory_size = None
        size = self._source.size
        if self.commit_marker is None:
            scan = min(size, EOCD_MAX_SCAN)
            tail = self._source.read_at(size - scan, scan)
            self.commit_marker = find_marker_in_tail(tail)
        offset = 0
        while offset + len(LOCAL_HEADER_SIGNATURE) <= size:
            signature = self._source.read_at(offset, 4)
            if signature in (CENTRAL_HEADER_SIGNATURE, EOCD_SIGNATURE):
                break
            if signature != LOCAL_HEADER_SIGNATURE:
                self.damage.append(f"unrecognised bytes at offset {offset}")
                offset = self._next_signature(offset + 1)
                continue
            try:
                entry, data_offset = read_local_header(self._source.read_at, offset)
                end = data_offset + entry.compressed_size
                if end > size:
                    raise ZipFormatError(
                        f"member extent at offset {offset} extends past end of archive"
                    )
            except ZipFormatError:
                self.damage.append(f"unparseable local header at offset {offset}")
                offset = self._next_signature(offset + 1)
                continue
            if entry.name:
                entry.in_central_directory = True
                self.entries.append(entry)
            else:
                entry.in_central_directory = False
                self.pseudo_entries.append(entry)
            offset = end

    def _next_signature(self, start: int) -> int:
        """Resynchronise: offset of the next record signature at/after ``start``."""
        signatures = (LOCAL_HEADER_SIGNATURE, CENTRAL_HEADER_SIGNATURE,
                      EOCD_SIGNATURE)
        size = self._source.size
        position = start
        overlap = 3
        while position < size:
            block = self._source.read_at(position, DEFAULT_CHUNK_SIZE + overlap)
            best = -1
            for signature in signatures:
                found = block.find(signature)
                if found >= 0 and (best < 0 or found < best):
                    best = found
            if best >= 0:
                return position + best
            if len(block) < DEFAULT_CHUNK_SIZE + overlap:
                break
            position += DEFAULT_CHUNK_SIZE
        return size

    def _load_digest_table(self) -> None:
        marker = self.commit_marker
        if marker is None:
            return
        extent = self._source.read_at(marker.table_offset, marker.table_size)
        if len(extent) != marker.table_size or sha256(extent) != marker.table_sha256:
            self.damage.append("digest table extent is damaged")
            return
        try:
            entry, data_offset = unpack_local_header(extent, 0)
            payload = extent[data_offset:data_offset + entry.compressed_size]
            self.digest_table = DigestTable.parse(payload)
        except ZipFormatError as error:
            self.damage.append(f"digest table is unreadable: {error}")

    # -- lookup ------------------------------------------------------------------------

    def names(self) -> list[str]:
        return [entry.name for entry in self.entries]

    def find(self, name: str) -> ZipEntry:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise ZipFormatError(f"archive has no member named {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(entry.name == name for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # -- member access -----------------------------------------------------------------

    def _stored_extent(self, entry: ZipEntry) -> tuple[int, int]:
        """Locate a member's stored payload; returns ``(data_offset, size)``."""
        local_entry, data_offset = read_local_header(
            self._source.read_at, entry.local_header_offset
        )
        size = entry.compressed_size or local_entry.compressed_size
        if data_offset + size > self._source.size:
            raise ZipFormatError(f"member {entry.name!r} extends past end of archive")
        return data_offset, size

    def read_stored_bytes(self, entry: ZipEntry) -> bytes:
        """Return a member's stored (possibly compressed) bytes."""
        data_offset, size = self._stored_extent(entry)
        return self._source.read_at(data_offset, size)

    def iter_stored_chunks(self, entry: ZipEntry, *,
                           chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
        """Yield a member's stored bytes in bounded chunks."""
        data_offset, size = self._stored_extent(entry)
        yield from self._source.iter_at(data_offset, size, chunk_size)

    def iter_member_chunks(self, entry: ZipEntry, *, verify_crc: bool = True,
                           chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
        """Decompress a traditionally-stored member as a stream of chunks.

        Members using the VXA method cannot be read this way -- they need the
        archived decoder (raise, so callers fall back to the VXA path).
        """
        if entry.uncompressed_size > MAX_MEMBER_SIZE:
            raise ZipFormatError(f"member {entry.name!r} is implausibly large")
        checksum = StreamingCrc32()
        if entry.method == METHOD_STORE:
            for chunk in self.iter_stored_chunks(entry, chunk_size=chunk_size):
                checksum.update(chunk)
                yield chunk
        elif entry.method == METHOD_DEFLATE:
            decompressor = zlib.decompressobj(-15)
            produced = 0
            for chunk in self.iter_stored_chunks(entry, chunk_size=chunk_size):
                out = decompressor.decompress(chunk)
                if out:
                    produced += len(out)
                    if produced > entry.uncompressed_size:
                        raise ZipFormatError(
                            f"deflate member decompressed to more than "
                            f"{entry.uncompressed_size} bytes, expected exactly that"
                        )
                    checksum.update(out)
                    yield out
            out = decompressor.flush()
            if out:
                produced += len(out)
                checksum.update(out)
                yield out
            if produced != entry.uncompressed_size:
                raise ZipFormatError(
                    f"deflate member decompressed to {produced} bytes, "
                    f"expected {entry.uncompressed_size}"
                )
        elif entry.method == METHOD_VXA:
            raise ZipFormatError(
                f"member {entry.name!r} uses the VXA method; extract it through "
                "the archive reader so the attached decoder can run"
            )
        else:
            raise ZipFormatError(
                f"member {entry.name!r} uses unsupported method {entry.method}"
            )
        if verify_crc and checksum.value != entry.crc32:
            raise ZipFormatError(f"CRC mismatch for member {entry.name!r}")

    def read_member(self, entry: ZipEntry, *, verify_crc: bool = True) -> bytes:
        """Decompress a member stored with a traditional ZIP method."""
        return b"".join(self.iter_member_chunks(entry, verify_crc=verify_crc))

    def read_member_at(self, offset: int, *, verify_crc: bool = True) -> tuple[ZipEntry, bytes]:
        """Read a member (typically a decoder pseudo-file) by local-header offset."""
        entry, data_offset = read_local_header(self._source.read_at, offset)
        if data_offset + entry.compressed_size > self._source.size:
            raise ZipFormatError("pseudo-file extends past end of archive")
        stored = self._source.read_at(data_offset, entry.compressed_size)
        if entry.method == METHOD_STORE:
            data = stored
        elif entry.method == METHOD_DEFLATE:
            data = deflate_decompress(stored, entry.uncompressed_size)
        else:
            raise ZipFormatError(
                f"pseudo-file at offset {offset} uses unsupported method {entry.method}"
            )
        if verify_crc and crc32(data) != entry.crc32:
            raise ZipFormatError(f"CRC mismatch for pseudo-file at offset {offset}")
        return entry, data

    def read_extent(self, offset: int, size: int) -> bytes:
        """Read raw archive bytes (for digest-table verification and repair)."""
        return self._source.read_at(offset, size)

    def member_extent(self, entry: ZipEntry) -> tuple[int, int]:
        """Full extent of a member: ``(local_header_offset, total_size)``."""
        _, data_offset = read_local_header(self._source.read_at,
                                           entry.local_header_offset)
        size = data_offset - entry.local_header_offset + entry.compressed_size
        return entry.local_header_offset, size

    @property
    def source_size(self) -> int:
        return self._source.size
