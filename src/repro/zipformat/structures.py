"""ZIP container record layouts (local headers, central directory, EOCD).

The vxZIP format "retains the same basic structure and features as the
existing ZIP format" (paper section 3.1): archives produced here are genuine
ZIP files -- the central directory lists ordinary members, decoder
pseudo-files hide between members with empty filenames, and VXA metadata
rides in a standard extra field.  Unmodified ZIP tools can list and partially
extract these archives (a property the test suite checks with ``zipfile``).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

LOCAL_HEADER_SIGNATURE = b"PK\x03\x04"
CENTRAL_HEADER_SIGNATURE = b"PK\x01\x02"
EOCD_SIGNATURE = b"PK\x05\x06"

_LOCAL_HEADER = struct.Struct("<4sHHHHHIIIHH")
_CENTRAL_HEADER = struct.Struct("<4sHHHHHHIIIHHHHHII")
_EOCD = struct.Struct("<4sHHHHIIH")

#: Compression method tags.
METHOD_STORE = 0
METHOD_DEFLATE = 8
#: The single "special" method tag reserved for files compressed with VXA
#: codecs that have no traditional ZIP method of their own (section 3.1).
METHOD_VXA = 0x5658          # 'VX'

#: Version-needed-to-extract values advertised in headers.
VERSION_STORE = 10
VERSION_DEFLATE = 20
VERSION_VXA = 63             # deliberately high: old tools must skip these members

#: Fixed DOS timestamp used for deterministic archives (2005-12-13, the
#: FAST '05 submission era); callers may override per file.
DEFAULT_DOS_TIME = (0, 0)            # midnight
DEFAULT_DOS_DATE = ((2005 - 1980) << 9) | (12 << 5) | 13


def dos_datetime(year: int, month: int, day: int, hour: int = 0, minute: int = 0,
                 second: int = 0) -> tuple[int, int]:
    """Convert a calendar date to the (time, date) words ZIP headers store."""
    if year < 1980:
        year = 1980
    dos_time = (hour << 11) | (minute << 5) | (second // 2)
    dos_date = ((year - 1980) << 9) | (month << 5) | day
    return dos_time, dos_date


@dataclass
class ZipEntry:
    """One archive member (or decoder pseudo-file)."""

    name: str
    method: int = METHOD_STORE
    crc32: int = 0
    compressed_size: int = 0
    uncompressed_size: int = 0
    local_header_offset: int = 0
    extra: bytes = b""
    comment: bytes = b""
    dos_time: int = DEFAULT_DOS_TIME[0] if isinstance(DEFAULT_DOS_TIME, tuple) else 0
    dos_date: int = DEFAULT_DOS_DATE
    external_attributes: int = 0
    flags: int = 0
    in_central_directory: bool = True

    @property
    def is_pseudo_file(self) -> bool:
        """Decoder pseudo-files have empty names and stay out of the directory."""
        return not self.name and not self.in_central_directory

    def version_needed(self) -> int:
        if self.method == METHOD_VXA:
            return VERSION_VXA
        if self.method == METHOD_DEFLATE:
            return VERSION_DEFLATE
        return VERSION_STORE


def pack_local_header(entry: ZipEntry) -> bytes:
    name_bytes = entry.name.encode("utf-8")
    header = _LOCAL_HEADER.pack(
        LOCAL_HEADER_SIGNATURE,
        entry.version_needed(),
        entry.flags,
        entry.method,
        entry.dos_time,
        entry.dos_date,
        entry.crc32,
        entry.compressed_size,
        entry.uncompressed_size,
        len(name_bytes),
        len(entry.extra),
    )
    return header + name_bytes + entry.extra


def read_local_header(read_at, offset: int):
    """Parse a local file header through a ``read_at(offset, length)`` callable.

    Works over any random-access byte source (an in-memory buffer, a seekable
    file, an mmap) so the reader never has to hold the whole archive in one
    ``bytes`` object.  Returns ``(entry, data_offset)``.
    """
    from repro.errors import ZipFormatError

    fixed = read_at(offset, _LOCAL_HEADER.size)
    if len(fixed) < _LOCAL_HEADER.size or fixed[:4] != LOCAL_HEADER_SIGNATURE:
        raise ZipFormatError(f"no local file header at offset {offset}")
    fields = _LOCAL_HEADER.unpack(fixed)
    (_, _, flags, method, dos_time, dos_date, crc, compressed_size,
     uncompressed_size, name_length, extra_length) = fields
    tail = read_at(offset + _LOCAL_HEADER.size, name_length + extra_length)
    if len(tail) < name_length + extra_length:
        raise ZipFormatError("local file header extends past end of archive")
    entry = ZipEntry(
        name=tail[:name_length].decode("utf-8", "replace"),
        method=method,
        crc32=crc,
        compressed_size=compressed_size,
        uncompressed_size=uncompressed_size,
        local_header_offset=offset,
        extra=tail[name_length:],
        dos_time=dos_time,
        dos_date=dos_date,
        flags=flags,
    )
    return entry, offset + _LOCAL_HEADER.size + name_length + extra_length


def unpack_local_header(data: bytes, offset: int):
    """Parse a local file header out of in-memory bytes; returns ``(entry, data_offset)``."""
    return read_local_header(lambda pos, length: data[pos : pos + length], offset)


def pack_central_header(entry: ZipEntry) -> bytes:
    name_bytes = entry.name.encode("utf-8")
    header = _CENTRAL_HEADER.pack(
        CENTRAL_HEADER_SIGNATURE,
        (3 << 8) | 63,               # made by: UNIX, spec 6.3
        entry.version_needed(),
        entry.flags,
        entry.method,
        entry.dos_time,
        entry.dos_date,
        entry.crc32,
        entry.compressed_size,
        entry.uncompressed_size,
        len(name_bytes),
        len(entry.extra),
        len(entry.comment),
        0,                           # disk number start
        0,                           # internal attributes
        entry.external_attributes,
        entry.local_header_offset,
    )
    return header + name_bytes + entry.extra + entry.comment


def unpack_central_header(data: bytes, offset: int):
    """Parse one central directory record; returns ``(entry, next_offset)``."""
    from repro.errors import ZipFormatError

    if data[offset : offset + 4] != CENTRAL_HEADER_SIGNATURE:
        raise ZipFormatError(f"no central directory record at offset {offset}")
    if offset + _CENTRAL_HEADER.size > len(data):
        raise ZipFormatError("central directory record extends past end of archive")
    fields = _CENTRAL_HEADER.unpack_from(data, offset)
    (_, _, _, flags, method, dos_time, dos_date, crc, compressed_size,
     uncompressed_size, name_length, extra_length, comment_length,
     _, _, external_attributes, local_offset) = fields
    name_start = offset + _CENTRAL_HEADER.size
    extra_start = name_start + name_length
    comment_start = extra_start + extra_length
    next_offset = comment_start + comment_length
    if next_offset > len(data):
        raise ZipFormatError("central directory record extends past end of archive")
    entry = ZipEntry(
        name=data[name_start:extra_start].decode("utf-8", "replace"),
        method=method,
        crc32=crc,
        compressed_size=compressed_size,
        uncompressed_size=uncompressed_size,
        local_header_offset=local_offset,
        extra=data[extra_start:comment_start],
        comment=data[comment_start:next_offset],
        dos_time=dos_time,
        dos_date=dos_date,
        flags=flags,
        external_attributes=external_attributes,
    )
    return entry, next_offset


def pack_eocd(entry_count: int, directory_size: int, directory_offset: int,
              comment: bytes = b"") -> bytes:
    return _EOCD.pack(
        EOCD_SIGNATURE,
        0,
        0,
        entry_count,
        entry_count,
        directory_size,
        directory_offset,
        len(comment),
    ) + comment


#: A ZIP comment is at most 64 KB, so the EOCD record always lives within
#: this many bytes of the end of the archive.
EOCD_SIZE = _EOCD.size
EOCD_MAX_SCAN = 65536 + _EOCD.size


def parse_eocd(buffer: bytes, position: int):
    """Parse an EOCD record at ``position`` inside ``buffer``.

    Returns ``(entry_count, directory_size, directory_offset, comment)``.
    Raises :class:`~repro.errors.ZipFormatError` (never ``struct.error``)
    when the record is truncated or its comment length lies about the tail.
    """
    from repro.errors import ZipFormatError

    if position < 0 or position + _EOCD.size > len(buffer):
        raise ZipFormatError("end of central directory record is truncated")
    fields = _EOCD.unpack_from(buffer, position)
    (_, _, _, entry_count, _, directory_size, directory_offset, comment_length) = fields
    comment_end = position + _EOCD.size + comment_length
    if comment_end > len(buffer):
        raise ZipFormatError(
            "end of central directory comment extends past end of archive"
        )
    comment = buffer[position + _EOCD.size : comment_end]
    return entry_count, directory_size, directory_offset, comment


def find_eocd(data: bytes):
    """Locate and parse the end-of-central-directory record.

    Scans backwards through *every* candidate signature in the tail window
    rather than trusting the last one: a ``PK\\x05\\x06`` byte pattern inside
    an archive comment (or in trailing junk appended after the archive) must
    not shadow the real record.  A candidate only wins if it parses cleanly
    and its directory offset/size fit inside the file.

    Returns ``(entry_count, directory_size, directory_offset, comment)``.
    """
    from repro.errors import ZipFormatError

    search_start = max(0, len(data) - EOCD_MAX_SCAN)
    position = data.rfind(EOCD_SIGNATURE, search_start)
    first_error: ZipFormatError | None = None
    while position >= 0:
        try:
            parsed = parse_eocd(data, position)
        except ZipFormatError as error:
            if first_error is None:
                first_error = error
        else:
            _, directory_size, directory_offset, _ = parsed
            if directory_offset + directory_size <= position <= len(data):
                return parsed
            if first_error is None:
                first_error = ZipFormatError(
                    "end of central directory record points outside the archive"
                )
        position = data.rfind(EOCD_SIGNATURE, search_start, position)
    if first_error is not None:
        raise first_error
    raise ZipFormatError("end of central directory record not found")


@dataclass
class ExtraField:
    """One entry of a ZIP extra-field block."""

    header_id: int
    payload: bytes = b""


def pack_extra_fields(fields: list[ExtraField]) -> bytes:
    blob = bytearray()
    for item in fields:
        blob += struct.pack("<HH", item.header_id, len(item.payload))
        blob += item.payload
    return bytes(blob)


def unpack_extra_fields(extra: bytes) -> list[ExtraField]:
    fields: list[ExtraField] = []
    offset = 0
    while offset + 4 <= len(extra):
        header_id, size = struct.unpack_from("<HH", extra, offset)
        offset += 4
        payload = extra[offset : offset + size]
        offset += size
        fields.append(ExtraField(header_id=header_id, payload=payload))
    return fields
