"""End-of-archive commit records: crash-consistent, corruption-evident finalize.

The paper's premise is that an archive must outlive the software and the
hardware that wrote it, yet a single torn write or flipped byte in the
central directory makes every member unreachable to a naive reader.  This
module defines the two on-media structures that close that gap:

* a **digest table** -- one hidden pseudo-file (empty name, absent from the
  central directory, stored uncompressed) holding the SHA-256 of every
  member extent written so far, members and decoder pseudo-files alike.
  Each digest covers the full extent: local header, name, extra field and
  stored payload, so header corruption is as detectable as payload bitrot;

* a **commit marker** -- a fixed-size trailer appended to the ZIP
  end-of-central-directory comment, carrying the offset/size/SHA-256 of
  both the central directory and the digest table, protected by its own
  CRC.  Writing it is the *last* thing ``finish()`` does, so its presence
  and integrity distinguish a committed archive from a torn one.

Both ride inside standard ZIP structures: unmodified ZIP tools list and
extract these archives exactly as before (the marker is comment bytes to
them, the table is one more invisible pseudo-file).  A reader that *does*
understand them gets, for free: torn-finalize detection, an authoritative
central-directory checksum, and a per-extent bitrot oracle that needs no
decoder runs -- the substrate :mod:`repro.repair` builds on.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

from repro.errors import ZipFormatError
from repro.zipformat.crc import crc32

#: First bytes of the digest-table pseudo-file payload.
DIGEST_TABLE_MAGIC = b"VXDT"

#: First bytes of the commit marker inside the EOCD comment.
COMMIT_MARKER_MAGIC = b"VXC1"

_MARKER_VERSION = 1
_TABLE_VERSION = 1

# magic + version + dir(offset,size) + dir sha + table(offset,size) + table sha + crc
_MARKER_FIXED = struct.Struct("<4sBQQ32sQQ32s")
_MARKER_CRC = struct.Struct("<I")
MARKER_SIZE = _MARKER_FIXED.size + _MARKER_CRC.size

_TABLE_HEADER = struct.Struct("<4sBI")
_TABLE_ENTRY = struct.Struct("<BQQ32sH")

#: Extent kinds recorded in the digest table.
KIND_MEMBER = 0          # listed in the central directory
KIND_PSEUDO = 1          # hidden pseudo-file (decoder image, ...)


def sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


@dataclass(frozen=True)
class ExtentDigest:
    """The recorded identity of one archive extent (header through payload)."""

    kind: int
    offset: int
    size: int
    digest: bytes
    name: str = ""

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True)
class CommitMarker:
    """Parsed contents of the trailing commit marker."""

    directory_offset: int
    directory_size: int
    directory_sha256: bytes
    table_offset: int
    table_size: int
    table_sha256: bytes

    def pack(self) -> bytes:
        body = _MARKER_FIXED.pack(
            COMMIT_MARKER_MAGIC,
            _MARKER_VERSION,
            self.directory_offset,
            self.directory_size,
            self.directory_sha256,
            self.table_offset,
            self.table_size,
            self.table_sha256,
        )
        return body + _MARKER_CRC.pack(crc32(body))


def parse_marker(blob: bytes) -> CommitMarker | None:
    """Parse one commit marker from exactly ``MARKER_SIZE`` bytes.

    Returns ``None`` -- never raises -- when the bytes are not a marker or
    the marker's own CRC fails: a corrupted marker means "not committed",
    which downstream treats exactly like a torn finalize.
    """
    if len(blob) != MARKER_SIZE or not blob.startswith(COMMIT_MARKER_MAGIC):
        return None
    body, crc_bytes = blob[:_MARKER_FIXED.size], blob[_MARKER_FIXED.size:]
    (recorded,) = _MARKER_CRC.unpack(crc_bytes)
    if crc32(body) != recorded:
        return None
    (_, version, dir_offset, dir_size, dir_sha,
     table_offset, table_size, table_sha) = _MARKER_FIXED.unpack(body)
    if version != _MARKER_VERSION:
        return None
    return CommitMarker(
        directory_offset=dir_offset,
        directory_size=dir_size,
        directory_sha256=dir_sha,
        table_offset=table_offset,
        table_size=table_size,
        table_sha256=table_sha,
    )


def split_comment(comment: bytes) -> tuple[bytes, CommitMarker | None]:
    """Separate a user comment from the commit marker appended to it.

    Archives written without a commit record (or by other tools) return
    ``(comment, None)`` unchanged.
    """
    if len(comment) >= MARKER_SIZE:
        marker = parse_marker(comment[-MARKER_SIZE:])
        if marker is not None:
            return comment[:-MARKER_SIZE], marker
    return comment, None


def find_marker_in_tail(tail: bytes) -> CommitMarker | None:
    """Scan raw archive tail bytes for a commit marker.

    The damage-recovery path uses this when the EOCD itself is unreadable
    (so the comment cannot be located the normal way): the marker's magic,
    fixed size and CRC make it safely recognisable in loose bytes.  The
    scan runs backwards so the *last* committed state wins.
    """
    position = tail.rfind(COMMIT_MARKER_MAGIC)
    while position >= 0:
        marker = parse_marker(tail[position:position + MARKER_SIZE])
        if marker is not None:
            return marker
        position = tail.rfind(COMMIT_MARKER_MAGIC, 0, position)
    return None


@dataclass
class DigestTable:
    """The per-extent digest table stored as a hidden pseudo-file."""

    extents: list[ExtentDigest] = field(default_factory=list)

    def pack(self) -> bytes:
        blob = bytearray(_TABLE_HEADER.pack(DIGEST_TABLE_MAGIC, _TABLE_VERSION,
                                            len(self.extents)))
        for extent in self.extents:
            name_bytes = extent.name.encode("utf-8")
            blob += _TABLE_ENTRY.pack(extent.kind, extent.offset, extent.size,
                                      extent.digest, len(name_bytes))
            blob += name_bytes
        return bytes(blob)

    @classmethod
    def parse(cls, blob: bytes) -> "DigestTable":
        if len(blob) < _TABLE_HEADER.size or not blob.startswith(DIGEST_TABLE_MAGIC):
            raise ZipFormatError("digest table payload is malformed")
        _, version, count = _TABLE_HEADER.unpack_from(blob, 0)
        if version != _TABLE_VERSION:
            raise ZipFormatError(f"unsupported digest table version {version}")
        extents: list[ExtentDigest] = []
        offset = _TABLE_HEADER.size
        for _ in range(count):
            if offset + _TABLE_ENTRY.size > len(blob):
                raise ZipFormatError("digest table is truncated")
            kind, ext_offset, size, digest, name_length = _TABLE_ENTRY.unpack_from(
                blob, offset)
            offset += _TABLE_ENTRY.size
            name = blob[offset:offset + name_length]
            if len(name) < name_length:
                raise ZipFormatError("digest table name is truncated")
            offset += name_length
            extents.append(ExtentDigest(kind=kind, offset=ext_offset, size=size,
                                        digest=digest,
                                        name=name.decode("utf-8", "replace")))
        return cls(extents=extents)

    def by_offset(self) -> dict[int, ExtentDigest]:
        return {extent.offset: extent for extent in self.extents}


__all__ = [
    "COMMIT_MARKER_MAGIC",
    "CommitMarker",
    "DIGEST_TABLE_MAGIC",
    "DigestTable",
    "ExtentDigest",
    "KIND_MEMBER",
    "KIND_PSEUDO",
    "MARKER_SIZE",
    "find_marker_in_tail",
    "parse_marker",
    "sha256",
    "split_comment",
]
