"""CRC-32 (IEEE 802.3 / ZIP polynomial), implemented from first principles.

The ZIP container stores a CRC-32 for every member; vxUnZIP uses it both for
normal extraction checks and for the archive integrity test that always runs
the archived VXA decoder (paper section 2.3).  Implemented here rather than
borrowed from ``zlib`` so the container layer is self-contained and the
table-driven algorithm is testable on its own.
"""

from __future__ import annotations

_POLYNOMIAL = 0xEDB88320


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        value = byte
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ _POLYNOMIAL
            else:
                value >>= 1
        table.append(value)
    return tuple(table)


_TABLE = _build_table()


def crc32(data: bytes, value: int = 0) -> int:
    """Compute (or continue) a CRC-32 over ``data``.

    ``value`` is a previously returned CRC to continue from, allowing
    streaming use: ``crc32(b, crc32(a)) == crc32(a + b)``.
    """
    accumulator = (~value) & 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        accumulator = (accumulator >> 8) ^ table[(accumulator ^ byte) & 0xFF]
    return (~accumulator) & 0xFFFFFFFF


class StreamingCrc32:
    """Incremental CRC-32 accumulator."""

    def __init__(self):
        self._value = 0

    def update(self, data: bytes) -> None:
        self._value = crc32(data, self._value)

    @property
    def value(self) -> int:
        return self._value
