"""``VxServeClient`` -- the retrying client for the ``vxserve`` service.

The server side (:mod:`repro.parallel.service`) sheds load with structured
``overloaded``/``quota_exceeded``/``circuit_open`` errors and
``retry_after_seconds`` hints; this module is the matching client-side
story the codebase previously left to every caller.  One class owns the
retry/timeout/backoff triple:

* **per-request timeouts** -- every round trip runs under a socket
  timeout; an expired timeout abandons the connection (the late response
  would desynchronise the JSON-lines stream) and retries on a fresh one;
* **bounded retries with exponential backoff and full jitter** -- attempt
  ``n`` sleeps ``uniform(0, min(max_delay, base_delay * 2**n))``, the
  AWS-style full-jitter schedule that decorrelates a thundering herd of
  clients all shed at the same instant;
* **``retry_after_seconds`` honoured** -- when the server sends a hint it
  becomes the *floor* of the computed delay, so clients never probe an
  open circuit breaker or a saturated gate earlier than asked;
* **reconnect on dropped socket** -- a peer reset, EOF mid-response, or a
  server restart turns into a transparent reconnect on the next attempt,
  not an exception in the caller.

Only refusals the server marks retryable (see ``docs/vxserve-protocol.md``)
are retried; real failures (``bad_json``, ``request_too_large``, archive
errors, ``draining``) surface immediately as :class:`VxServeError`.
Retried operations are safe to repeat: every ``vxserve`` op is idempotent
(extract re-writes the same bytes, check re-reads).

The ``vxquery`` console script wraps the client for shells and cron jobs::

    vxquery --socket /run/vxserve.sock ping
    vxquery --socket /run/vxserve.sock extract backup.zip out/ --jobs 4
    vxquery --socket /run/vxserve.sock --client ci --priority batch \\
        check backup.zip

This module deliberately imports no server code -- the wire protocol
(JSON lines + ``error_code`` strings) is the only contract.
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import socket
import sys
import time

from repro.errors import VxaError

#: Wire codes the server marks as worth retrying against the same endpoint.
#: ``archive_damaged`` is deliberately absent: media damage is a property of
#: the bytes on disk, so re-sending the request can only burn the server's
#: admission budget without ever succeeding.
RETRYABLE_CODES = frozenset({"overloaded", "quota_exceeded", "circuit_open"})

DEFAULT_TIMEOUT = 60.0
DEFAULT_RETRIES = 4
DEFAULT_BASE_DELAY = 0.05
DEFAULT_MAX_DELAY = 2.0


class VxServeError(VxaError):
    """A ``vxserve`` request failed and was not (or could not be) retried.

    Attributes:
        code: the structured ``error_code`` when the server sent one
            (``overloaded``, ``circuit_open``, ...), else ``None``.
        error_type: the server-side exception class name, when reported.
        retry_after_seconds: the server's backoff hint, when sent.
        attempts: round trips performed before giving up.
        response: the final raw response object, for callers that need
            fields this class does not lift out.
    """

    def __init__(self, message: str, *, code: str | None = None,
                 error_type: str | None = None,
                 retry_after_seconds: float | None = None,
                 attempts: int = 1, response: dict | None = None):
        super().__init__(message)
        self.code = code
        self.error_type = error_type
        self.retry_after_seconds = retry_after_seconds
        self.attempts = attempts
        self.response = response


class VxServeTimeout(VxServeError):
    """No response arrived within the per-request timeout (after retries)."""


class VxServeConnectionError(VxServeError):
    """The server could not be reached or kept dropping the connection."""


class VxServeClient:
    """A retrying JSON-lines client for one ``vxserve`` unix socket.

    Args:
        socket_path: the server's ``--socket`` path.
        client_id: value for each request's ``client`` field (per-client
            quotas and stats key off it).
        priority: default request priority (``interactive``/``batch``).
        timeout: per-request wall-clock budget, connection setup included.
        retries: additional attempts after the first (``0`` = single shot).
        base_delay / max_delay: full-jitter backoff schedule bounds.
        rng / sleep: injectable randomness and clock for deterministic
            tests.

    One instance owns one connection, used strictly request-by-request
    (the server answers a connection's requests in order).  The class is a
    context manager; it is *not* thread-safe -- give each thread its own
    client, the server multiplexes.
    """

    def __init__(self, socket_path: str, *, client_id: str | None = None,
                 priority: str | None = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 base_delay: float = DEFAULT_BASE_DELAY,
                 max_delay: float = DEFAULT_MAX_DELAY,
                 rng: random.Random | None = None, sleep=time.sleep):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        self.socket_path = str(socket_path)
        self.client_id = client_id
        self.priority = priority
        self.timeout = timeout
        self.retries = retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._rng = rng or random.Random()
        self._sleep = sleep
        self._ids = itertools.count(1)
        self._sock: socket.socket | None = None
        self._reader = None
        self.reconnects = 0

    # -- connection management ---------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError:
            sock.close()
            raise
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")

    def close(self) -> None:
        reader, sock = self._reader, self._sock
        self._reader = self._sock = None
        if reader is not None:
            try:
                reader.close()
            except OSError:
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "VxServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- one round trip -----------------------------------------------------

    def _roundtrip(self, request: dict, timeout: float) -> dict:
        """Send one request and read its response line; no retrying here.

        Any socket-level failure (refused, reset, EOF, timeout) closes the
        connection -- after a timeout the stream position is ambiguous, so
        the connection is never reused -- and propagates to the retry loop.
        """
        self.connect()
        try:
            self._sock.settimeout(timeout)
            payload = (json.dumps(request) + "\n").encode("utf-8")
            self._sock.sendall(payload)
            while True:
                line = self._reader.readline()
                if not line:
                    raise ConnectionResetError(
                        "server closed the connection mid-request")
                try:
                    response = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ConnectionResetError(
                        f"undecodable response line: {error}") from error
                if response.get("id") == request["id"]:
                    return response
                # A response for a request this connection never made
                # (possible only after a desynchronised reconnect): skip.
        except BaseException:
            self.close()
            raise

    # -- the retry loop -----------------------------------------------------

    def request(self, op: str, *, timeout: float | None = None,
                **fields) -> dict:
        """Issue ``op`` and return its ``result`` object.

        Retries transport failures and server refusals whose
        ``error_code`` is retryable, waiting the larger of the full-jitter
        backoff and the server's ``retry_after_seconds`` hint between
        attempts.  Raises :class:`VxServeError` (or a transport-flavoured
        subclass) when attempts are exhausted or the failure is final.
        """
        timeout = self.timeout if timeout is None else timeout
        request = {"id": next(self._ids), "op": op}
        if self.client_id is not None:
            request.setdefault("client", self.client_id)
        if self.priority is not None:
            request.setdefault("priority", self.priority)
        for name, value in fields.items():
            if value is not None:
                request[name] = value
        budget = self.retries + 1
        performed = 0
        last_error: BaseException | None = None
        last_response: dict | None = None
        for attempt in range(budget):
            if attempt:
                self._backoff(attempt - 1, last_response)
            performed = attempt + 1
            try:
                response = self._roundtrip(request, timeout)
            except socket.timeout as error:
                last_error, last_response = error, None
                continue
            except OSError as error:
                last_error, last_response = error, None
                self.reconnects += 1
                continue
            if response.get("ok"):
                return response.get("result", {})
            last_error, last_response = None, response
            if response.get("error_code") not in RETRYABLE_CODES:
                break
        if last_response is not None:
            raise VxServeError(
                f"{op} failed: {last_response.get('error', 'unknown error')}",
                code=last_response.get("error_code"),
                error_type=last_response.get("error_type"),
                retry_after_seconds=last_response.get("retry_after_seconds"),
                attempts=performed, response=last_response)
        if isinstance(last_error, socket.timeout):
            raise VxServeTimeout(
                f"{op} timed out after {performed} attempt(s) of {timeout}s",
                attempts=performed) from last_error
        raise VxServeConnectionError(
            f"{op} failed after {performed} attempt(s): {last_error}",
            attempts=performed) from last_error

    def _backoff(self, retry_index: int, response: dict | None) -> None:
        """Sleep before a retry: full jitter, floored by the server hint."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** retry_index))
        delay = self._rng.uniform(0.0, ceiling)
        if response is not None:
            hint = response.get("retry_after_seconds")
            if hint:
                delay = max(delay, float(hint))
        if delay > 0:
            self._sleep(delay)

    # -- convenience ops ----------------------------------------------------

    def ping(self, **fields) -> dict:
        return self.request("ping", **fields)

    def health(self, **fields) -> dict:
        return self.request("health", **fields)

    def stats(self, **fields) -> dict:
        return self.request("stats", **fields)

    def list(self, archive: str, **fields) -> dict:
        return self.request("list", archive=str(archive), **fields)

    def extract(self, archive: str, dest: str, *,
                members: list[str] | None = None, jobs: int | None = None,
                **fields) -> dict:
        return self.request("extract", archive=str(archive), dest=str(dest),
                            members=members, jobs=jobs, **fields)

    def check(self, archive: str, *, members: list[str] | None = None,
              jobs: int | None = None, **fields) -> dict:
        return self.request("check", archive=str(archive), members=members,
                            jobs=jobs, **fields)

    def drain(self, **fields) -> dict:
        return self.request("drain", **fields)

    def shutdown(self, **fields) -> dict:
        return self.request("shutdown", **fields)


# --------------------------------------------------------------------------
# vxquery CLI
# --------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vxquery",
        description="query a running vxserve instance (retrying client)",
    )
    parser.add_argument("--socket", required=True,
                        help="unix socket path the server listens on")
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT,
                        help="per-request timeout in seconds")
    parser.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                        help="retry attempts after the first (0 = one shot)")
    parser.add_argument("--client", default=None,
                        help="client id for quotas and per-client stats")
    parser.add_argument("--priority", default=None,
                        choices=("interactive", "batch"),
                        help="request priority (batch yields under load)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("ping", help="liveness round trip")
    commands.add_parser("health", help="pool/queue/breaker health snapshot")
    commands.add_parser("stats", help="gauges + monotonic counters")
    commands.add_parser("drain", help="refuse new work, wait for in-flight")
    commands.add_parser("shutdown", help="drain, then stop the service")

    list_parser = commands.add_parser("list", help="list archive members")
    list_parser.add_argument("archive")

    extract_parser = commands.add_parser("extract", help="extract members")
    extract_parser.add_argument("archive")
    extract_parser.add_argument("dest")
    extract_parser.add_argument("--members", default=None,
                                help="comma-separated member names "
                                     "(default: all)")
    extract_parser.add_argument("--jobs", type=int, default=None)
    extract_parser.add_argument("--mode", default=None,
                                choices=("auto", "native", "vxa"))

    check_parser = commands.add_parser("check", help="verify archive")
    check_parser.add_argument("archive")
    check_parser.add_argument("--members", default=None,
                              help="comma-separated member names")
    check_parser.add_argument("--jobs", type=int, default=None)

    raw_parser = commands.add_parser(
        "raw", help="send one raw JSON request object")
    raw_parser.add_argument("json", help="request object, e.g. "
                                         "'{\"op\": \"ping\"}'")
    return parser


def _split_members(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [name for name in value.split(",") if name]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    client = VxServeClient(args.socket, client_id=args.client,
                           priority=args.priority, timeout=args.timeout,
                           retries=args.retries)
    try:
        with client:
            if args.command == "list":
                result = client.list(args.archive)
            elif args.command == "extract":
                result = client.extract(
                    args.archive, args.dest,
                    members=_split_members(args.members),
                    jobs=args.jobs, mode=args.mode)
            elif args.command == "check":
                result = client.check(args.archive,
                                      members=_split_members(args.members),
                                      jobs=args.jobs)
            elif args.command == "raw":
                request = json.loads(args.json)
                if not isinstance(request, dict) or "op" not in request:
                    raise VxServeError(
                        "raw request must be a JSON object with an 'op'")
                op = request.pop("op")
                request.pop("id", None)
                result = client.request(op, **request)
            else:
                result = client.request(args.command)
    except VxServeError as error:
        detail = {"error": str(error), "error_code": error.code,
                  "error_type": error.error_type,
                  "attempts": error.attempts}
        if error.retry_after_seconds is not None:
            detail["retry_after_seconds"] = error.retry_after_seconds
        print(json.dumps(detail), file=sys.stderr)
        return 1
    except OSError as error:
        print(json.dumps({"error": str(error)}), file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
