"""Synthetic music-like audio for the audio codec benchmarks.

The paper benchmarks its FLAC and Vorbis decoders on music files.  The
generator below builds a deterministic "song": a chord progression of
harmonically-rich notes with amplitude envelopes, a little percussion-like
noise and stereo decorrelation, giving the lossless predictor and the lossy
quantiser realistic material (strong short-term correlation, non-stationary
envelopes).
"""

from __future__ import annotations

import numpy as np

from repro.formats.wav import WavAudio

#: A minor-pentatonic-ish scale in Hz used for the synthetic melody.
_SCALE = (220.0, 261.63, 293.66, 329.63, 392.0, 440.0, 523.25)


def synthetic_music(
    *,
    seconds: float = 2.0,
    sample_rate: int = 44100,
    channels: int = 2,
    seed: int = 0,
) -> WavAudio:
    """Generate a deterministic music-like clip."""
    rng = np.random.default_rng(seed)
    num_frames = int(seconds * sample_rate)
    time = np.arange(num_frames) / sample_rate
    mix = np.zeros(num_frames)

    note_length = max(1, sample_rate // 4)          # 250 ms notes
    position = 0
    while position < num_frames:
        frequency = float(rng.choice(_SCALE)) * (2.0 ** rng.integers(-1, 2))
        length = min(note_length, num_frames - position)
        t = time[position : position + length]
        envelope = np.exp(-3.0 * np.linspace(0, 1, length))
        note = np.zeros(length)
        for harmonic, amplitude in enumerate((1.0, 0.5, 0.25, 0.12), start=1):
            note += amplitude * np.sin(2 * np.pi * frequency * harmonic * t)
        mix[position : position + length] += envelope * note
        # Percussion tick at note onsets.
        tick_length = min(length, sample_rate // 100)
        mix[position : position + tick_length] += rng.normal(0, 0.4, tick_length) * np.exp(
            -np.linspace(0, 8, tick_length)
        )
        position += length

    # Gentle low-frequency "bass line".
    mix += 0.3 * np.sin(2 * np.pi * 55.0 * time)
    # Normalise to ~70% full scale.
    mix = mix / (np.abs(mix).max() + 1e-9) * 0.7

    if channels == 1:
        stereo = mix[:, np.newaxis]
    else:
        # Slightly delayed, attenuated copy on the other channels for realism.
        delayed = np.roll(mix, 37) * 0.85 + rng.normal(0, 0.002, num_frames)
        columns = [mix, delayed] + [
            np.roll(mix, 17 * extra) * 0.7 for extra in range(2, channels)
        ]
        stereo = np.stack(columns[:channels], axis=1)

    samples = np.clip(stereo * 32767, -32768, 32767).astype(np.int16)
    return WavAudio(sample_rate=sample_rate, samples=samples)


def synthetic_speech(
    *, seconds: float = 2.0, sample_rate: int = 16000, seed: int = 0
) -> WavAudio:
    """A rougher, speech-like mono signal (formant-ish bands + pauses)."""
    rng = np.random.default_rng(seed)
    num_frames = int(seconds * sample_rate)
    time = np.arange(num_frames) / sample_rate
    signal = np.zeros(num_frames)
    position = 0
    while position < num_frames:
        length = int(rng.uniform(0.08, 0.25) * sample_rate)
        length = min(length, num_frames - position)
        if rng.random() < 0.25:
            position += length           # pause
            continue
        pitch = rng.uniform(90, 220)
        t = time[position : position + length]
        voiced = np.sign(np.sin(2 * np.pi * pitch * t)) * 0.4
        formant = np.sin(2 * np.pi * rng.uniform(500, 2500) * t) * 0.2
        envelope = np.hanning(length)
        signal[position : position + length] = (voiced + formant) * envelope
        position += length
    samples = np.clip(signal * 32767, -32768, 32767).astype(np.int16)[:, np.newaxis]
    return WavAudio(sample_rate=sample_rate, samples=samples)
