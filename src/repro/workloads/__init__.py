"""Deterministic synthetic workloads standing in for the paper's test data."""

from repro.workloads.audio import synthetic_music, synthetic_speech
from repro.workloads.images import synthetic_diagram, synthetic_photo
from repro.workloads.text import (
    synthetic_log_bytes,
    synthetic_source_file,
    synthetic_source_tree_bytes,
)

__all__ = [
    "synthetic_music",
    "synthetic_speech",
    "synthetic_diagram",
    "synthetic_photo",
    "synthetic_log_bytes",
    "synthetic_source_file",
    "synthetic_source_tree_bytes",
]
