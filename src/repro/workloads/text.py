"""Synthetic source-tree-like text workloads.

The paper's general-purpose decoders are benchmarked on a Linux 2.6.11 kernel
source tree (section 5.2).  Kernel sources are not available offline, so this
module generates deterministic text with the statistical features that make
source code compressible: a limited identifier vocabulary, heavy keyword and
punctuation reuse, indentation, repeated idioms, and block-level boilerplate
(licence headers, include lists) repeated across files.
"""

from __future__ import annotations

import random

_KEYWORDS = (
    "static", "int", "unsigned", "long", "void", "struct", "return", "if",
    "else", "for", "while", "switch", "case", "break", "continue", "const",
    "char", "sizeof", "goto", "extern", "inline", "u32", "u64", "u8",
)

_IDENT_PARTS = (
    "dev", "buf", "len", "page", "inode", "sk", "irq", "cpu", "node", "req",
    "queue", "lock", "list", "entry", "ctx", "state", "flags", "ops", "priv",
    "ring", "desc", "addr", "offset", "count", "index", "mask", "timer",
)

_LICENSE_HEADER = """\
/*
 * This file is part of the synthetic kernel workload.
 *
 * This program is free software; you can redistribute it and/or modify it
 * under the terms of the GNU General Public License version 2 as published
 * by the Free Software Foundation.
 */
"""

_INCLUDES = (
    "#include <linux/kernel.h>",
    "#include <linux/module.h>",
    "#include <linux/slab.h>",
    "#include <linux/list.h>",
    "#include <linux/spinlock.h>",
    "#include <linux/interrupt.h>",
    "#include <asm/io.h>",
)


def _identifier(rng: random.Random) -> str:
    parts = rng.sample(_IDENT_PARTS, rng.randint(1, 3))
    return "_".join(parts)


def _function(rng: random.Random) -> str:
    name = _identifier(rng)
    lines = [f"static int {name}_{rng.choice(('init', 'probe', 'handler', 'read', 'write'))}"
             f"(struct {_identifier(rng)} *{rng.choice(('dev', 'priv', 'ctx'))}, int {rng.choice(('len', 'count', 'index'))})",
             "{"]
    local = _identifier(rng)
    lines.append(f"\tint {local} = 0;")
    for _ in range(rng.randint(3, 10)):
        kind = rng.random()
        variable = _identifier(rng)
        if kind < 0.3:
            lines.append(f"\tif ({variable} & {rng.choice(('0x1', '0xff', 'MASK', 'flags'))})")
            lines.append(f"\t\treturn -{rng.choice(('EINVAL', 'ENOMEM', 'EIO', 'EBUSY'))};")
        elif kind < 0.6:
            lines.append(f"\tfor ({local} = 0; {local} < {rng.choice(('count', 'len', '16', 'NR_CPUS'))}; {local}++) {{")
            lines.append(f"\t\t{variable}[{local}] = {rng.choice(('0', 'readl(base)', local, 'cpu_to_le32(val)'))};")
            lines.append("\t}")
        else:
            lines.append(f"\t{variable} = {rng.choice(('kmalloc(sizeof(*p), GFP_KERNEL)', 'readl(base + offset)', '0', 'len'))};")
    lines.append(f"\treturn {rng.choice(('0', local))};")
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def synthetic_source_file(size: int, *, seed: int = 0) -> str:
    """One synthetic C source file of roughly ``size`` characters."""
    rng = random.Random(seed)
    pieces = [_LICENSE_HEADER, "\n".join(rng.sample(_INCLUDES, rng.randint(3, len(_INCLUDES)))), ""]
    total = sum(len(piece) for piece in pieces)
    while total < size:
        function = _function(rng)
        pieces.append(function)
        total += len(function)
    return "\n".join(pieces)[:size]


def synthetic_source_tree_bytes(size: int, *, seed: int = 0, file_size: int = 8192) -> bytes:
    """A concatenation of synthetic source files totalling ``size`` bytes.

    Mirrors tarring up a source tree: many medium-sized files that share
    boilerplate, so cross-file redundancy is high -- the property that lets
    gzip/bzip2-class codecs shine on the paper's kernel-tree workload.
    """
    rng = random.Random(seed)
    pieces: list[str] = []
    total = 0
    index = 0
    while total < size:
        piece = synthetic_source_file(min(file_size, size - total), seed=rng.randint(0, 1 << 30) + index)
        pieces.append(piece)
        total += len(piece)
        index += 1
    return "".join(pieces).encode()[:size]


def synthetic_log_bytes(size: int, *, seed: int = 0) -> bytes:
    """Log-file-like text (timestamps + repeated message templates)."""
    rng = random.Random(seed)
    templates = (
        "kernel: [%d.%06d] %s: device %s ready (irq=%d)",
        "kernel: [%d.%06d] %s: queue %d stalled, resetting",
        "daemon[%d]: connection from 10.0.%d.%d closed",
        "daemon[%d]: request %s completed in %d us",
    )
    subsystems = ("eth0", "sda", "usb1-1", "pci 0000:00:1f.2", "nvme0")
    lines = []
    total = 0
    second = 1000
    while total < size:
        template = rng.choice(templates)
        second += rng.randint(0, 3)
        if "device" in template or "queue" in template:
            line = template % (second, rng.randint(0, 999999), rng.choice(subsystems),
                               rng.choice(subsystems), rng.randint(1, 64)) \
                if "device" in template else template % (
                    second, rng.randint(0, 999999), rng.choice(subsystems), rng.randint(0, 16))
        elif "connection" in template:
            line = template % (rng.randint(100, 999), rng.randint(0, 255), rng.randint(0, 255))
        else:
            line = template % (rng.randint(100, 999), hex(rng.randint(0, 1 << 32)), rng.randint(10, 90000))
        lines.append(line)
        total += len(line) + 1
    return "\n".join(lines).encode()[:size]
