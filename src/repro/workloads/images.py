"""Synthetic photographic images for the still-image codec benchmarks.

The paper benchmarks its JPEG and JPEG-2000 decoders on "typical pictures";
offline we synthesise images with photograph-like statistics: smooth
large-scale gradients (sky / illumination), mid-frequency structure
(objects / edges) and fine-grained sensor-style noise, which together give
DCT and wavelet coders realistic coefficient distributions.
"""

from __future__ import annotations

import numpy as np


def synthetic_photo(width: int, height: int, *, seed: int = 0) -> np.ndarray:
    """An ``(height, width, 3)`` RGB uint8 array with photo-like content."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    xs /= max(1, width - 1) if width > 1 else 1
    ys /= max(1, height - 1) if height > 1 else 1

    # Large-scale illumination gradient (like sky / vignetting).
    base = 90 + 110 * (0.6 * xs + 0.4 * (1 - ys))

    # A few soft "objects": gaussian blobs with random centres and colours.
    channels = [base.copy(), base.copy() * 0.92, base.copy() * 0.85]
    for _ in range(6):
        cx, cy = rng.uniform(0, 1), rng.uniform(0, 1)
        radius = rng.uniform(0.08, 0.35)
        amplitude = rng.uniform(-70, 70)
        blob = amplitude * np.exp(-(((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * radius**2)))
        colour = rng.uniform(0.4, 1.0, size=3)
        for channel in range(3):
            channels[channel] += blob * colour[channel]

    # A couple of hard edges (horizon / buildings) so there is high-frequency energy.
    edge_row = int(height * rng.uniform(0.55, 0.8))
    for channel in range(3):
        channels[channel][edge_row:, :] *= rng.uniform(0.55, 0.75)

    # Fine sensor noise.
    for channel in range(3):
        channels[channel] += rng.normal(0, 3.0, size=(height, width))

    image = np.stack(channels, axis=-1)
    return np.clip(image, 0, 255).astype(np.uint8)


def synthetic_diagram(width: int, height: int, *, seed: int = 0) -> np.ndarray:
    """A synthetic line-art/diagram image (flat regions + sharp lines).

    Used to exercise the codecs on graphics-like content where wavelet and
    DCT coders behave very differently from photographs.
    """
    rng = np.random.default_rng(seed)
    image = np.full((height, width, 3), 245, dtype=np.int64)
    for _ in range(10):
        x0, x1 = sorted(rng.integers(0, width, size=2))
        y0, y1 = sorted(rng.integers(0, height, size=2))
        colour = rng.integers(0, 200, size=3)
        image[y0:y1, x0:x1] = colour
    for _ in range(12):
        row = rng.integers(0, height)
        image[row, :, :] = 20
    for _ in range(12):
        col = rng.integers(0, width)
        image[:, col, :] = 20
    return np.clip(image, 0, 255).astype(np.uint8)
