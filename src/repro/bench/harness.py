"""Measurement helpers shared by the benchmark suite.

Each benchmark in ``benchmarks/`` regenerates one table or figure from the
paper's evaluation section.  The helpers here prepare the standard workloads
(one per codec class), time native and virtualised decoding, and collect the
decoder-size statistics for Table 2, so the individual benchmark files stay
focused on reporting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.codecs.base import Codec
from repro.codecs.registry import default_registry
from repro.formats.wav import write_wav
from repro.formats.ppm import write_ppm
from repro.vm.machine import ENGINE_INTERPRETER, ENGINE_TRANSLATOR, VirtualMachine
from repro.workloads.audio import synthetic_music
from repro.workloads.images import synthetic_photo
from repro.workloads.text import synthetic_source_tree_bytes

#: Workload sizes used by the figure benchmarks.  These are deliberately
#: small: the guest decoders run on a Python-hosted VM, so one decode is
#: seconds, not milliseconds (see EXPERIMENTS.md for the scaling discussion).
TEXT_WORKLOAD_BYTES = 12 * 1024
IMAGE_WORKLOAD_SIZE = (56, 48)          # width, height
AUDIO_WORKLOAD_SECONDS = 0.25
AUDIO_WORKLOAD_RATE = 8000


@dataclass
class DecoderWorkload:
    """One codec plus the encoded stream the Figure 7 benchmark decodes."""

    codec: Codec
    encoded: bytes
    original_size: int
    description: str


@dataclass
class EngineTiming:
    """Decode timings for one decoder under the different execution modes."""

    decoder: str
    native_seconds: float
    translator_seconds: float
    interpreter_seconds: float | None = None
    guest_instructions: int = 0
    output_bytes: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def translator_slowdown(self) -> float:
        return self.translator_seconds / self.native_seconds if self.native_seconds else 0.0

    @property
    def interpreter_slowdown(self) -> float | None:
        if self.interpreter_seconds is None or not self.native_seconds:
            return None
        return self.interpreter_seconds / self.native_seconds


def standard_workloads(*, registry=None) -> dict[str, DecoderWorkload]:
    """Build the six Figure 7 workloads (text, image and audio material)."""
    registry = registry or default_registry()
    text = synthetic_source_tree_bytes(TEXT_WORKLOAD_BYTES, seed=77)
    width, height = IMAGE_WORKLOAD_SIZE
    photo = synthetic_photo(width, height, seed=78)
    music = synthetic_music(
        seconds=AUDIO_WORKLOAD_SECONDS,
        sample_rate=AUDIO_WORKLOAD_RATE,
        channels=1,
        seed=79,
    )
    wav = write_wav(music)
    ppm = write_ppm(photo)

    workloads = {
        "vxz": DecoderWorkload(
            registry.get("vxz"), registry.get("vxz").encode(text), len(text),
            "synthetic source tree (kernel-tree stand-in)",
        ),
        "vxbwt": DecoderWorkload(
            registry.get("vxbwt"), registry.get("vxbwt").encode(text), len(text),
            "synthetic source tree (kernel-tree stand-in)",
        ),
        "vximg": DecoderWorkload(
            registry.get("vximg"), registry.get("vximg").encode(ppm), len(ppm),
            "synthetic photograph",
        ),
        "vxjp2": DecoderWorkload(
            registry.get("vxjp2"), registry.get("vxjp2").encode(ppm), len(ppm),
            "synthetic photograph",
        ),
        "vxflac": DecoderWorkload(
            registry.get("vxflac"), registry.get("vxflac").encode(wav), len(wav),
            "synthetic music clip",
        ),
        "vxsnd": DecoderWorkload(
            registry.get("vxsnd"), registry.get("vxsnd").encode(wav), len(wav),
            "synthetic music clip",
        ),
    }
    return workloads


def time_callable(func, *, repeats: int = 1) -> float:
    """Best-of-N wall-clock timing of ``func()`` (CPU-bound, single process)."""
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def measure_workload(
    workload: DecoderWorkload,
    *,
    include_interpreter: bool = False,
    native_repeats: int = 3,
) -> EngineTiming:
    """Measure native vs. virtualised decode time for one workload."""
    codec = workload.codec
    encoded = workload.encoded

    native_seconds = time_callable(lambda: codec.decode(encoded), repeats=native_repeats)

    image = codec.guest_decoder_image()
    vm = VirtualMachine(image, engine=ENGINE_TRANSLATOR)
    start = time.perf_counter()
    result = vm.decode(encoded)
    translator_seconds = time.perf_counter() - start
    if result.exit_code != 0:
        raise RuntimeError(f"guest decoder {codec.name} failed: {result.stderr!r}")

    interpreter_seconds = None
    if include_interpreter:
        vm_interp = VirtualMachine(image, engine=ENGINE_INTERPRETER)
        start = time.perf_counter()
        interp_result = vm_interp.decode(encoded)
        interpreter_seconds = time.perf_counter() - start
        if interp_result.output != result.output:
            raise RuntimeError(f"engines disagree for {codec.name}")

    return EngineTiming(
        decoder=codec.name,
        native_seconds=native_seconds,
        translator_seconds=translator_seconds,
        interpreter_seconds=interpreter_seconds,
        guest_instructions=result.stats.instructions,
        output_bytes=result.stats.bytes_written,
        extra={"encoded_bytes": len(encoded), "workload": workload.description},
    )


def decoder_size_rows(*, registry=None) -> list[dict]:
    """Table 2 rows: code size of every virtualised decoder."""
    registry = registry or default_registry()
    rows = []
    for codec in registry:
        build = codec.build_guest_decoder()
        total = build.text_size + build.data_size
        decoder_bytes = build.category_sizes.get("decoder", 0)
        library_bytes = total - decoder_bytes
        rows.append(
            {
                "decoder": codec.name,
                "category": codec.info.category,
                "total_bytes": total,
                "decoder_bytes": decoder_bytes,
                "decoder_share": decoder_bytes / total if total else 0.0,
                "library_bytes": library_bytes,
                "library_share": library_bytes / total if total else 0.0,
                "image_bytes": build.image_size,
                "compressed_bytes": build.compressed_size,
            }
        )
    return rows
