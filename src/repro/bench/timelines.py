"""Historical timeline datasets behind the paper's Figures 1 and 2.

Figure 1 plots the introduction dates of popular compression formats;
Figure 2 plots processor-architecture milestones over the same period.  The
argument the figures support is quantitative: data-encoding formats churn
every few years while the dominant processor architecture absorbs only a
handful of backward-compatible changes, which is why archiving *executable
decoders for a processor architecture* is the more durable choice.

The datasets below reproduce the entries visible in the paper's figures
(through its 2005 publication date) and the derived churn statistics the
benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimelineEvent:
    year: int
    name: str
    category: str


#: Figure 1: data compression formats, by introduction year.
COMPRESSION_FORMATS = (
    TimelineEvent(1977, "LZ77", "general"),
    TimelineEvent(1984, "LZW / compress", "general"),
    TimelineEvent(1987, "ARC", "general"),
    TimelineEvent(1989, "ZIP (deflate)", "general"),
    TimelineEvent(1992, "gzip", "general"),
    TimelineEvent(1992, "JPEG", "image"),
    TimelineEvent(1993, "MPEG-1 video", "video"),
    TimelineEvent(1994, "PNG", "image"),
    TimelineEvent(1995, "MP3 (MPEG-1 layer III)", "audio"),
    TimelineEvent(1996, "bzip2", "general"),
    TimelineEvent(1996, "MPEG-2 video", "video"),
    TimelineEvent(1999, "MPEG-4 / DivX", "video"),
    TimelineEvent(2000, "Ogg Vorbis", "audio"),
    TimelineEvent(2000, "JPEG 2000", "image"),
    TimelineEvent(2001, "FLAC", "audio"),
    TimelineEvent(2001, "WMA/WMV 8", "audio"),
    TimelineEvent(2003, "H.264 / AVC", "video"),
    TimelineEvent(2003, "7-Zip LZMA", "general"),
    TimelineEvent(2004, "WavPack 4", "audio"),
)

#: Figure 2: processor architecture milestones.
PROCESSOR_ARCHITECTURES = (
    TimelineEvent(1978, "Intel 8086 (x86-16)", "x86"),
    TimelineEvent(1982, "Intel 80286", "x86"),
    TimelineEvent(1985, "Intel 80386: 32-bit registers and addressing", "x86-change"),
    TimelineEvent(1989, "Intel 80486", "x86"),
    TimelineEvent(1993, "Pentium", "x86"),
    TimelineEvent(1996, "MMX vector extensions", "x86-change"),
    TimelineEvent(1999, "SSE vector extensions", "x86-change"),
    TimelineEvent(2001, "SSE2", "x86-change"),
    TimelineEvent(2003, "AMD Opteron: x86-64 (64-bit registers/addressing)", "x86-change"),
    # Non-x86 contenders of the period, none of which displaced x86.
    TimelineEvent(1985, "MIPS R2000", "other"),
    TimelineEvent(1986, "SPARC", "other"),
    TimelineEvent(1990, "IBM POWER", "other"),
    TimelineEvent(1992, "DEC Alpha", "other"),
    TimelineEvent(1993, "PowerPC", "other"),
    TimelineEvent(2001, "Itanium (IA-64)", "other"),
)


def events_per_decade(events) -> dict[str, int]:
    """Histogram of events per decade (e.g. "1990s" -> count)."""
    buckets: dict[str, int] = {}
    for event in events:
        decade = f"{event.year // 10 * 10}s"
        buckets[decade] = buckets.get(decade, 0) + 1
    return dict(sorted(buckets.items()))


def format_churn_summary() -> dict:
    """The quantitative claim behind Figures 1 and 2.

    Returns per-decade counts of new compression formats versus
    backward-compatible x86 architectural changes, plus the headline ratio.
    """
    formats = events_per_decade(COMPRESSION_FORMATS)
    x86_changes = [event for event in PROCESSOR_ARCHITECTURES if event.category == "x86-change"]
    changes = events_per_decade(x86_changes)
    span_years = 2005 - 1977
    return {
        "compression_formats_total": len(COMPRESSION_FORMATS),
        "compression_formats_per_decade": formats,
        "x86_architectural_changes_total": len(x86_changes),
        "x86_changes_per_decade": changes,
        "span_years": span_years,
        "formats_per_year": round(len(COMPRESSION_FORMATS) / span_years, 2),
        "x86_changes_per_year": round(len(x86_changes) / span_years, 2),
        "churn_ratio": round(len(COMPRESSION_FORMATS) / len(x86_changes), 1),
    }
