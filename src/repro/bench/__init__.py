"""Benchmark harness: workloads, timing helpers, timeline data, reporting."""

from repro.bench.harness import (
    DecoderWorkload,
    EngineTiming,
    decoder_size_rows,
    measure_workload,
    standard_workloads,
    time_callable,
)
from repro.bench.reporting import banner, format_kb, format_percent, format_ratio, format_table
from repro.bench.timelines import (
    COMPRESSION_FORMATS,
    PROCESSOR_ARCHITECTURES,
    events_per_decade,
    format_churn_summary,
)

__all__ = [
    "DecoderWorkload",
    "EngineTiming",
    "decoder_size_rows",
    "measure_workload",
    "standard_workloads",
    "time_callable",
    "banner",
    "format_kb",
    "format_percent",
    "format_ratio",
    "format_table",
    "COMPRESSION_FORMATS",
    "PROCESSOR_ARCHITECTURES",
    "events_per_decade",
    "format_churn_summary",
]
