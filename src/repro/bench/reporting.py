"""Plain-text table rendering for the benchmark reports.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and readable in the
``pytest -s`` / ``tee`` output the harness captures.
"""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], *, title: str | None = None) -> str:
    """Render a fixed-width text table."""
    columns = [[str(header)] + [str(row[index]) for row in rows]
               for index, header in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_kb(num_bytes: int) -> str:
    return f"{num_bytes / 1024:.1f}KB"


def format_ratio(value: float) -> str:
    return f"{value:.2f}x"


def format_percent(value: float) -> str:
    return f"{value * 100:.1f}%"


def banner(text: str) -> str:
    bar = "#" * (len(text) + 8)
    return f"\n{bar}\n### {text} ###\n{bar}"
