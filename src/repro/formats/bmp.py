"""Windows BMP reader/writer (24-bit uncompressed).

The paper's image decoders output "uncompressed images in the simple and
universally-understood Windows BMP file format" (section 5.1); the guest
image decoders here do the same, so this module provides the exact layout
they emit (BITMAPFILEHEADER + BITMAPINFOHEADER, bottom-up rows, BGR byte
order, rows padded to 4 bytes).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import FormatError

FILE_HEADER_SIZE = 14
INFO_HEADER_SIZE = 40
PIXEL_DATA_OFFSET = FILE_HEADER_SIZE + INFO_HEADER_SIZE


def row_stride(width: int) -> int:
    """Bytes per BMP row (3 bytes per pixel, padded to a multiple of 4)."""
    return (width * 3 + 3) & ~3


def write_bmp(pixels: np.ndarray) -> bytes:
    """Serialise an ``(height, width, 3)`` RGB uint8 array as a 24-bit BMP."""
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise FormatError("write_bmp expects an (H, W, 3) RGB array")
    height, width, _ = pixels.shape
    stride = row_stride(width)
    image_size = stride * height
    file_size = PIXEL_DATA_OFFSET + image_size

    header = struct.pack("<2sIHHI", b"BM", file_size, 0, 0, PIXEL_DATA_OFFSET)
    info = struct.pack(
        "<IiiHHIIiiII",
        INFO_HEADER_SIZE,
        width,
        height,
        1,              # planes
        24,             # bits per pixel
        0,              # BI_RGB, no compression
        image_size,
        2835,           # ~72 DPI
        2835,
        0,
        0,
    )
    body = bytearray(image_size)
    data = np.asarray(pixels, dtype=np.uint8)
    for row in range(height):
        source = data[height - 1 - row]            # bottom-up
        line = source[:, ::-1].tobytes()           # RGB -> BGR
        start = row * stride
        body[start : start + width * 3] = line
    return header + info + bytes(body)


def read_bmp(data: bytes) -> np.ndarray:
    """Parse a 24-bit uncompressed BMP into an ``(H, W, 3)`` RGB uint8 array."""
    if len(data) < PIXEL_DATA_OFFSET or data[:2] != b"BM":
        raise FormatError("not a BMP file")
    offset = struct.unpack_from("<I", data, 10)[0]
    header_size, width, height = struct.unpack_from("<Iii", data, 14)
    planes, bpp, compression = struct.unpack_from("<HHI", data, 26)
    if header_size < 40 or planes != 1 or bpp != 24 or compression != 0:
        raise FormatError("only 24-bit uncompressed BMP images are supported")
    bottom_up = height > 0
    height = abs(height)
    if width <= 0 or height <= 0:
        raise FormatError("BMP has non-positive dimensions")
    stride = row_stride(width)
    if offset + stride * height > len(data):
        raise FormatError("BMP pixel data is truncated")
    pixels = np.zeros((height, width, 3), dtype=np.uint8)
    for row in range(height):
        start = offset + row * stride
        line = np.frombuffer(data[start : start + width * 3], dtype=np.uint8)
        line = line.reshape(width, 3)[:, ::-1]     # BGR -> RGB
        target = height - 1 - row if bottom_up else row
        pixels[target] = line
    return pixels


def is_bmp(data: bytes) -> bool:
    """Cheap sniff used by the archiver's recognisers."""
    return len(data) >= PIXEL_DATA_OFFSET and data[:2] == b"BM"
