"""RIFF/WAVE reader and writer (16-bit PCM).

The paper's audio decoders emit "an uncompressed audio file in the ubiquitous
Windows WAV audio file format" (section 5.1).  The guest audio decoders here
write exactly this layout (RIFF header, ``fmt `` chunk, ``data`` chunk,
interleaved signed 16-bit little-endian samples), and the encoders accept it
as input.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError

HEADER_SIZE = 44


@dataclass
class WavAudio:
    """Decoded PCM audio: ``samples`` has shape (num_frames, channels)."""

    sample_rate: int
    samples: np.ndarray

    @property
    def channels(self) -> int:
        return self.samples.shape[1]

    @property
    def num_frames(self) -> int:
        return self.samples.shape[0]

    @property
    def duration_seconds(self) -> float:
        return self.num_frames / self.sample_rate if self.sample_rate else 0.0


def write_wav(audio: WavAudio) -> bytes:
    """Serialise 16-bit PCM audio as a canonical 44-byte-header WAV file."""
    samples = np.asarray(audio.samples, dtype=np.int16)
    if samples.ndim == 1:
        samples = samples[:, np.newaxis]
    num_frames, channels = samples.shape
    byte_rate = audio.sample_rate * channels * 2
    block_align = channels * 2
    data = samples.astype("<i2").tobytes()
    header = struct.pack(
        "<4sI4s4sIHHIIHH4sI",
        b"RIFF",
        36 + len(data),
        b"WAVE",
        b"fmt ",
        16,
        1,                      # PCM
        channels,
        audio.sample_rate,
        byte_rate,
        block_align,
        16,                     # bits per sample
        b"data",
        len(data),
    )
    return header + data


def read_wav(data: bytes) -> WavAudio:
    """Parse a 16-bit PCM WAV file."""
    if len(data) < HEADER_SIZE or data[:4] != b"RIFF" or data[8:12] != b"WAVE":
        raise FormatError("not a RIFF/WAVE file")
    offset = 12
    fmt = None
    pcm = None
    while offset + 8 <= len(data):
        chunk_id = data[offset : offset + 4]
        chunk_size = struct.unpack_from("<I", data, offset + 4)[0]
        body_start = offset + 8
        body_end = body_start + chunk_size
        if body_end > len(data):
            raise FormatError("WAV chunk extends past end of file")
        if chunk_id == b"fmt ":
            if chunk_size < 16:
                raise FormatError("WAV fmt chunk too small")
            fmt = struct.unpack_from("<HHIIHH", data, body_start)
        elif chunk_id == b"data":
            pcm = data[body_start:body_end]
        offset = body_end + (chunk_size & 1)
    if fmt is None or pcm is None:
        raise FormatError("WAV file is missing fmt or data chunk")
    audio_format, channels, sample_rate, _, _, bits = fmt
    if audio_format != 1 or bits != 16:
        raise FormatError("only 16-bit PCM WAV files are supported")
    if channels < 1 or channels > 8:
        raise FormatError(f"unsupported channel count {channels}")
    frame_count = len(pcm) // (channels * 2)
    samples = np.frombuffer(pcm[: frame_count * channels * 2], dtype="<i2")
    samples = samples.reshape(frame_count, channels).astype(np.int16)
    return WavAudio(sample_rate=sample_rate, samples=samples)


def is_wav(data: bytes) -> bool:
    """Cheap sniff used by the archiver's recognisers."""
    return len(data) >= 12 and data[:4] == b"RIFF" and data[8:12] == b"WAVE"
