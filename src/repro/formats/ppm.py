"""PPM (P6) image reader/writer.

PPM is the uncompressed interchange format the archiver's image encoders
accept as input (the paper's encoders read whatever their upstream library
reads; PPM is the simplest equivalent that keeps the workflow end-to-end).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError


def write_ppm(pixels: np.ndarray) -> bytes:
    """Serialise an ``(H, W, 3)`` RGB uint8 array as binary PPM (P6)."""
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise FormatError("write_ppm expects an (H, W, 3) RGB array")
    height, width, _ = pixels.shape
    header = f"P6\n{width} {height}\n255\n".encode()
    return header + np.asarray(pixels, dtype=np.uint8).tobytes()


def read_ppm(data: bytes) -> np.ndarray:
    """Parse a binary PPM (P6) file into an ``(H, W, 3)`` RGB uint8 array."""
    if not data.startswith(b"P6"):
        raise FormatError("not a binary PPM (P6) file")
    fields: list[int] = []
    offset = 2
    while len(fields) < 3:
        # Skip whitespace and comments.
        while offset < len(data) and data[offset : offset + 1].isspace():
            offset += 1
        if offset < len(data) and data[offset : offset + 1] == b"#":
            end = data.find(b"\n", offset)
            offset = len(data) if end < 0 else end + 1
            continue
        start = offset
        while offset < len(data) and not data[offset : offset + 1].isspace():
            offset += 1
        token = data[start:offset]
        if not token.isdigit():
            raise FormatError(f"bad PPM header token {token!r}")
        fields.append(int(token))
    width, height, max_value = fields
    if max_value != 255:
        raise FormatError("only 8-bit PPM images are supported")
    if width <= 0 or height <= 0:
        raise FormatError("PPM has non-positive dimensions")
    offset += 1  # single whitespace after the header
    expected = width * height * 3
    body = data[offset : offset + expected]
    if len(body) != expected:
        raise FormatError("PPM pixel data is truncated")
    return np.frombuffer(body, dtype=np.uint8).reshape(height, width, 3).copy()


def is_ppm(data: bytes) -> bool:
    """Cheap sniff used by the archiver's recognisers."""
    return data.startswith(b"P6")
