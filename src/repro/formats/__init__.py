"""Uncompressed container formats decoders extract into (BMP, WAV, PPM)."""

from repro.formats.bmp import is_bmp, read_bmp, write_bmp
from repro.formats.ppm import is_ppm, read_ppm, write_ppm
from repro.formats.sniff import (
    KIND_COMPRESSED,
    KIND_RAW_AUDIO,
    KIND_RAW_IMAGE,
    KIND_RAW_TEXT,
    SniffResult,
    looks_compressed,
    sniff,
)
from repro.formats.wav import WavAudio, is_wav, read_wav, write_wav

__all__ = [
    "is_bmp",
    "read_bmp",
    "write_bmp",
    "is_ppm",
    "read_ppm",
    "write_ppm",
    "KIND_COMPRESSED",
    "KIND_RAW_AUDIO",
    "KIND_RAW_IMAGE",
    "KIND_RAW_TEXT",
    "SniffResult",
    "looks_compressed",
    "sniff",
    "WavAudio",
    "is_wav",
    "read_wav",
    "write_wav",
]
