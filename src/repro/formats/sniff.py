"""Content-type sniffing used by the archiver's codec recognisers.

The vxZIP archiver decides per input file whether it is (a) raw content a
codec can compress, (b) content already compressed in a recognised codec
format (stored as-is with a decoder attached -- the "redec" path of section
2.2), or (c) unknown (compressed with the general-purpose default codec).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.bmp import is_bmp
from repro.formats.ppm import is_ppm
from repro.formats.wav import is_wav

#: Magic prefixes of this library's own compressed formats.
COMPRESSED_MAGICS = {
    b"VXZ1": "vxz",
    b"VXB1": "vxbwt",
    b"VXI1": "vximg",
    b"VXJ2": "vxjp2",
    b"VXF1": "vxflac",
    b"VXS1": "vxsnd",
}

KIND_RAW_TEXT = "raw-data"
KIND_RAW_IMAGE = "raw-image"
KIND_RAW_AUDIO = "raw-audio"
KIND_COMPRESSED = "compressed"


@dataclass(frozen=True)
class SniffResult:
    """Outcome of sniffing one input file."""

    kind: str
    codec_name: str | None = None   # for KIND_COMPRESSED: which codec produced it


def sniff(data: bytes) -> SniffResult:
    """Classify ``data`` for the archiver."""
    magic = data[:4]
    if magic in COMPRESSED_MAGICS:
        return SniffResult(kind=KIND_COMPRESSED, codec_name=COMPRESSED_MAGICS[magic])
    if is_ppm(data) or is_bmp(data):
        return SniffResult(kind=KIND_RAW_IMAGE)
    if is_wav(data):
        return SniffResult(kind=KIND_RAW_AUDIO)
    return SniffResult(kind=KIND_RAW_TEXT)


def looks_compressed(data: bytes) -> bool:
    return sniff(data).kind == KIND_COMPRESSED
