"""LZ77 string matching with hash chains.

This is the string-matching half of the ``vxz`` general-purpose codec (the
deflate-class codec of Table 1).  Match lengths and distances use the same
slot-plus-extra-bits ranges as DEFLATE so the compressed streams have the
familiar structure.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Matching parameters (same ranges as DEFLATE).
MIN_MATCH = 3
MAX_MATCH = 258
WINDOW_SIZE = 32 * 1024

#: Length slots: (base_length, extra_bits) for symbols 257.. (DEFLATE table).
LENGTH_SLOTS = (
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1), (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3), (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5), (258, 0),
)

#: Distance slots: (base_distance, extra_bits) (DEFLATE table).
DISTANCE_SLOTS = (
    (1, 0), (2, 0), (3, 0), (4, 0), (5, 1), (7, 1), (9, 2), (13, 2),
    (17, 3), (25, 3), (33, 4), (49, 4), (65, 5), (97, 5), (129, 6), (193, 6),
    (257, 7), (385, 7), (513, 8), (769, 8), (1025, 9), (1537, 9),
    (2049, 10), (3073, 10), (4097, 11), (6145, 11), (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
)

#: Number of literal/length symbols: 256 literals + end-of-block + length slots.
END_OF_BLOCK = 256
NUM_LITLEN_SYMBOLS = 257 + len(LENGTH_SLOTS)
NUM_DISTANCE_SYMBOLS = len(DISTANCE_SLOTS)


def length_to_slot(length: int) -> tuple[int, int, int]:
    """Map a match length to ``(slot_index, extra_bits, extra_value)``."""
    for index in range(len(LENGTH_SLOTS) - 1, -1, -1):
        base, extra = LENGTH_SLOTS[index]
        if length >= base:
            return index, extra, length - base
    raise ValueError(f"match length {length} below minimum")


def distance_to_slot(distance: int) -> tuple[int, int, int]:
    """Map a match distance to ``(slot_index, extra_bits, extra_value)``."""
    for index in range(len(DISTANCE_SLOTS) - 1, -1, -1):
        base, extra = DISTANCE_SLOTS[index]
        if distance >= base:
            return index, extra, distance - base
    raise ValueError(f"distance {distance} below minimum")


@dataclass(frozen=True)
class Token:
    """One LZ77 token: either a literal byte or a (length, distance) match."""

    literal: int | None = None
    length: int = 0
    distance: int = 0

    @property
    def is_literal(self) -> bool:
        return self.literal is not None


def tokenize(data: bytes, *, max_chain: int = 64, lazy: bool = True) -> list[Token]:
    """Greedy/lazy LZ77 parse of ``data`` into literals and matches.

    Args:
        data: input bytes.
        max_chain: hash-chain positions examined per match attempt (the
            compression-level knob).
        lazy: enable one-step lazy matching, as zlib does at higher levels.
    """
    length = len(data)
    tokens: list[Token] = []
    head: dict[int, int] = {}
    previous = [0] * length
    position = 0

    def hash_at(index: int) -> int:
        return data[index] | (data[index + 1] << 8) | (data[index + 2] << 16)

    def insert(index: int) -> None:
        if index + MIN_MATCH <= length:
            key = hash_at(index)
            previous[index] = head.get(key, -1)
            head[key] = index

    def find_match(index: int) -> tuple[int, int]:
        """Return (best_length, best_distance) for position ``index``."""
        if index + MIN_MATCH > length:
            return 0, 0
        key = hash_at(index)
        candidate = head.get(key, -1)
        best_length = 0
        best_distance = 0
        chain = max_chain
        limit = min(MAX_MATCH, length - index)
        window_start = index - WINDOW_SIZE
        while candidate >= 0 and candidate >= window_start and chain > 0:
            chain -= 1
            match_length = 0
            while (
                match_length < limit
                and data[candidate + match_length] == data[index + match_length]
            ):
                match_length += 1
            if match_length > best_length:
                best_length = match_length
                best_distance = index - candidate
                if match_length >= limit:
                    break
            candidate = previous[candidate]
        if best_length < MIN_MATCH:
            return 0, 0
        return best_length, best_distance

    while position < length:
        inserted_current = False
        match_length, match_distance = find_match(position)
        if lazy and MIN_MATCH <= match_length < MAX_MATCH and position + 1 < length:
            insert(position)
            inserted_current = True
            next_length, next_distance = find_match(position + 1)
            if next_length > match_length:
                tokens.append(Token(literal=data[position]))
                position += 1
                inserted_current = False
                match_length, match_distance = next_length, next_distance
        if match_length >= MIN_MATCH:
            tokens.append(Token(length=match_length, distance=match_distance))
            for offset in range(1 if inserted_current else 0, match_length):
                insert(position + offset)
            position += match_length
        else:
            if not inserted_current:
                insert(position)
            tokens.append(Token(literal=data[position]))
            position += 1
    return tokens


def reconstruct(tokens: list[Token]) -> bytes:
    """Inverse of :func:`tokenize` (reference decoder used in tests)."""
    output = bytearray()
    for token in tokens:
        if token.is_literal:
            output.append(token.literal)
        else:
            start = len(output) - token.distance
            for offset in range(token.length):
                output.append(output[start + offset])
    return bytes(output)
