"""``vxjp2``: the JPEG-2000-class wavelet still-image codec.

Analogue of the paper's ``jp2`` codec (Table 1, the JasPer-based JPEG-2000
decoder).  It uses the building blocks JPEG 2000's reversible path uses: the
reversible colour transform (RCT), a multi-level integer 5/3 lifting wavelet
decomposition, per-subband dead-zone quantisation, and an entropy-coded
coefficient stream.  Like the paper's decoder, ours emits a BMP image.

Stream layout (little endian)::

    0   4   magic "VXJ2"
    4   2   width (original)
    6   2   height
    8   1   decomposition levels
    9   1   quality (1..100; 100 selects lossless quantisation steps of 1)
    10  1   channels (3)
    11  ... entropy-coded token stream (same Huffman byte-stream layer as
            vximg): per channel, per subband, (run, value) coefficient tokens
            with run byte 255 meaning "rest of this subband is zero".
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.base import Codec, CodecInfo
from repro.codecs.bitio import read_uvarint, write_uvarint, zigzag_decode, zigzag_encode
from repro.codecs.vximg import _huffman_pack, _huffman_unpack
from repro.codecs.wavelet import forward_2d, inverse_2d, padded_size, subband_shapes
from repro.errors import CodecError
from repro.formats.bmp import is_bmp, read_bmp, write_bmp
from repro.formats.ppm import is_ppm, read_ppm

MAGIC = b"VXJ2"
_HEADER = struct.Struct("<4sHHBBB")
END_OF_BAND_RUN = 255
MAX_DIMENSION = 16384
DEFAULT_LEVELS = 3


# -- reversible colour transform (JPEG 2000 RCT) ----------------------------------

def rct_forward(rgb: np.ndarray) -> np.ndarray:
    r = rgb[..., 0].astype(np.int64)
    g = rgb[..., 1].astype(np.int64)
    b = rgb[..., 2].astype(np.int64)
    y = (r + 2 * g + b) >> 2
    u = b - g
    v = r - g
    return np.stack([y, u, v], axis=-1)


def rct_inverse(yuv: np.ndarray) -> np.ndarray:
    y = yuv[..., 0].astype(np.int64)
    u = yuv[..., 1].astype(np.int64)
    v = yuv[..., 2].astype(np.int64)
    g = y - ((u + v) >> 2)
    r = v + g
    b = u + g
    return np.clip(np.stack([r, g, b], axis=-1), 0, 255).astype(np.uint8)


def subband_step(name: str, quality: int) -> int:
    """Quantisation step for a subband; shared with the guest decoder.

    ``LL`` is always lossless (step 1).  Detail bands get coarser steps at
    finer levels and lower qualities; quality 100 is fully lossless.
    """
    if quality >= 100 or name == "LL":
        return 1
    base = max(1, (100 - quality) // 8)
    level = int(name[2:]) if name[2:] else 1
    # level 1 is the finest (largest) band and tolerates the coarsest step.
    step = base * (1 << max(0, 3 - level)) // 4
    if name.startswith("HH"):
        step *= 2
    return max(1, step)


class Vxjp2Codec(Codec):
    """JPEG-2000-class wavelet image codec; decoders output BMP."""

    info = CodecInfo(
        name="vxjp2",
        description="5/3 wavelet lossy/lossless image codec (JPEG-2000 class)",
        availability="repro.codecs.vxjp2",
        output_format="BMP image",
        category="image",
        lossy=True,
    )

    def __init__(self, *, quality: int = 75, levels: int = DEFAULT_LEVELS):
        if not 1 <= levels <= 6:
            raise ValueError("decomposition levels must be between 1 and 6")
        self._quality = quality
        self._levels = levels

    @property
    def magic(self) -> bytes:
        return MAGIC

    def can_encode(self, data: bytes) -> bool:
        return is_ppm(data) or is_bmp(data)

    # -- encoding ---------------------------------------------------------------------

    def encode(self, data: bytes, **options) -> bytes:
        quality = int(options.get("quality", self._quality))
        levels = int(options.get("levels", self._levels))
        pixels = read_ppm(data) if is_ppm(data) else read_bmp(data)
        return self.encode_pixels(pixels, quality=quality, levels=levels)

    def encode_pixels(self, pixels: np.ndarray, *, quality: int | None = None,
                      levels: int | None = None) -> bytes:
        quality = self._quality if quality is None else quality
        levels = self._levels if levels is None else levels
        height, width = pixels.shape[:2]
        if height > MAX_DIMENSION or width > MAX_DIMENSION:
            raise CodecError("image too large for vxjp2")
        padded_height = padded_size(height, levels)
        padded_width = padded_size(width, levels)
        yuv = rct_forward(pixels)
        padded = np.pad(
            yuv,
            ((0, padded_height - height), (0, padded_width - width), (0, 0)),
            mode="edge",
        )
        bands = subband_shapes(padded_height, padded_width, levels)

        tokens = bytearray()
        for channel in range(3):
            coefficients = forward_2d(padded[..., channel], levels)
            for name, row, col, band_height, band_width in bands:
                step = subband_step(name, quality)
                band = coefficients[row : row + band_height, col : col + band_width]
                quantised = _dead_zone_quantise(band, step)
                _encode_band(tokens, quantised)

        header = _HEADER.pack(MAGIC, width, height, levels, quality, 3)
        return header + _huffman_pack(bytes(tokens))

    # -- native decoding -------------------------------------------------------------------

    def decode(self, data: bytes) -> bytes:
        if len(data) < _HEADER.size or data[:4] != MAGIC:
            raise CodecError("not a vxjp2 stream")
        _, width, height, levels, quality, channels = _HEADER.unpack_from(data, 0)
        if channels != 3:
            raise CodecError("vxjp2 supports 3-channel images only")
        if not 1 <= levels <= 6 or not width or not height:
            raise CodecError("vxjp2 header is malformed")
        padded_height = padded_size(height, levels)
        padded_width = padded_size(width, levels)
        bands = subband_shapes(padded_height, padded_width, levels)
        tokens = _huffman_unpack(data, _HEADER.size)

        planes = np.zeros((padded_height, padded_width, 3), dtype=np.int64)
        offset = 0
        for channel in range(3):
            coefficients = np.zeros((padded_height, padded_width), dtype=np.int64)
            for name, row, col, band_height, band_width in bands:
                step = subband_step(name, quality)
                band, offset = _decode_band(tokens, offset, band_height, band_width)
                coefficients[row : row + band_height, col : col + band_width] = band * step
            planes[..., channel] = inverse_2d(coefficients, levels)
        rgb = rct_inverse(planes[:height, :width])
        return write_bmp(rgb)

    # -- guest decoder ------------------------------------------------------------------------

    def guest_units(self):
        from repro.codecs.guest import vxjp2_guest_units

        return vxjp2_guest_units()


def _dead_zone_quantise(band: np.ndarray, step: int) -> np.ndarray:
    """Dead-zone quantiser: truncate magnitudes toward zero (JPEG 2000 style)."""
    if step == 1:
        return band.astype(np.int64)
    magnitudes = np.abs(band) // step
    return np.sign(band) * magnitudes


def _encode_band(tokens: bytearray, band: np.ndarray) -> None:
    flat = band.reshape(-1)
    run = 0
    for value in flat:
        if value == 0:
            run += 1
            continue
        while run > 254:
            tokens.append(254)
            write_uvarint(tokens, zigzag_encode(0))
            run -= 255
        tokens.append(run)
        write_uvarint(tokens, zigzag_encode(int(value)))
        run = 0
    tokens.append(END_OF_BAND_RUN)


def _decode_band(tokens: bytes, offset: int, height: int, width: int) -> tuple[np.ndarray, int]:
    flat = np.zeros(height * width, dtype=np.int64)
    position = 0
    while True:
        if offset >= len(tokens):
            raise CodecError("truncated vxjp2 token stream")
        run = tokens[offset]
        offset += 1
        if run == END_OF_BAND_RUN:
            break
        position += run
        value, offset = read_uvarint(tokens, offset)
        if position >= flat.size:
            raise CodecError("vxjp2 coefficient run overflows its subband")
        flat[position] = zigzag_decode(value)
        position += 1
    return flat.reshape(height, width), offset
