"""``vxsnd``: the lossy audio codec (Vorbis stand-in).

The paper's ``vorbis`` codec is a recogniser-decoder for Ogg Vorbis streams.
A faithful Vorbis implementation (MDCT, floor curves, codebooks) is far
outside what a from-scratch reproduction can justify, so the lossy-audio role
is filled by block-adaptive IMA ADPCM: a real, widely deployed lossy audio
scheme (4 bits per sample) whose decoder has the same shape -- a tight
per-sample loop driven by table lookups -- and likewise emits a WAV file.
The substitution is recorded in DESIGN.md.

Stream layout (little endian)::

    0   4   magic "VXS1"
    4   4   sample rate
    8   1   channels
    9   4   number of frames
    13  2   block size in frames
    15  ... blocks; per block, per channel:
            s16 initial predictor, u8 initial step index, u8 reserved,
            then one 4-bit code per frame, packed two per byte (low nibble
            first), padded to a whole byte per channel.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.base import Codec, CodecInfo
from repro.errors import CodecError
from repro.formats.wav import WavAudio, is_wav, read_wav, write_wav

MAGIC = b"VXS1"
_HEADER = struct.Struct("<4sIBIH")
_BLOCK_CHANNEL_HEADER = struct.Struct("<hBB")
DEFAULT_BLOCK_SIZE = 2048

#: Standard IMA ADPCM step-size table (89 entries).
STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
    34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
    157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544,
    598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878,
    2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818,
    18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

#: Standard IMA ADPCM index-adjustment table.
INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def _encode_sample(sample: int, predictor: int, index: int) -> tuple[int, int, int]:
    """Encode one sample; returns (code, new_predictor, new_index)."""
    step = STEP_TABLE[index]
    delta = sample - predictor
    code = 0
    if delta < 0:
        code = 8
        delta = -delta
    if delta >= step:
        code |= 4
        delta -= step
    if delta >= step >> 1:
        code |= 2
        delta -= step >> 1
    if delta >= step >> 2:
        code |= 1
    predictor, index = _decode_sample(code, predictor, index)
    return code, predictor, index


def _decode_sample(code: int, predictor: int, index: int) -> tuple[int, int]:
    """Decode one 4-bit code; returns (new_predictor, new_index).

    This is the exact arithmetic the guest decoder implements.
    """
    step = STEP_TABLE[index]
    difference = step >> 3
    if code & 4:
        difference += step
    if code & 2:
        difference += step >> 1
    if code & 1:
        difference += step >> 2
    if code & 8:
        predictor -= difference
    else:
        predictor += difference
    predictor = max(-32768, min(32767, predictor))
    index += INDEX_TABLE[code]
    index = max(0, min(88, index))
    return predictor, index


class VxsndCodec(Codec):
    """Block-adaptive ADPCM lossy audio codec (Vorbis stand-in); outputs WAV."""

    info = CodecInfo(
        name="vxsnd",
        description="Block-adaptive ADPCM lossy audio codec (Vorbis-class role)",
        availability="repro.codecs.vxsnd",
        output_format="WAV audio",
        category="audio",
        lossy=True,
    )

    def __init__(self, *, block_size: int = DEFAULT_BLOCK_SIZE):
        if not 64 <= block_size <= 65535:
            raise ValueError("block size must be between 64 and 65535 frames")
        self._block_size = block_size

    @property
    def magic(self) -> bytes:
        return MAGIC

    def can_encode(self, data: bytes) -> bool:
        return is_wav(data)

    # -- encoding ----------------------------------------------------------------------

    def encode(self, data: bytes, **options) -> bytes:
        block_size = int(options.get("block_size", self._block_size))
        audio = read_wav(data)
        return self.encode_audio(audio, block_size=block_size)

    def encode_audio(self, audio: WavAudio, *, block_size: int | None = None) -> bytes:
        block_size = block_size or self._block_size
        samples = np.asarray(audio.samples, dtype=np.int64)
        if samples.ndim == 1:
            samples = samples[:, np.newaxis]
        num_frames, channels = samples.shape
        pieces = [_HEADER.pack(MAGIC, audio.sample_rate, channels, num_frames, block_size)]
        indices = [0] * channels
        for start in range(0, num_frames, block_size):
            block = samples[start : start + block_size]
            for channel in range(channels):
                column = block[:, channel]
                predictor = int(column[0]) if len(column) else 0
                index = indices[channel]
                pieces.append(_BLOCK_CHANNEL_HEADER.pack(predictor, index, 0))
                nibbles = bytearray()
                pending = None
                for sample in column:
                    code, predictor, index = _encode_sample(int(sample), predictor, index)
                    if pending is None:
                        pending = code
                    else:
                        nibbles.append(pending | (code << 4))
                        pending = None
                if pending is not None:
                    nibbles.append(pending)
                indices[channel] = index
                pieces.append(bytes(nibbles))
        return b"".join(pieces)

    # -- native decoding -------------------------------------------------------------------

    def decode(self, data: bytes) -> bytes:
        if len(data) < _HEADER.size or data[:4] != MAGIC:
            raise CodecError("not a vxsnd stream")
        _, sample_rate, channels, num_frames, block_size = _HEADER.unpack_from(data, 0)
        if channels < 1 or channels > 8 or block_size < 1:
            raise CodecError("vxsnd header is malformed")
        offset = _HEADER.size
        samples = np.zeros((num_frames, channels), dtype=np.int16)
        position = 0
        while position < num_frames:
            frames = min(block_size, num_frames - position)
            for channel in range(channels):
                if offset + _BLOCK_CHANNEL_HEADER.size > len(data):
                    raise CodecError("truncated vxsnd block header")
                predictor, index, _ = _BLOCK_CHANNEL_HEADER.unpack_from(data, offset)
                offset += _BLOCK_CHANNEL_HEADER.size
                if index > 88:
                    raise CodecError("vxsnd step index out of range")
                nibble_bytes = (frames + 1) // 2
                if offset + nibble_bytes > len(data):
                    raise CodecError("truncated vxsnd nibble data")
                for frame in range(frames):
                    byte = data[offset + frame // 2]
                    code = (byte >> 4) if frame % 2 else (byte & 0x0F)
                    predictor, index = _decode_sample(code, predictor, index)
                    samples[position + frame, channel] = predictor
                offset += nibble_bytes
            position += frames
        return write_wav(WavAudio(sample_rate=sample_rate, samples=samples))

    # -- guest decoder ------------------------------------------------------------------------

    def guest_units(self):
        from repro.codecs.guest import vxsnd_guest_units

        return vxsnd_guest_units()
