"""The codec plug-in interface used by the vxZIP archiver.

Each codec bundles the two halves the paper describes in section 3.3:

* a **native encoder** (here: Python) that the archiver loads into its own
  process and calls directly -- encoders are never virtualised,
* a **VXA decoder**: an ELF executable for the virtual machine, written in
  vxc and compiled on demand, which the archiver embeds in the archive.

A codec also provides a *native decoder* (the fast path vxUnZIP may use for
well-known formats) and two recognisers: one for raw content it can compress
and one for content already compressed in its own format (the "redec" path).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import lru_cache

from repro.vxc.compiler import CompileResult, SourceUnit, compile_units


@dataclass(frozen=True)
class CodecInfo:
    """Static description of a codec (the columns of the paper's Table 1)."""

    name: str
    description: str
    availability: str          # where the implementation lives in this library
    output_format: str         # what the decoder produces ("raw data", "BMP image", ...)
    category: str              # "general", "image", "audio"
    lossy: bool


class Codec(abc.ABC):
    """Base class for codec plug-ins."""

    #: Static metadata; subclasses must override.
    info: CodecInfo

    # -- encoding (native, archiver side) -------------------------------------

    @abc.abstractmethod
    def encode(self, data: bytes, **options) -> bytes:
        """Compress raw content into this codec's format."""

    @abc.abstractmethod
    def decode(self, data: bytes) -> bytes:
        """Native (non-virtualised) decoder -- the archive reader's fast path."""

    # -- recognition ------------------------------------------------------------

    @abc.abstractmethod
    def can_encode(self, data: bytes) -> bool:
        """Return True if ``data`` is raw content this codec should compress."""

    def matches(self, data: bytes) -> bool:
        """Return True if ``data`` is already compressed in this codec's format."""
        return data[:4] == self.magic

    @property
    @abc.abstractmethod
    def magic(self) -> bytes:
        """Four-byte magic prefix of this codec's compressed format."""

    # -- the archived VXA decoder -------------------------------------------------

    @abc.abstractmethod
    def guest_units(self) -> list[SourceUnit]:
        """vxc source units (decoder + shared libraries) for the guest decoder."""

    def build_guest_decoder(self) -> CompileResult:
        """Compile (and cache) the guest decoder executable for this codec."""
        return _compile_guest(type(self))

    def guest_decoder_image(self) -> bytes:
        """The decoder ELF image embedded in archives."""
        return self.build_guest_decoder().elf

    # -- misc -----------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.info.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Codec {self.info.name}>"


@lru_cache(maxsize=None)
def _compile_guest(codec_class) -> CompileResult:
    """Compile a codec's guest decoder once per process."""
    codec = codec_class()
    return compile_units(
        codec.guest_units(),
        codec_name=codec.info.name,
        extra_note={"output_format": codec.info.output_format},
    )
