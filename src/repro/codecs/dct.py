"""Integer 8x8 block DCT used by the JPEG-class lossy image codec.

The forward transform (encoder side, runs natively) uses a floating-point
DCT-II and rounds; the inverse transform is defined purely over integers with
fixed-point arithmetic so that the guest decoder written in vxc -- which has
no floating point -- produces *bit-identical* pixels to the native Python
decoder.  The fixed-point inverse uses 12-bit cosine coefficients.
"""

from __future__ import annotations

import math

import numpy as np

BLOCK = 8

#: Fixed-point scale for the integer inverse DCT (12 fractional bits).
FIX_BITS = 12
FIX_SCALE = 1 << FIX_BITS

#: Base luminance quantisation table (the JPEG Annex K table).
BASE_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int64,
)

#: Zig-zag scan order for an 8x8 block (row, column) pairs flattened.
ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]


def quant_table(quality: int) -> np.ndarray:
    """Scale the base quantisation table for a quality setting of 1..100."""
    quality = max(1, min(100, quality))
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - quality * 2
    table = (BASE_QUANT * scale + 50) // 100
    return np.clip(table, 1, 255).astype(np.int64)


def _dct_matrix() -> np.ndarray:
    matrix = np.zeros((BLOCK, BLOCK))
    for k in range(BLOCK):
        for n in range(BLOCK):
            matrix[k, n] = math.cos(math.pi * (2 * n + 1) * k / (2 * BLOCK))
    matrix *= math.sqrt(2.0 / BLOCK)
    matrix[0, :] *= 1.0 / math.sqrt(2.0)
    return matrix

_DCT = _dct_matrix()

#: Fixed-point inverse-DCT basis used by both decoders (Python and vxc).
IDCT_FIXED = np.round(_DCT * FIX_SCALE).astype(np.int64)


def forward_dct(block: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT-II of one 8x8 block (float, rounded to ints)."""
    shifted = block.astype(np.float64) - 128.0
    coefficients = _DCT @ shifted @ _DCT.T
    return np.round(coefficients).astype(np.int64)


def inverse_dct_integer(coefficients: np.ndarray) -> np.ndarray:
    """Fixed-point inverse DCT, bit-exact with the guest implementation.

    Row pass then column pass, each with a rounding shift by ``FIX_BITS``;
    finally the +128 level shift and clamp to 0..255.
    """
    coefficients = coefficients.astype(np.int64)
    # temp[x, y] = sum_u IDCT[u, x] * C[u, y]   (column pass)
    temp = IDCT_FIXED.T @ coefficients
    temp = _round_shift(temp, FIX_BITS)
    # pixels[x, y] = sum_v temp[x, v] * IDCT[v, y]  (row pass)
    pixels = temp @ IDCT_FIXED
    pixels = _round_shift(pixels, FIX_BITS) + 128
    return np.clip(pixels, 0, 255)


def _round_shift(value, bits: int):
    """Arithmetic shift right with round-half-up, matching the vxc decoder.

    Works on Python ints and on numpy int64 arrays; ``>>`` floors for negative
    values in both, which is what the guest's ``asr`` instruction does.
    """
    return (value + (1 << (bits - 1))) >> bits


def zigzag_scan(block: np.ndarray) -> list[int]:
    """Flatten an 8x8 block in zig-zag order."""
    flat = block.reshape(64)
    return [int(flat[index]) for index in ZIGZAG]


def zigzag_unscan(values: list[int]) -> np.ndarray:
    """Inverse of :func:`zigzag_scan`."""
    flat = np.zeros(64, dtype=np.int64)
    for position, index in enumerate(ZIGZAG):
        flat[index] = values[position]
    return flat.reshape(BLOCK, BLOCK)
