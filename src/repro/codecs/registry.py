"""The archiver's codec plug-in registry.

The vxZIP archiver is not built around a fixed set of compressors (paper
section 3.3): codecs register here and the archiver consults the registry to
pick a codec per input file.  The registry also produces the decoder
inventory of the paper's Table 1.
"""

from __future__ import annotations

from repro.codecs.base import Codec
from repro.codecs.vxbwt import VxbwtCodec
from repro.codecs.vxflac import VxflacCodec
from repro.codecs.vximg import VximgCodec
from repro.codecs.vxjp2 import Vxjp2Codec
from repro.codecs.vxsnd import VxsndCodec
from repro.codecs.vxz import VxzCodec
from repro.errors import CodecError


class CodecRegistry:
    """A mutable set of codec plug-ins with lookup helpers."""

    def __init__(self, codecs: list[Codec] | None = None, *, default: str = "vxz"):
        self._codecs: dict[str, Codec] = {}
        for codec in codecs if codecs is not None else _standard_codecs():
            self.register(codec)
        if default not in self._codecs:
            raise CodecError(f"default codec {default!r} is not registered")
        self._default = default

    # -- management -----------------------------------------------------------------

    def register(self, codec: Codec) -> None:
        """Add (or replace) a codec plug-in."""
        self._codecs[codec.info.name] = codec

    def unregister(self, name: str) -> None:
        if name == self._default:
            raise CodecError("cannot unregister the default codec")
        self._codecs.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._codecs

    def __iter__(self):
        return iter(self._codecs.values())

    def __len__(self) -> int:
        return len(self._codecs)

    @property
    def names(self) -> list[str]:
        return list(self._codecs)

    # -- lookup -----------------------------------------------------------------------

    def get(self, name: str) -> Codec:
        try:
            return self._codecs[name]
        except KeyError:
            raise CodecError(f"no codec named {name!r} is registered") from None

    @property
    def default(self) -> Codec:
        return self._codecs[self._default]

    def recognize_compressed(self, data: bytes) -> Codec | None:
        """Find the codec whose *compressed* format ``data`` is already in.

        This is the redec path: the archiver stores such data untouched and
        merely attaches the matching decoder.
        """
        for codec in self._codecs.values():
            if codec.matches(data):
                return codec
        return None

    def select_for_raw(self, data: bytes, *, allow_lossy: bool = False) -> Codec:
        """Choose the codec used to compress raw content.

        Media-specific codecs win over the general-purpose default when they
        recognise the content, but lossy codecs are only chosen when the
        operator explicitly allows loss (paper section 2.2).
        """
        for codec in self._codecs.values():
            if codec.info.category == "general":
                continue        # general-purpose codecs are the fallback, not a match
            if not codec.can_encode(data):
                continue
            if codec.info.lossy and not allow_lossy:
                continue
            return codec
        return self.default

    # -- reporting -----------------------------------------------------------------------

    def inventory(self) -> list[dict]:
        """The decoder inventory, one row per codec (paper Table 1)."""
        rows = []
        for codec in self._codecs.values():
            info = codec.info
            rows.append(
                {
                    "decoder": info.name,
                    "description": info.description,
                    "availability": info.availability,
                    "output_format": info.output_format,
                    "category": info.category,
                    "lossy": info.lossy,
                }
            )
        return rows


def _standard_codecs() -> list[Codec]:
    """The six codecs shipped with the prototype (paper Table 1)."""
    return [
        VxzCodec(),
        VxbwtCodec(),
        VximgCodec(),
        Vxjp2Codec(),
        VxflacCodec(),
        VxsndCodec(),
    ]


_default_registry: CodecRegistry | None = None


def default_registry() -> CodecRegistry:
    """A process-wide registry with the standard codecs (lazily constructed)."""
    global _default_registry
    if _default_registry is None:
        _default_registry = CodecRegistry()
    return _default_registry
