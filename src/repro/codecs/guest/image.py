"""Guest decoder sources for the still-image codecs (vximg, vxjp2).

The fixed-point IDCT basis and the zig-zag scan order are interpolated from
the same Python constants the native codec uses (:mod:`repro.codecs.dct`), so
the archived decoder and the native decoder produce bit-identical BMP output.
"""

from repro.codecs.dct import FIX_BITS, IDCT_FIXED, ZIGZAG


def _int_array(name: str, values) -> str:
    body = ", ".join(str(int(value)) for value in values)
    return f"int {name}[{len(values)}] = {{ {body} }};"


_MAIN_LOOP = r"""
int main() {
    while (1) {
        decode_stream();
        if (done() != 0) { break; }
        heap_reset();
    }
    return 0;
}
"""

# Shared colour/pixel helpers used by both image decoders.
_PIXEL_HELPERS = r"""
int clamp255(int value) {
    if (value < 0) { return 0; }
    if (value > 255) { return 255; }
    return value;
}
"""


def vximg_source() -> str:
    """vxc source of the vximg (JPEG-class) guest decoder."""
    tables = "\n".join(
        [
            _int_array("vi_idct", IDCT_FIXED.reshape(64)),
            _int_array("vi_zigzag", ZIGZAG),
        ]
    )
    round_half = 1 << (FIX_BITS - 1)
    return (
        tables
        + _PIXEL_HELPERS
        + r"""

int vi_quant[64];      // quantisation steps, zig-zag order (as stored in the header)
int vi_zig[64];        // decoded coefficients, zig-zag order
int vi_blk[64];        // dequantised coefficients / pixels, row-major
int vi_tmp[64];

// Fixed-point inverse DCT of vi_blk in place (row-major 8x8).
int vi_idct_block() {
    int x;
    int y;
    int u;
    int acc;
    for (x = 0; x < 8; x = x + 1) {
        for (y = 0; y < 8; y = y + 1) {
            acc = 0;
            for (u = 0; u < 8; u = u + 1) {
                acc = acc + vi_idct[u * 8 + x] * vi_blk[u * 8 + y];
            }
            vi_tmp[x * 8 + y] = asr(acc + """
        + str(round_half)
        + r""", """
        + str(FIX_BITS)
        + r""");
        }
    }
    for (x = 0; x < 8; x = x + 1) {
        for (y = 0; y < 8; y = y + 1) {
            acc = 0;
            for (u = 0; u < 8; u = u + 1) {
                acc = acc + vi_tmp[x * 8 + u] * vi_idct[u * 8 + y];
            }
            vi_blk[x * 8 + y] = clamp255(asr(acc + """
        + str(round_half)
        + r""", """
        + str(FIX_BITS)
        + r""") + 128);
        }
    }
    return 0;
}

int decode_stream() {
    int src;
    int src_len;
    int width;
    int height;
    int channels;
    int padded_width;
    int padded_height;
    int plane_size;
    int planes;
    int tokens;
    int channel;
    int block_row;
    int block_col;
    int previous_dc;
    int delta;
    int run;
    int position;
    int i;
    int row;
    int col;
    int stride_pad;
    int y_value;
    int cb_value;
    int cr_value;
    int red;
    int green;
    int blue;
    int index;

    src = in_read_all();
    src_len = in_len;
    if (src_len < 74) { exit(60); }
    if (load_u32le(src) != 0x31495856) { exit(61); }       // "VXI1"
    width = load_u16le(src + 4);
    height = load_u16le(src + 6);
    channels = peek8(src + 9);
    if (width == 0) { exit(62); }
    if (height == 0) { exit(62); }
    if (channels != 1) { if (channels != 3) { exit(62); } }
    for (i = 0; i < 64; i = i + 1) { vi_quant[i] = peek8(src + 10 + i); }

    tokens = hb_unpack(src + 74, src + src_len);
    tk_init(tokens, hb_len);

    padded_width = (width + 7) & 0xfffffff8;
    padded_height = (height + 7) & 0xfffffff8;
    plane_size = padded_width * padded_height;
    planes = alloc(plane_size * 3);
    memfill(planes, 128, plane_size * 3);

    for (channel = 0; channel < channels; channel = channel + 1) {
        previous_dc = 0;
        for (block_row = 0; block_row < padded_height; block_row = block_row + 8) {
            for (block_col = 0; block_col < padded_width; block_col = block_col + 8) {
                // DC delta, then (run, value) AC pairs in zig-zag order.
                delta = zz_decode(tk_varint());
                previous_dc = previous_dc + delta;
                for (i = 0; i < 64; i = i + 1) { vi_zig[i] = 0; }
                vi_zig[0] = previous_dc;
                position = 1;
                while (1) {
                    run = tk_byte();
                    if (run == 255) { break; }
                    position = position + run;
                    if (position >= 64) { exit(63); }
                    vi_zig[position] = zz_decode(tk_varint());
                    position = position + 1;
                }
                // De-zig-zag and dequantise into the row-major block.
                for (i = 0; i < 64; i = i + 1) {
                    vi_blk[vi_zigzag[i]] = vi_zig[i] * vi_quant[i];
                }
                vi_idct_block();
                for (row = 0; row < 8; row = row + 1) {
                    for (col = 0; col < 8; col = col + 1) {
                        index = (block_row + row) * padded_width + block_col + col;
                        poke8(planes + channel * plane_size + index, vi_blk[row * 8 + col]);
                    }
                }
            }
        }
    }

    // Emit the BMP: bottom-up rows, BGR, rows padded to 4 bytes.
    out_init();
    bmp_begin(width, height);
    stride_pad = bmp_stride(width) - width * 3;
    row = height - 1;
    while (row >= 0) {
        for (col = 0; col < width; col = col + 1) {
            index = row * padded_width + col;
            y_value = peek8(planes + index);
            if (channels == 1) {
                red = y_value;
                green = y_value;
                blue = y_value;
            } else {
                cb_value = peek8(planes + plane_size + index) - 128;
                cr_value = peek8(planes + plane_size * 2 + index) - 128;
                red = clamp255(y_value + asr(359 * cr_value, 8));
                green = clamp255(y_value - asr(88 * cb_value + 183 * cr_value, 8));
                blue = clamp255(y_value + asr(454 * cb_value, 8));
            }
            out_byte(blue);
            out_byte(green);
            out_byte(red);
        }
        for (i = 0; i < stride_pad; i = i + 1) { out_byte(0); }
        row = row - 1;
    }
    out_flush();
    return 0;
}
"""
        + _MAIN_LOOP
    )


def vxjp2_source() -> str:
    """vxc source of the vxjp2 (JPEG-2000-class) guest decoder."""
    return (
        _PIXEL_HELPERS
        + r"""

int wj_padded_width;
int wj_padded_height;
int wj_tmp;            // scratch buffer for one lifting line (ints)

// Quantisation step for a subband; must match repro.codecs.vxjp2.subband_step.
// kind: 0 = HL, 1 = LH, 2 = HH, 3 = LL.
int wj_step(int level, int kind, int quality) {
    int base;
    int shift;
    int step;
    if (quality >= 100) { return 1; }
    if (kind == 3) { return 1; }
    base = (100 - quality) / 8;
    if (base < 1) { base = 1; }
    shift = 3 - level;
    if (shift < 0) { shift = 0; }
    step = (base * (1 << shift)) / 4;
    if (kind == 2) { step = step * 2; }
    if (step < 1) { step = 1; }
    return step;
}

// Fill one subband rectangle of the coefficient plane from the token stream.
int wj_decode_band(int plane, int row0, int col0, int band_height, int band_width, int step) {
    int total;
    int position;
    int run;
    int value;
    int band_row;
    int band_col;
    int address;
    total = band_height * band_width;
    position = 0;
    while (1) {
        run = tk_byte();
        if (run == 255) { break; }
        position = position + run;
        if (position >= total) { exit(70); }
        value = zz_decode(tk_varint());
        band_row = row0 + udiv(position, band_width);
        band_col = col0 + umod(position, band_width);
        address = plane + (band_row * wj_padded_width + band_col) * 4;
        poke32(address, value * step);
        position = position + 1;
    }
    return 0;
}

// Inverse 5/3 lifting along `count` elements with `stride` words between them.
int wj_inverse_1d(int base, int count, int stride) {
    int half;
    int i;
    int smooth;
    int detail;
    int detail_prev;
    int even_value;
    int even_next;
    int byte_stride;
    half = count / 2;
    byte_stride = stride * 4;
    // Undo the update step: even[i] = s[i] - ((d[i-1] + d[i] + 2) >> 2)
    for (i = 0; i < half; i = i + 1) {
        smooth = peek32(base + i * byte_stride);
        detail = peek32(base + (half + i) * byte_stride);
        if (i == 0) {
            detail_prev = detail;
        } else {
            detail_prev = peek32(base + (half + i - 1) * byte_stride);
        }
        poke32(wj_tmp + i * 4, smooth - asr(detail_prev + detail + 2, 2));
    }
    // Undo the predict step: odd[i] = d[i] + ((even[i] + even[i+1]) >> 1)
    for (i = 0; i < half; i = i + 1) {
        detail = peek32(base + (half + i) * byte_stride);
        even_value = peek32(wj_tmp + i * 4);
        if (i + 1 < half) {
            even_next = peek32(wj_tmp + (i + 1) * 4);
        } else {
            even_next = even_value;
        }
        poke32(wj_tmp + (half + i) * 4, detail + asr(even_value + even_next, 1));
    }
    // Interleave back: x[2i] = even[i], x[2i+1] = odd[i].
    for (i = 0; i < half; i = i + 1) {
        poke32(base + (2 * i) * byte_stride, peek32(wj_tmp + i * 4));
        poke32(base + (2 * i + 1) * byte_stride, peek32(wj_tmp + (half + i) * 4));
    }
    return 0;
}

int decode_stream() {
    int src;
    int src_len;
    int width;
    int height;
    int levels;
    int quality;
    int factor;
    int tokens;
    int plane_words;
    int planes;
    int plane;
    int channel;
    int level;
    int current_height;
    int current_width;
    int low_height;
    int low_width;
    int sub_height;
    int sub_width;
    int row;
    int col;
    int i;
    int stride_pad;
    int y_value;
    int u_value;
    int v_value;
    int red;
    int green;
    int blue;
    int index;

    src = in_read_all();
    src_len = in_len;
    if (src_len < 11) { exit(71); }
    if (load_u32le(src) != 0x324a5856) { exit(72); }        // "VXJ2"
    width = load_u16le(src + 4);
    height = load_u16le(src + 6);
    levels = peek8(src + 8);
    quality = peek8(src + 9);
    if (peek8(src + 10) != 3) { exit(73); }
    if (levels < 1) { exit(73); }
    if (levels > 6) { exit(73); }
    if (width == 0) { exit(73); }
    if (height == 0) { exit(73); }

    tokens = hb_unpack(src + 11, src + src_len);
    tk_init(tokens, hb_len);

    factor = 1 << levels;
    wj_padded_width = udiv(width + factor - 1, factor) * factor;
    wj_padded_height = udiv(height + factor - 1, factor) * factor;
    plane_words = wj_padded_width * wj_padded_height;
    planes = alloc(plane_words * 4 * 3);
    memfill(planes, 0, plane_words * 4 * 3);
    wj_tmp = alloc(max(wj_padded_width, wj_padded_height) * 4 + 16);

    for (channel = 0; channel < 3; channel = channel + 1) {
        plane = planes + channel * plane_words * 4;
        // Subbands arrive finest-level first (HL, LH, HH per level) then LL.
        current_height = wj_padded_height;
        current_width = wj_padded_width;
        for (level = 1; level <= levels; level = level + 1) {
            low_height = current_height / 2;
            low_width = current_width / 2;
            wj_decode_band(plane, 0, low_width, low_height, low_width,
                           wj_step(level, 0, quality));
            wj_decode_band(plane, low_height, 0, low_height, low_width,
                           wj_step(level, 1, quality));
            wj_decode_band(plane, low_height, low_width, low_height, low_width,
                           wj_step(level, 2, quality));
            current_height = low_height;
            current_width = low_width;
        }
        wj_decode_band(plane, 0, 0, current_height, current_width, 1);

        // Multi-level inverse transform: columns then rows at each scale.
        level = levels - 1;
        while (level >= 0) {
            sub_height = wj_padded_height >> level;
            sub_width = wj_padded_width >> level;
            for (col = 0; col < sub_width; col = col + 1) {
                wj_inverse_1d(plane + col * 4, sub_height, wj_padded_width);
            }
            for (row = 0; row < sub_height; row = row + 1) {
                wj_inverse_1d(plane + row * wj_padded_width * 4, sub_width, 1);
            }
            level = level - 1;
        }
    }

    // Inverse reversible colour transform and BMP output (cropping the padding).
    out_init();
    bmp_begin(width, height);
    stride_pad = bmp_stride(width) - width * 3;
    row = height - 1;
    while (row >= 0) {
        for (col = 0; col < width; col = col + 1) {
            index = (row * wj_padded_width + col) * 4;
            y_value = peek32(planes + index);
            u_value = peek32(planes + plane_words * 4 + index);
            v_value = peek32(planes + plane_words * 8 + index);
            green = y_value - asr(u_value + v_value, 2);
            red = clamp255(v_value + green);
            blue = clamp255(u_value + green);
            green = clamp255(green);
            out_byte(blue);
            out_byte(green);
            out_byte(red);
        }
        for (i = 0; i < stride_pad; i = i + 1) { out_byte(0); }
        row = row - 1;
    }
    out_flush();
    return 0;
}
"""
        + _MAIN_LOOP
    )
