"""Guest decoder sources for the general-purpose codecs (vxz, vxbwt).

The LZ77 slot tables are interpolated from the same Python constants the
native encoder uses (:mod:`repro.codecs.lz77`), so the two sides can never
drift apart.
"""

from repro.codecs.lz77 import DISTANCE_SLOTS, LENGTH_SLOTS


def _int_array(name: str, values) -> str:
    body = ", ".join(str(int(value)) for value in values)
    return f"int {name}[{len(values)}] = {{ {body} }};"


_MAIN_LOOP = r"""
int main() {
    while (1) {
        decode_stream();
        if (done() != 0) { break; }
        heap_reset();
    }
    return 0;
}
"""


def vxz_source() -> str:
    """vxc source of the vxz (deflate-class) guest decoder."""
    tables = "\n".join(
        [
            _int_array("lz_len_base", [base for base, _ in LENGTH_SLOTS]),
            _int_array("lz_len_extra", [extra for _, extra in LENGTH_SLOTS]),
            _int_array("lz_dist_base", [base for base, _ in DISTANCE_SLOTS]),
            _int_array("lz_dist_extra", [extra for _, extra in DISTANCE_SLOTS]),
        ]
    )
    return (
        tables
        + r"""

// vxz stream: "VXZ1", u32 original length, 286 + 30 code lengths, bit stream.
int decode_stream() {
    int src;
    int src_len;
    int original;
    int litlen_addr;
    int dist_addr;
    int output;
    int out_position;
    int symbol;
    int slot;
    int match_length;
    int distance;
    int copy_from;
    int i;

    src = in_read_all();
    src_len = in_len;
    if (src_len < 324) { exit(40); }
    if (load_u32le(src) != 0x315a5856) { exit(41); }      // "VXZ1"
    original = load_u32le(src + 4);
    litlen_addr = src + 8;
    dist_addr = litlen_addr + 286;
    hd_build(0, litlen_addr, 286);
    hd_build(1, dist_addr, 30);
    br_init(dist_addr + 30, src_len - 324);

    output = alloc(original + 16);
    out_position = 0;
    while (1) {
        symbol = hd_decode(0);
        if (symbol < 256) {
            poke8(output + out_position, symbol);
            out_position = out_position + 1;
        } else {
            if (symbol == 256) { break; }
            slot = symbol - 257;
            if (slot >= 29) { exit(42); }
            match_length = lz_len_base[slot] + br_bits(lz_len_extra[slot]);
            slot = hd_decode(1);
            if (slot >= 30) { exit(42); }
            distance = lz_dist_base[slot] + br_bits(lz_dist_extra[slot]);
            if (distance > out_position) { exit(43); }    // reaches before start
            if (out_position + match_length > original) { exit(44); }
            copy_from = output + out_position - distance;
            for (i = 0; i < match_length; i = i + 1) {
                poke8(output + out_position, peek8(copy_from + i));
                out_position = out_position + 1;
            }
        }
        if (out_position > original) { exit(44); }
    }
    if (out_position != original) { exit(45); }
    write_full(1, output, out_position);
    return 0;
}
"""
        + _MAIN_LOOP
    )


def vxbwt_source() -> str:
    """vxc source of the vxbwt (bzip2-class) guest decoder."""
    return (
        r"""
// vxbwt stream: "VXB1", u32 original length, u32 block size, then blocks.
int bw_alphabet[256];
int bw_bins[258];

// RLE post-pass state (bzip2-style run-length layer undone while emitting).
int rle_run;
int rle_prev;
int rle_expect;
int rle_emitted;

int rle_reset() {
    rle_run = 0;
    rle_prev = 0 - 1;
    rle_expect = 0;
    rle_emitted = 0;
    return 0;
}

int rle_emit(int value) {
    int k;
    if (rle_expect) {
        for (k = 0; k < value; k = k + 1) {
            out_byte(rle_prev);
            rle_emitted = rle_emitted + 1;
        }
        rle_expect = 0;
        rle_run = 0;
        rle_prev = 0 - 1;
        return 0;
    }
    out_byte(value);
    rle_emitted = rle_emitted + 1;
    if (value == rle_prev) {
        rle_run = rle_run + 1;
    } else {
        rle_run = 1;
        rle_prev = value;
    }
    if (rle_run == 4) {
        rle_expect = 1;
    }
    return 0;
}

int decode_stream() {
    int src;
    int src_len;
    int original;
    int offset;
    int produced;
    int raw_length;
    int transformed_length;
    int primary;
    int lengths_addr;
    int ranks;
    int order;
    int i;
    int j;
    int rank;
    int value;
    int row;
    int bin;
    int position;
    int count;

    src = in_read_all();
    src_len = in_len;
    if (src_len < 12) { exit(50); }
    if (load_u32le(src) != 0x31425856) { exit(51); }      // "VXB1"
    original = load_u32le(src + 4);
    offset = 12;
    produced = 0;
    out_init();

    while (1) {
        if (original > 0) {
            if (produced >= original) { break; }
        }
        if (offset + 12 > src_len) { exit(52); }
        raw_length = load_u32le(src + offset);
        transformed_length = load_u32le(src + offset + 4);
        primary = load_u32le(src + offset + 8);
        offset = offset + 12;
        lengths_addr = src + offset;
        if (offset + 256 > src_len) { exit(52); }
        hd_build(0, lengths_addr, 256);
        offset = offset + 256;
        br_init(src + offset, src_len - offset);
        if (primary > transformed_length) { exit(53); }

        // 1. Huffman-decode the MTF ranks.
        ranks = alloc(transformed_length + 4);
        for (i = 0; i < transformed_length; i = i + 1) {
            poke8(ranks + i, hd_decode(0));
        }
        br_align();
        offset = br_pos() - src;

        // 2. Inverse move-to-front, in place.
        for (i = 0; i < 256; i = i + 1) { bw_alphabet[i] = i; }
        for (i = 0; i < transformed_length; i = i + 1) {
            rank = peek8(ranks + i);
            value = bw_alphabet[rank];
            poke8(ranks + i, value);
            for (j = rank; j > 0; j = j - 1) {
                bw_alphabet[j] = bw_alphabet[j - 1];
            }
            bw_alphabet[0] = value;
        }

        // 3. Inverse BWT via a stable counting sort over the last column,
        //    treating the virtual sentinel (bin 0) as the smallest symbol.
        order = alloc((transformed_length + 1) * 4);
        for (i = 0; i < 258; i = i + 1) { bw_bins[i] = 0; }
        for (i = 0; i <= transformed_length; i = i + 1) {
            if (i == primary) {
                bin = 0;
            } else {
                if (i < primary) {
                    bin = peek8(ranks + i) + 1;
                } else {
                    bin = peek8(ranks + i - 1) + 1;
                }
            }
            bw_bins[bin] = bw_bins[bin] + 1;
        }
        position = 0;
        for (i = 0; i < 258; i = i + 1) {
            count = bw_bins[i];
            bw_bins[i] = position;
            position = position + count;
        }
        for (i = 0; i <= transformed_length; i = i + 1) {
            if (i == primary) {
                bin = 0;
            } else {
                if (i < primary) {
                    bin = peek8(ranks + i) + 1;
                } else {
                    bin = peek8(ranks + i - 1) + 1;
                }
            }
            poke32(order + bw_bins[bin] * 4, i);
            bw_bins[bin] = bw_bins[bin] + 1;
        }

        // 4. Walk the LF mapping, undoing the RLE layer as bytes appear.
        rle_reset();
        row = primary;
        for (i = 0; i < transformed_length; i = i + 1) {
            row = peek32(order + row * 4);
            if (row == primary) {
                value = 0 - 1;
            } else {
                if (row < primary) {
                    value = peek8(ranks + row);
                } else {
                    value = peek8(ranks + row - 1);
                }
            }
            if (value < 0) { exit(54); }
            rle_emit(value);
        }
        if (rle_emitted != raw_length) { exit(55); }
        produced = produced + rle_emitted;
        if (original == 0) { break; }
    }
    out_flush();
    return 0;
}
"""
        + _MAIN_LOOP
    )
