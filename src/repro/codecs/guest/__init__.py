"""Assembly of guest decoder source units for each codec.

Each function returns the list of :class:`~repro.vxc.compiler.SourceUnit`
objects that, compiled together with the vxc runtime, form that codec's
archived VXA decoder.  Shared units are tagged ``library`` and the
codec-specific unit ``decoder`` so Table 2's code-size split is preserved.
"""

from __future__ import annotations

from repro.codecs.guest.audio import vxflac_source, vxsnd_source
from repro.codecs.guest.general import vxbwt_source, vxz_source
from repro.codecs.guest.image import vximg_source, vxjp2_source
from repro.codecs.guest.lib import (
    LIB_BITS,
    LIB_BMP,
    LIB_HBYTES,
    LIB_HUFF,
    LIB_IO,
    LIB_WAV,
)
from repro.vxc.compiler import CATEGORY_DECODER, CATEGORY_LIBRARY, SourceUnit


def _library(name: str, text: str) -> SourceUnit:
    return SourceUnit(name, text, CATEGORY_LIBRARY)


def _decoder(name: str, text: str) -> SourceUnit:
    return SourceUnit(name, text, CATEGORY_DECODER)


def vxz_guest_units() -> list[SourceUnit]:
    """Guest decoder for the deflate-class codec."""
    return [
        _library("lib_io", LIB_IO),
        _library("lib_bits", LIB_BITS),
        _library("lib_huff", LIB_HUFF),
        _decoder("vxz", vxz_source()),
    ]


def vxbwt_guest_units() -> list[SourceUnit]:
    """Guest decoder for the bzip2-class codec."""
    return [
        _library("lib_io", LIB_IO),
        _library("lib_bits", LIB_BITS),
        _library("lib_huff", LIB_HUFF),
        _decoder("vxbwt", vxbwt_source()),
    ]


def vximg_guest_units() -> list[SourceUnit]:
    """Guest decoder for the JPEG-class codec (outputs BMP)."""
    return [
        _library("lib_io", LIB_IO),
        _library("lib_bits", LIB_BITS),
        _library("lib_huff", LIB_HUFF),
        _library("lib_hbytes", LIB_HBYTES),
        _library("lib_bmp", LIB_BMP),
        _decoder("vximg", vximg_source()),
    ]


def vxjp2_guest_units() -> list[SourceUnit]:
    """Guest decoder for the JPEG-2000-class codec (outputs BMP)."""
    return [
        _library("lib_io", LIB_IO),
        _library("lib_bits", LIB_BITS),
        _library("lib_huff", LIB_HUFF),
        _library("lib_hbytes", LIB_HBYTES),
        _library("lib_bmp", LIB_BMP),
        _decoder("vxjp2", vxjp2_source()),
    ]


def vxflac_guest_units() -> list[SourceUnit]:
    """Guest decoder for the FLAC-class codec (outputs WAV)."""
    return [
        _library("lib_io", LIB_IO),
        _library("lib_bits", LIB_BITS),
        _library("lib_wav", LIB_WAV),
        _decoder("vxflac", vxflac_source()),
    ]


def vxsnd_guest_units() -> list[SourceUnit]:
    """Guest decoder for the ADPCM codec (outputs WAV)."""
    return [
        _library("lib_io", LIB_IO),
        _library("lib_wav", LIB_WAV),
        _decoder("vxsnd", vxsnd_source()),
    ]


__all__ = [
    "vxz_guest_units",
    "vxbwt_guest_units",
    "vximg_guest_units",
    "vxjp2_guest_units",
    "vxflac_guest_units",
    "vxsnd_guest_units",
]
