"""Shared vxc library units linked into the guest decoders.

These play the role of the statically-linked support libraries in the
paper's decoders (the "C library" column of Table 2): stream input/output
over the virtual system calls, a bit reader, a canonical Huffman decoder and
writers for the BMP/WAV output containers.  They are tagged as *library*
source units so the compiler's provenance note splits decoder vs. library
code size exactly the way Table 2 does.
"""

# --------------------------------------------------------------------------
# Buffered stream input / output over the read/write virtual system calls.
# --------------------------------------------------------------------------

LIB_IO = r"""
// Whole-stream input: reads stdin to a growable heap buffer.
int in_buf;
int in_len;
int in_cap;

int in_read_all() {
    int got;
    in_cap = 65536;
    in_buf = alloc(in_cap);
    in_len = 0;
    while (1) {
        if (in_len == in_cap) {
            int new_cap;
            int new_buf;
            new_cap = in_cap * 2;
            new_buf = alloc(new_cap);
            memcopy(new_buf, in_buf, in_len);
            in_buf = new_buf;
            in_cap = new_cap;
        }
        got = read(0, in_buf + in_len, in_cap - in_len);
        if (got <= 0) { break; }
        in_len = in_len + got;
    }
    return in_buf;
}

// Buffered output to stdout.
int out_buf;
int out_pos;
int out_cap;

int out_init() {
    out_cap = 65536;
    out_buf = alloc(out_cap);
    out_pos = 0;
    return 0;
}

int out_flush() {
    if (out_pos > 0) {
        write_full(1, out_buf, out_pos);
        out_pos = 0;
    }
    return 0;
}

int out_byte(int value) {
    if (out_pos == out_cap) { out_flush(); }
    poke8(out_buf + out_pos, value);
    out_pos = out_pos + 1;
    return 0;
}

int out_bytes(int addr, int count) {
    if (count >= out_cap) {
        out_flush();
        write_full(1, addr, count);
        return count;
    }
    if (out_pos + count > out_cap) { out_flush(); }
    memcopy(out_buf + out_pos, addr, count);
    out_pos = out_pos + count;
    return count;
}

int out_u16le(int value) {
    out_byte(value & 255);
    out_byte((value >> 8) & 255);
    return 2;
}

int out_u32le(int value) {
    out_byte(value & 255);
    out_byte((value >> 8) & 255);
    out_byte((value >> 16) & 255);
    out_byte((value >> 24) & 255);
    return 4;
}
"""

# --------------------------------------------------------------------------
# LSB-first bit reader over an in-memory buffer.
# --------------------------------------------------------------------------

LIB_BITS = r"""
int br_addr;
int br_end;
int br_bitpos;

int br_init(int addr, int length) {
    br_addr = addr;
    br_end = addr + length;
    br_bitpos = 0;
    return 0;
}

int br_bit() {
    int bit;
    if (br_addr >= br_end) { exit(33); }   // stream exhausted: corrupt input
    bit = (peek8(br_addr) >> br_bitpos) & 1;
    br_bitpos = br_bitpos + 1;
    if (br_bitpos == 8) {
        br_bitpos = 0;
        br_addr = br_addr + 1;
    }
    return bit;
}

int br_bits(int count) {
    int value;
    int i;
    value = 0;
    for (i = 0; i < count; i = i + 1) {
        value = value | (br_bit() << i);
    }
    return value;
}

int br_align() {
    if (br_bitpos != 0) {
        br_bitpos = 0;
        br_addr = br_addr + 1;
    }
    return 0;
}

int br_pos() {
    return br_addr;
}
"""

# --------------------------------------------------------------------------
# Canonical Huffman decoder (count / first-code method), up to two tables.
# --------------------------------------------------------------------------

LIB_HUFF = r"""
int hd_counts[32];       // two tables x 16 length counts
int hd_symbols[640];     // two tables x up to 320 symbols in canonical order
int hd_maxlen[2];

int hd_build(int table, int lengths_addr, int num_symbols) {
    int i;
    int length;
    int max_length;
    int counts_base;
    int symbols_base;
    int position;
    counts_base = table * 16;
    symbols_base = table * 320;
    for (i = 0; i < 16; i = i + 1) { hd_counts[counts_base + i] = 0; }
    max_length = 0;
    for (i = 0; i < num_symbols; i = i + 1) {
        length = peek8(lengths_addr + i);
        if (length > 15) { exit(35); }           // corrupt code length table
        if (length > 0) {
            hd_counts[counts_base + length] = hd_counts[counts_base + length] + 1;
            if (length > max_length) { max_length = length; }
        }
    }
    hd_maxlen[table] = max_length;
    position = 0;
    for (length = 1; length <= max_length; length = length + 1) {
        for (i = 0; i < num_symbols; i = i + 1) {
            if (peek8(lengths_addr + i) == length) {
                hd_symbols[symbols_base + position] = i;
                position = position + 1;
            }
        }
    }
    return 0;
}

int hd_decode(int table) {
    int code;
    int first;
    int index;
    int length;
    int count;
    int counts_base;
    int symbols_base;
    counts_base = table * 16;
    symbols_base = table * 320;
    code = 0;
    first = 0;
    index = 0;
    for (length = 1; length <= hd_maxlen[table]; length = length + 1) {
        code = code | br_bit();
        count = hd_counts[counts_base + length];
        if (code - first < count) {
            return hd_symbols[symbols_base + index + (code - first)];
        }
        index = index + count;
        first = (first + count) << 1;
        code = code << 1;
    }
    exit(34);                                    // invalid Huffman code
    return 0;
}
"""

# --------------------------------------------------------------------------
# Huffman byte-stream layer (entropy coding used by the image codecs):
# a 257-symbol alphabet (byte values plus end-of-stream).
# --------------------------------------------------------------------------

LIB_HBYTES = r"""
// Decode an entropy-coded byte stream (257 code lengths + bit stream) into a
// heap buffer.  Returns the buffer address and stores the length in hb_len.
int hb_len;

int hb_unpack(int addr, int end) {
    int buffer;
    int capacity;
    int length;
    int symbol;
    hd_build(0, addr, 257);
    br_init(addr + 257, end - (addr + 257));
    capacity = 65536;
    buffer = alloc(capacity);
    length = 0;
    while (1) {
        symbol = hd_decode(0);
        if (symbol == 256) { break; }
        if (length == capacity) {
            int new_capacity;
            int new_buffer;
            new_capacity = capacity * 2;
            new_buffer = alloc(new_capacity);
            memcopy(new_buffer, buffer, length);
            buffer = new_buffer;
            capacity = new_capacity;
        }
        poke8(buffer + length, symbol);
        length = length + 1;
    }
    hb_len = length;
    return buffer;
}

// Token-stream cursor over the unpacked bytes (varints and run bytes).
int tk_addr;
int tk_end;

int tk_init(int addr, int length) {
    tk_addr = addr;
    tk_end = addr + length;
    return 0;
}

int tk_byte() {
    int value;
    if (tk_addr >= tk_end) { exit(36); }         // truncated token stream
    value = peek8(tk_addr);
    tk_addr = tk_addr + 1;
    return value;
}

int tk_varint() {
    int value;
    int shift;
    int piece;
    value = 0;
    shift = 0;
    while (1) {
        piece = tk_byte();
        value = value | ((piece & 127) << shift);
        if ((piece & 128) == 0) { break; }
        shift = shift + 7;
        if (shift > 35) { exit(37); }            // runaway varint
    }
    return value;
}

int tk_done() {
    if (tk_addr >= tk_end) { return 1; }
    return 0;
}

// Zig-zag mapping of signed values (shared by image codecs).
int zz_decode(int value) {
    return (value >> 1) ^ (0 - (value & 1));
}
"""

# --------------------------------------------------------------------------
# BMP writer: 24-bit uncompressed, bottom-up, BGR, rows padded to 4 bytes.
# --------------------------------------------------------------------------

LIB_BMP = r"""
int bmp_stride(int width) {
    return (width * 3 + 3) & 0xfffffffc;
}

// Write the 54-byte BMP header for a width x height 24-bit image.
int bmp_begin(int width, int height) {
    int stride;
    int image_size;
    stride = bmp_stride(width);
    image_size = stride * height;
    out_byte('B');
    out_byte('M');
    out_u32le(54 + image_size);     // file size
    out_u32le(0);                   // reserved
    out_u32le(54);                  // pixel data offset
    out_u32le(40);                  // BITMAPINFOHEADER size
    out_u32le(width);
    out_u32le(height);
    out_u16le(1);                   // planes
    out_u16le(24);                  // bits per pixel
    out_u32le(0);                   // BI_RGB
    out_u32le(image_size);
    out_u32le(2835);                // x pixels per metre
    out_u32le(2835);                // y pixels per metre
    out_u32le(0);
    out_u32le(0);
    return 0;
}
"""

# --------------------------------------------------------------------------
# WAV writer: canonical 44-byte header, 16-bit PCM.
# --------------------------------------------------------------------------

LIB_WAV = r"""
int wav_begin(int sample_rate, int channels, int num_frames) {
    int data_size;
    data_size = num_frames * channels * 2;
    out_byte('R'); out_byte('I'); out_byte('F'); out_byte('F');
    out_u32le(36 + data_size);
    out_byte('W'); out_byte('A'); out_byte('V'); out_byte('E');
    out_byte('f'); out_byte('m'); out_byte('t'); out_byte(' ');
    out_u32le(16);
    out_u16le(1);                        // PCM
    out_u16le(channels);
    out_u32le(sample_rate);
    out_u32le(sample_rate * channels * 2);
    out_u16le(channels * 2);
    out_u16le(16);
    out_byte('d'); out_byte('a'); out_byte('t'); out_byte('a');
    out_u32le(data_size);
    return 0;
}
"""
