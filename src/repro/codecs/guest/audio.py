"""Guest decoder sources for the audio codecs (vxflac, vxsnd).

The IMA ADPCM step tables are interpolated from the same Python constants the
native codec uses (:mod:`repro.codecs.vxsnd`), keeping both decoders
bit-identical.
"""


def _int_array(name: str, values) -> str:
    body = ", ".join(str(int(value)) for value in values)
    return f"int {name}[{len(values)}] = {{ {body} }};"


_MAIN_LOOP = r"""
int main() {
    while (1) {
        decode_stream();
        if (done() != 0) { break; }
        heap_reset();
    }
    return 0;
}
"""


def vxflac_source() -> str:
    """vxc source of the vxflac (FLAC-class) guest decoder."""
    return (
        r"""
// Per-channel predictor history (up to 8 channels x 4 taps, most recent first).
int fl_history[32];

// Rice-decode one signed residual with parameter k.
int fl_rice(int k) {
    int quotient;
    int value;
    quotient = 0;
    while (br_bit()) {
        quotient = quotient + 1;
        if (quotient > 1048576) { exit(80); }    // runaway unary code
    }
    value = (quotient << k) | br_bits(k);
    return (value >> 1) ^ (0 - (value & 1));     // zig-zag decode
}

// Fixed predictor of the given order using the channel's history.
int fl_predict(int channel, int order) {
    int base;
    int p1;
    int p2;
    int p3;
    int p4;
    base = channel * 4;
    p1 = fl_history[base];
    p2 = fl_history[base + 1];
    p3 = fl_history[base + 2];
    p4 = fl_history[base + 3];
    if (order == 0) { return 0; }
    if (order == 1) { return p1; }
    if (order == 2) { return 2 * p1 - p2; }
    if (order == 3) { return 3 * p1 - 3 * p2 + p3; }
    return 4 * p1 - 6 * p2 + 4 * p3 - p4;
}

int fl_push_history(int channel, int value) {
    int base;
    base = channel * 4;
    fl_history[base + 3] = fl_history[base + 2];
    fl_history[base + 2] = fl_history[base + 1];
    fl_history[base + 1] = fl_history[base];
    fl_history[base] = value;
    return 0;
}

int decode_stream() {
    int src;
    int src_len;
    int sample_rate;
    int channels;
    int num_frames;
    int block_size;
    int position;
    int frames;
    int channel;
    int order;
    int parameter;
    int frame;
    int value;
    int block_samples;
    int i;

    src = in_read_all();
    src_len = in_len;
    if (src_len < 16) { exit(81); }
    if (load_u32le(src) != 0x31465856) { exit(82); }        // "VXF1"
    sample_rate = load_u32le(src + 4);
    channels = peek8(src + 8);
    if (peek8(src + 9) != 16) { exit(83); }
    num_frames = load_u32le(src + 10);
    block_size = load_u16le(src + 14);
    if (channels < 1) { exit(83); }
    if (channels > 8) { exit(83); }
    if (block_size < 1) { exit(83); }

    for (i = 0; i < 32; i = i + 1) { fl_history[i] = 0; }

    br_init(src + 16, src_len - 16);
    out_init();
    wav_begin(sample_rate, channels, num_frames);

    // Interleaved 16-bit output for one block at a time.
    block_samples = alloc(block_size * channels * 2);

    position = 0;
    while (position < num_frames) {
        frames = num_frames - position;
        if (frames > block_size) { frames = block_size; }
        for (channel = 0; channel < channels; channel = channel + 1) {
            br_align();
            order = br_bits(8);
            parameter = br_bits(8);
            if (order > 4) { exit(84); }
            for (frame = 0; frame < frames; frame = frame + 1) {
                value = fl_rice(parameter) + fl_predict(channel, order);
                fl_push_history(channel, value);
                if (value > 32767) { value = 32767; }
                if (value < 0 - 32768) { value = 0 - 32768; }
                store_u16le(block_samples + (frame * channels + channel) * 2, value & 65535);
            }
        }
        br_align();
        out_bytes(block_samples, frames * channels * 2);
        position = position + frames;
    }
    out_flush();
    return 0;
}
"""
        + _MAIN_LOOP
    )


def vxsnd_source() -> str:
    """vxc source of the vxsnd (ADPCM, Vorbis-class role) guest decoder."""
    from repro.codecs.vxsnd import INDEX_TABLE, STEP_TABLE

    tables = "\n".join(
        [
            _int_array("ad_steps", STEP_TABLE),
            _int_array("ad_index_adjust", INDEX_TABLE),
        ]
    )
    return (
        tables
        + r"""

int ad_predictor;
int ad_index;

// Decode one 4-bit IMA ADPCM code, updating the predictor state.
int ad_decode(int code) {
    int step;
    int difference;
    step = ad_steps[ad_index];
    difference = step >> 3;
    if (code & 4) { difference = difference + step; }
    if (code & 2) { difference = difference + (step >> 1); }
    if (code & 1) { difference = difference + (step >> 2); }
    if (code & 8) {
        ad_predictor = ad_predictor - difference;
    } else {
        ad_predictor = ad_predictor + difference;
    }
    if (ad_predictor > 32767) { ad_predictor = 32767; }
    if (ad_predictor < 0 - 32768) { ad_predictor = 0 - 32768; }
    ad_index = ad_index + ad_index_adjust[code];
    if (ad_index < 0) { ad_index = 0; }
    if (ad_index > 88) { ad_index = 88; }
    return ad_predictor;
}

int decode_stream() {
    int src;
    int src_len;
    int sample_rate;
    int channels;
    int num_frames;
    int block_size;
    int offset;
    int position;
    int frames;
    int channel;
    int frame;
    int value;
    int byte_value;
    int code;
    int nibble_bytes;
    int block_samples;

    src = in_read_all();
    src_len = in_len;
    if (src_len < 15) { exit(90); }
    if (load_u32le(src) != 0x31535856) { exit(91); }        // "VXS1"
    sample_rate = load_u32le(src + 4);
    channels = peek8(src + 8);
    num_frames = load_u32le(src + 9);
    block_size = load_u16le(src + 13);
    if (channels < 1) { exit(92); }
    if (channels > 8) { exit(92); }
    if (block_size < 1) { exit(92); }

    offset = 15;
    out_init();
    wav_begin(sample_rate, channels, num_frames);
    block_samples = alloc(block_size * channels * 2);

    position = 0;
    while (position < num_frames) {
        frames = num_frames - position;
        if (frames > block_size) { frames = block_size; }
        for (channel = 0; channel < channels; channel = channel + 1) {
            if (offset + 4 > src_len) { exit(93); }
            ad_predictor = peek16s(src + offset);
            ad_index = peek8(src + offset + 2);
            if (ad_index > 88) { exit(94); }
            offset = offset + 4;
            nibble_bytes = (frames + 1) / 2;
            if (offset + nibble_bytes > src_len) { exit(93); }
            for (frame = 0; frame < frames; frame = frame + 1) {
                byte_value = peek8(src + offset + frame / 2);
                if (frame % 2) {
                    code = (byte_value >> 4) & 15;
                } else {
                    code = byte_value & 15;
                }
                value = ad_decode(code);
                store_u16le(block_samples + (frame * channels + channel) * 2, value & 65535);
            }
            offset = offset + nibble_bytes;
        }
        position = position + frames;
        out_bytes(block_samples, frames * channels * 2);
    }
    out_flush();
    return 0;
}
"""
        + _MAIN_LOOP
    )
