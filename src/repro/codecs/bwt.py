"""Burrows-Wheeler transform primitives for the bzip2-class codec.

The forward transform uses a prefix-doubling suffix array built with numpy
(the encoder runs natively inside the archiver, exactly as the paper's
encoders do).  The inverse transform -- the part the archived guest decoder
must perform -- uses the standard counting / LF-mapping reconstruction, and
the Python implementation here mirrors the vxc implementation used in the
guest decoder.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError


def suffix_array(data: bytes) -> np.ndarray:
    """Suffix array of ``data`` via prefix doubling (O(n log^2 n))."""
    if len(data) == 0:
        return np.empty(0, dtype=np.int64)
    values = np.frombuffer(data, dtype=np.uint8).astype(np.int64)
    return _suffix_array_int(values)


def bwt_forward(block: bytes) -> tuple[bytes, int]:
    """Burrows-Wheeler transform of ``block``.

    Uses the suffix-array formulation with a virtual end-of-block sentinel
    (the sentinel itself is not emitted): returns ``(last_column, primary)``
    where ``primary`` is the row index of the original string, needed for the
    inverse transform.
    """
    if not block:
        return b"", 0
    # Transform of block + sentinel, where the sentinel sorts before all bytes.
    length = len(block)
    data = np.frombuffer(block, dtype=np.uint8).astype(np.int64) + 1
    padded = np.concatenate([data, np.zeros(1, dtype=np.int64)])
    order = _suffix_array_int(padded)
    output = bytearray()
    primary = -1
    for row, start in enumerate(order):
        if start == 0:
            # This row's last character is the sentinel; skip it but remember
            # where the original string ended up.
            primary = len(output)
            continue
        output.append(int(padded[start - 1]) - 1)
    if primary < 0:
        raise CodecError("BWT failed to locate the primary index")
    assert len(output) == length
    return bytes(output), primary


def _suffix_array_int(values: np.ndarray) -> np.ndarray:
    length = len(values)
    rank = values.copy()
    order = np.argsort(rank, kind="stable")
    step = 1
    while True:
        shifted = np.full(length, -1, dtype=np.int64)
        if step < length:
            shifted[:-step] = rank[step:]
        order = np.lexsort((shifted, rank))
        sorted_rank = rank[order]
        sorted_shift = shifted[order]
        changes = np.empty(length, dtype=np.int64)
        changes[0] = 0
        changes[1:] = (
            (sorted_rank[1:] != sorted_rank[:-1]) | (sorted_shift[1:] != sorted_shift[:-1])
        ).cumsum()
        new_rank = np.empty(length, dtype=np.int64)
        new_rank[order] = changes
        rank = new_rank
        if changes[-1] == length - 1:
            return order
        step *= 2


def bwt_inverse(last_column: bytes, primary: int) -> bytes:
    """Invert the BWT using the counting / LF-mapping method.

    ``primary`` is the position (within ``last_column``) where the sentinel
    row was skipped during the forward transform.
    """
    length = len(last_column)
    if length == 0:
        return b""
    if not 0 <= primary <= length:
        raise CodecError("BWT primary index out of range")
    # Reinsert the virtual sentinel as symbol -1 at position `primary`.
    symbols = np.empty(length + 1, dtype=np.int64)
    symbols[:primary] = np.frombuffer(last_column[:primary], dtype=np.uint8)
    symbols[primary] = -1
    symbols[primary + 1 :] = np.frombuffer(last_column[primary:], dtype=np.uint8)
    order = np.argsort(symbols, kind="stable")
    output = bytearray(length)
    row = primary
    for index in range(length):
        row = int(order[row])
        output[index] = int(symbols[row])
    return bytes(output)


def mtf_encode(data: bytes) -> bytes:
    """Move-to-front transform."""
    alphabet = list(range(256))
    output = bytearray(len(data))
    for index, byte in enumerate(data):
        rank = alphabet.index(byte)
        output[index] = rank
        if rank:
            del alphabet[rank]
            alphabet.insert(0, byte)
    return bytes(output)


def mtf_decode(data: bytes) -> bytes:
    """Inverse move-to-front transform."""
    alphabet = list(range(256))
    output = bytearray(len(data))
    for index, rank in enumerate(data):
        byte = alphabet[rank]
        output[index] = byte
        if rank:
            del alphabet[rank]
            alphabet.insert(0, byte)
    return bytes(output)


def rle_encode(data: bytes, *, trigger: int = 4, max_run: int = 255) -> bytes:
    """bzip2-style initial run-length encoding.

    Runs of four identical bytes are followed by a count byte giving how many
    *additional* repeats (0..``max_run``) follow.  This protects the BWT
    sorter from degenerate inputs and is exactly what the guest decoder undoes.
    """
    output = bytearray()
    index = 0
    length = len(data)
    while index < length:
        byte = data[index]
        run = 1
        while index + run < length and data[index + run] == byte and run < trigger + max_run:
            run += 1
        if run >= trigger:
            output.extend(bytes([byte]) * trigger)
            output.append(run - trigger)
            index += run
        else:
            output.extend(bytes([byte]) * run)
            index += run
    return bytes(output)


def rle_decode(data: bytes, *, trigger: int = 4) -> bytes:
    """Inverse of :func:`rle_encode`."""
    output = bytearray()
    index = 0
    length = len(data)
    run = 0
    previous = -1
    while index < length:
        byte = data[index]
        index += 1
        output.append(byte)
        if byte == previous:
            run += 1
        else:
            run = 1
            previous = byte
        if run == trigger:
            if index >= length:
                raise CodecError("truncated RLE run count")
            extra = data[index]
            index += 1
            output.extend(bytes([byte]) * extra)
            run = 0
            previous = -1
    return bytes(output)
