"""``vxz``: the deflate-class general-purpose lossless codec.

This is the analogue of the paper's ``zlib`` codec (Table 1): LZ77 string
matching over a 32 KB window followed by canonical Huffman coding of
literal/length and distance symbols, using DEFLATE's slot-plus-extra-bits
ranges.  It is the archiver's default codec for files of unrecognised type.

Stream layout (all integers little endian)::

    0   4   magic "VXZ1"
    4   4   original (uncompressed) length
    8   286 literal/length code lengths (one byte per symbol)
    294 30  distance code lengths
    324 ... bit stream: Huffman-coded symbols; literal 0..255, 256 = end of
            stream, 257+i = length slot i followed by its extra bits and a
            distance symbol with its extra bits
"""

from __future__ import annotations

import struct

from repro.codecs.base import Codec, CodecInfo
from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    read_lengths_header,
    write_lengths_header,
)
from repro.codecs.lz77 import (
    DISTANCE_SLOTS,
    END_OF_BLOCK,
    LENGTH_SLOTS,
    NUM_DISTANCE_SYMBOLS,
    NUM_LITLEN_SYMBOLS,
    Token,
    distance_to_slot,
    length_to_slot,
    tokenize,
)
from repro.errors import CodecError

MAGIC = b"VXZ1"
_HEADER = struct.Struct("<4sI")

#: Output size guard for the native decoder (the guest decoder is bounded by
#: the VM's output budget instead).
MAX_OUTPUT = 1 << 31


class VxzCodec(Codec):
    """Deflate-class general purpose codec (zlib analogue)."""

    info = CodecInfo(
        name="vxz",
        description="LZ77 + canonical Huffman ('deflate' class) general codec",
        availability="repro.codecs.vxz",
        output_format="raw data",
        category="general",
        lossy=False,
    )

    def __init__(self, *, max_chain: int = 64, lazy: bool = True):
        self._max_chain = max_chain
        self._lazy = lazy

    @property
    def magic(self) -> bytes:
        return MAGIC

    def can_encode(self, data: bytes) -> bool:
        # The general-purpose codec accepts anything.
        return True

    # -- encoding -----------------------------------------------------------------

    def encode(self, data: bytes, **options) -> bytes:
        max_chain = options.get("max_chain", self._max_chain)
        tokens = tokenize(data, max_chain=max_chain, lazy=self._lazy)

        litlen_freq = [0] * NUM_LITLEN_SYMBOLS
        dist_freq = [0] * NUM_DISTANCE_SYMBOLS
        staged: list[tuple] = []
        for token in tokens:
            if token.is_literal:
                litlen_freq[token.literal] += 1
                staged.append(("lit", token.literal))
            else:
                length_slot, length_bits, length_extra = length_to_slot(token.length)
                dist_slot, dist_bits, dist_extra = distance_to_slot(token.distance)
                litlen_freq[257 + length_slot] += 1
                dist_freq[dist_slot] += 1
                staged.append(
                    ("match", length_slot, length_bits, length_extra,
                     dist_slot, dist_bits, dist_extra)
                )
        litlen_freq[END_OF_BLOCK] += 1

        litlen_encoder = HuffmanEncoder.from_frequencies(litlen_freq)
        dist_encoder = HuffmanEncoder.from_frequencies(dist_freq)

        writer = BitWriter()
        for entry in staged:
            if entry[0] == "lit":
                litlen_encoder.write_symbol(writer, entry[1])
            else:
                _, length_slot, length_bits, length_extra, dist_slot, dist_bits, dist_extra = entry
                litlen_encoder.write_symbol(writer, 257 + length_slot)
                writer.write_bits(length_extra, length_bits)
                dist_encoder.write_symbol(writer, dist_slot)
                writer.write_bits(dist_extra, dist_bits)
        litlen_encoder.write_symbol(writer, END_OF_BLOCK)

        return (
            _HEADER.pack(MAGIC, len(data))
            + write_lengths_header(litlen_encoder.lengths)
            + write_lengths_header(dist_encoder.lengths)
            + writer.getvalue()
        )

    # -- native decoding ----------------------------------------------------------------

    def decode(self, data: bytes) -> bytes:
        if len(data) < _HEADER.size or data[:4] != MAGIC:
            raise CodecError("not a vxz stream")
        (_, original_length) = _HEADER.unpack_from(data, 0)
        if original_length > MAX_OUTPUT:
            raise CodecError("vxz stream declares an implausible output size")
        offset = _HEADER.size
        litlen_lengths, offset = read_lengths_header(data, offset, NUM_LITLEN_SYMBOLS)
        dist_lengths, offset = read_lengths_header(data, offset, NUM_DISTANCE_SYMBOLS)
        litlen_decoder = HuffmanDecoder(litlen_lengths)
        dist_decoder = HuffmanDecoder(dist_lengths)
        reader = BitReader(data, start=offset)

        output = bytearray()
        while True:
            symbol = litlen_decoder.read_symbol(reader)
            if symbol < 256:
                output.append(symbol)
                continue
            if symbol == END_OF_BLOCK:
                break
            slot = symbol - 257
            if slot >= len(LENGTH_SLOTS):
                raise CodecError("invalid length symbol in vxz stream")
            base, extra_bits = LENGTH_SLOTS[slot]
            length = base + reader.read_bits(extra_bits)
            dist_slot = dist_decoder.read_symbol(reader)
            base, extra_bits = DISTANCE_SLOTS[dist_slot]
            distance = base + reader.read_bits(extra_bits)
            if distance > len(output):
                raise CodecError("vxz match reaches before the start of output")
            if len(output) + length > MAX_OUTPUT:
                raise CodecError("vxz output exceeds the size limit")
            start = len(output) - distance
            for index in range(length):
                output.append(output[start + index])
        if len(output) != original_length:
            raise CodecError(
                f"vxz stream decoded to {len(output)} bytes, header says {original_length}"
            )
        return bytes(output)

    # -- guest decoder ---------------------------------------------------------------------

    def guest_units(self):
        from repro.codecs.guest import vxz_guest_units

        return vxz_guest_units()


def encode_tokens_reference(tokens: list[Token]) -> list[int]:
    """Expose staged symbol counts for tests/benchmarks (debugging helper)."""
    return [token.literal if token.is_literal else 257 for token in tokens]
