"""Integer 5/3 lifting wavelet transform for the JPEG-2000-class codec.

The LeGall 5/3 filter pair is the reversible transform JPEG 2000 uses for its
lossless path; it is defined entirely over integers, so the guest decoder
(vxc, no floating point) and the native Python decoder produce identical
pixels.

To keep the guest implementation simple and bit-exact, every decomposition
level requires even dimensions: the codec pads images to a multiple of
``2 ** levels`` before transforming (the pad columns/rows replicate the edge
pixel and are cropped again after decoding).  With even lengths the lifting
steps need boundary clamping only at the final sample:

* predict: ``d[i] = odd[i] - floor((even[i] + even[i+1]) / 2)`` with the last
  ``even[i+1]`` clamped to the final even sample,
* update:  ``s[i] = even[i] + floor((d[i-1] + d[i] + 2) / 4)`` with the first
  ``d[i-1]`` clamped to ``d[0]``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError


def _forward_1d(signal: np.ndarray) -> np.ndarray:
    """One lifting step along the last axis (even length); returns [low | high]."""
    length = signal.shape[-1]
    if length % 2:
        raise CodecError("5/3 lifting requires even-length signals")
    even = signal[..., 0::2].astype(np.int64)
    odd = signal[..., 1::2].astype(np.int64)
    even_next = np.concatenate([even[..., 1:], even[..., -1:]], axis=-1)
    detail = odd - ((even + even_next) >> 1)
    detail_prev = np.concatenate([detail[..., :1], detail[..., :-1]], axis=-1)
    smooth = even + ((detail_prev + detail + 2) >> 2)
    return np.concatenate([smooth, detail], axis=-1)


def _inverse_1d(coefficients: np.ndarray) -> np.ndarray:
    """Invert :func:`_forward_1d`."""
    length = coefficients.shape[-1]
    if length % 2:
        raise CodecError("5/3 lifting requires even-length signals")
    half = length // 2
    smooth = coefficients[..., :half].astype(np.int64)
    detail = coefficients[..., half:].astype(np.int64)
    detail_prev = np.concatenate([detail[..., :1], detail[..., :-1]], axis=-1)
    even = smooth - ((detail_prev + detail + 2) >> 2)
    even_next = np.concatenate([even[..., 1:], even[..., -1:]], axis=-1)
    odd = detail + ((even + even_next) >> 1)
    signal = np.zeros(coefficients.shape, dtype=np.int64)
    signal[..., 0::2] = even
    signal[..., 1::2] = odd
    return signal


def forward_2d(image: np.ndarray, levels: int) -> np.ndarray:
    """Multi-level 2-D forward 5/3 transform (nested dyadic layout)."""
    height, width = image.shape
    _check_dimensions(height, width, levels)
    coefficients = image.astype(np.int64).copy()
    for level in range(levels):
        sub_height = height >> level
        sub_width = width >> level
        region = coefficients[:sub_height, :sub_width]
        region = _forward_1d(region)          # rows
        region = _forward_1d(region.T).T      # columns
        coefficients[:sub_height, :sub_width] = region
    return coefficients


def inverse_2d(coefficients: np.ndarray, levels: int) -> np.ndarray:
    """Invert :func:`forward_2d`."""
    height, width = coefficients.shape
    _check_dimensions(height, width, levels)
    output = coefficients.astype(np.int64).copy()
    for level in range(levels - 1, -1, -1):
        sub_height = height >> level
        sub_width = width >> level
        region = output[:sub_height, :sub_width]
        region = _inverse_1d(region.T).T      # columns
        region = _inverse_1d(region)          # rows
        output[:sub_height, :sub_width] = region
    return output


def _check_dimensions(height: int, width: int, levels: int) -> None:
    factor = 1 << levels
    if height % factor or width % factor:
        raise CodecError(
            f"image dimensions {width}x{height} must be multiples of {factor} "
            f"for {levels} decomposition levels (pad before transforming)"
        )


def padded_size(size: int, levels: int) -> int:
    """Smallest size >= ``size`` that is a multiple of ``2 ** levels``."""
    factor = 1 << levels
    return (size + factor - 1) // factor * factor


def subband_shapes(height: int, width: int, levels: int) -> list[tuple[str, int, int, int, int]]:
    """Describe subbands as ``(name, row, col, height, width)`` rectangles."""
    _check_dimensions(height, width, levels)
    bands = []
    current_height, current_width = height, width
    for level in range(1, levels + 1):
        low_height = current_height // 2
        low_width = current_width // 2
        bands.append((f"HL{level}", 0, low_width, low_height, low_width))
        bands.append((f"LH{level}", low_height, 0, low_height, low_width))
        bands.append((f"HH{level}", low_height, low_width, low_height, low_width))
        current_height, current_width = low_height, low_width
    bands.append(("LL", 0, 0, current_height, current_width))
    return bands
