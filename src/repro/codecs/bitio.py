"""Bit-level I/O used by the entropy coders.

Bits are packed least-significant-bit first within each byte, the same
convention DEFLATE uses, so the guest decoders' bit readers (written in vxc)
and these Python implementations interoperate byte-for-byte.
"""

from __future__ import annotations

from repro.errors import CodecError


class BitWriter:
    """Accumulates bits LSB-first and yields bytes."""

    def __init__(self):
        self._buffer = bytearray()
        self._bit_position = 0
        self._current = 0

    def write_bit(self, bit: int) -> None:
        if bit:
            self._current |= 1 << self._bit_position
        self._bit_position += 1
        if self._bit_position == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._bit_position = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write ``count`` bits of ``value``, least significant bit first."""
        if count < 0 or value < 0:
            raise CodecError("bit writes must be non-negative")
        for position in range(count):
            self.write_bit((value >> position) & 1)

    def write_code(self, code: int, length: int) -> None:
        """Write a Huffman code: most significant bit of the code first.

        Canonical Huffman codes are defined MSB-first; emitting them this way
        lets the decoder consume one bit at a time and compare against the
        canonical first-code boundaries.
        """
        for position in range(length - 1, -1, -1):
            self.write_bit((code >> position) & 1)

    def align_to_byte(self) -> None:
        while self._bit_position != 0:
            self.write_bit(0)

    def getvalue(self) -> bytes:
        """Return all complete bytes, padding the final partial byte with zeros."""
        result = bytearray(self._buffer)
        if self._bit_position:
            result.append(self._current)
        return bytes(result)

    @property
    def bit_length(self) -> int:
        return len(self._buffer) * 8 + self._bit_position


class BitReader:
    """Reads bits LSB-first from a byte string."""

    def __init__(self, data: bytes, start: int = 0):
        self._data = data
        self._byte_position = start
        self._bit_position = 0

    def read_bit(self) -> int:
        if self._byte_position >= len(self._data):
            raise CodecError("bit stream exhausted")
        bit = (self._data[self._byte_position] >> self._bit_position) & 1
        self._bit_position += 1
        if self._bit_position == 8:
            self._bit_position = 0
            self._byte_position += 1
        return bit

    def read_bits(self, count: int) -> int:
        value = 0
        for position in range(count):
            value |= self.read_bit() << position
        return value

    def align_to_byte(self) -> None:
        if self._bit_position:
            self._bit_position = 0
            self._byte_position += 1

    def read_bytes(self, count: int) -> bytes:
        """Byte-aligned raw read."""
        self.align_to_byte()
        end = self._byte_position + count
        if end > len(self._data):
            raise CodecError("byte stream exhausted")
        chunk = self._data[self._byte_position : end]
        self._byte_position = end
        return chunk

    @property
    def bits_remaining(self) -> int:
        return (len(self._data) - self._byte_position) * 8 - self._bit_position

    @property
    def byte_position(self) -> int:
        return self._byte_position


def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one (0, -1, 1, -2, ... -> 0, 1, 2, 3)."""
    return (value << 1) ^ (value >> 31) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def write_uvarint(buffer: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise CodecError("uvarint cannot encode negative values")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 35:
            raise CodecError("varint too long")
