"""``vxbwt``: the bzip2-class block-sorting lossless codec.

Analogue of the paper's ``bzip2`` codec (Table 1).  The pipeline per block is
the classic bzip2 chain: run-length pre-pass, Burrows-Wheeler transform,
move-to-front, canonical Huffman coding.

Stream layout (little endian)::

    0   4   magic "VXB1"
    4   4   original length
    8   4   block size (maximum raw bytes per block)
    12  ... blocks, each:
            u32  raw length of this block (uncompressed bytes)
            u32  transformed length (bytes entering the BWT, after RLE)
            u32  BWT primary index
            256  Huffman code lengths for the MTF symbols
            ...  bit stream of `transformed length` Huffman symbols,
                 padded to a byte boundary
"""

from __future__ import annotations

import struct

from repro.codecs.base import Codec, CodecInfo
from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.bwt import bwt_forward, bwt_inverse, mtf_decode, mtf_encode, rle_decode, rle_encode
from repro.codecs.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    read_lengths_header,
    write_lengths_header,
)
from repro.errors import CodecError

MAGIC = b"VXB1"
_HEADER = struct.Struct("<4sII")
_BLOCK_HEADER = struct.Struct("<III")

#: Default block size.  bzip2 uses 100 KB x level; we default lower because
#: the guest decoder's inverse BWT is the dominant cost under the VM.
DEFAULT_BLOCK_SIZE = 64 * 1024

MAX_BLOCK_SIZE = 900 * 1024


class VxbwtCodec(Codec):
    """bzip2-class block-sorting codec."""

    info = CodecInfo(
        name="vxbwt",
        description="BWT + MTF + Huffman ('bzip2' class) general codec",
        availability="repro.codecs.vxbwt",
        output_format="raw data",
        category="general",
        lossy=False,
    )

    def __init__(self, *, block_size: int = DEFAULT_BLOCK_SIZE):
        if not 1024 <= block_size <= MAX_BLOCK_SIZE:
            raise ValueError("block size must be between 1 KB and 900 KB")
        self._block_size = block_size

    @property
    def magic(self) -> bytes:
        return MAGIC

    def can_encode(self, data: bytes) -> bool:
        return True

    # -- encoding ------------------------------------------------------------------

    def encode(self, data: bytes, **options) -> bytes:
        block_size = options.get("block_size", self._block_size)
        pieces = [_HEADER.pack(MAGIC, len(data), block_size)]
        for start in range(0, len(data), block_size):
            block = data[start : start + block_size]
            pieces.append(self._encode_block(block))
        if not data:
            pieces.append(self._encode_block(b""))
        return b"".join(pieces)

    def _encode_block(self, block: bytes) -> bytes:
        preprocessed = rle_encode(block)
        transformed, primary = bwt_forward(preprocessed)
        ranks = mtf_encode(transformed)

        frequencies = [0] * 256
        for rank in ranks:
            frequencies[rank] += 1
        encoder = HuffmanEncoder.from_frequencies(frequencies)
        writer = BitWriter()
        for rank in ranks:
            encoder.write_symbol(writer, rank)
        writer.align_to_byte()
        return (
            _BLOCK_HEADER.pack(len(block), len(ranks), primary)
            + write_lengths_header(encoder.lengths)
            + writer.getvalue()
        )

    # -- native decoding ------------------------------------------------------------------

    def decode(self, data: bytes) -> bytes:
        if len(data) < _HEADER.size or data[:4] != MAGIC:
            raise CodecError("not a vxbwt stream")
        _, original_length, block_size = _HEADER.unpack_from(data, 0)
        if block_size > MAX_BLOCK_SIZE:
            raise CodecError("vxbwt block size exceeds the supported maximum")
        offset = _HEADER.size
        output = bytearray()
        while len(output) < original_length or (original_length == 0 and offset < len(data)):
            if offset + _BLOCK_HEADER.size > len(data):
                raise CodecError("truncated vxbwt block header")
            raw_length, transformed_length, primary = _BLOCK_HEADER.unpack_from(data, offset)
            offset += _BLOCK_HEADER.size
            if transformed_length > 4 * block_size + 1024:
                raise CodecError("vxbwt block declares an implausible size")
            lengths, offset = read_lengths_header(data, offset, 256)
            decoder = HuffmanDecoder(lengths)
            reader = BitReader(data, start=offset)
            ranks = bytearray(transformed_length)
            for index in range(transformed_length):
                ranks[index] = decoder.read_symbol(reader)
            reader.align_to_byte()
            offset = reader.byte_position
            transformed = mtf_decode(bytes(ranks))
            preprocessed = bwt_inverse(transformed, primary)
            block = rle_decode(preprocessed)
            if len(block) != raw_length:
                raise CodecError(
                    f"vxbwt block decoded to {len(block)} bytes, header says {raw_length}"
                )
            output.extend(block)
            if original_length == 0:
                break
        if len(output) != original_length:
            raise CodecError("vxbwt stream did not decode to its declared length")
        return bytes(output)

    # -- guest decoder -----------------------------------------------------------------------

    def guest_units(self):
        from repro.codecs.guest import vxbwt_guest_units

        return vxbwt_guest_units()
