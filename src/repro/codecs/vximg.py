"""``vximg``: the JPEG-class lossy still-image codec.

Analogue of the paper's ``jpeg`` codec (Table 1): YCbCr colour conversion,
8x8 block DCT, quality-scaled quantisation, zig-zag scan, run-length token
stream, canonical Huffman entropy coding.  The decoder -- native Python and
the archived vxc guest alike -- emits a 24-bit Windows BMP image, matching
the paper's choice of "simple and universally-understood" output format.

Stream layout (little endian)::

    0   4   magic "VXI1"
    4   2   width (original, before padding to multiples of 8)
    6   2   height
    8   1   quality (1..100)
    9   1   channels (1 = grayscale, 3 = colour)
    10  64  quantisation table (zig-zag order, already quality-scaled)
    74  ... entropy-coded token stream: 257 Huffman code lengths followed by
            the bit stream; the decoded bytes form the coefficient tokens

Coefficient tokens, per channel then per 8x8 block in raster order:

* DC: the delta from the previous block's DC of the same channel, zig-zag
  mapped and LEB128-varint encoded,
* AC: ``(run, value)`` pairs -- a run byte (number of zero coefficients
  skipped) followed by the zig-zag/varint of the non-zero value; run byte
  255 terminates the block (all remaining coefficients are zero).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.base import Codec, CodecInfo
from repro.codecs.bitio import (
    BitReader,
    BitWriter,
    read_uvarint,
    write_uvarint,
    zigzag_decode,
    zigzag_encode,
)
from repro.codecs.dct import (
    BLOCK,
    ZIGZAG,
    forward_dct,
    inverse_dct_integer,
    quant_table,
    zigzag_scan,
    zigzag_unscan,
)
from repro.codecs.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    read_lengths_header,
    write_lengths_header,
)
from repro.errors import CodecError
from repro.formats.bmp import write_bmp
from repro.formats.ppm import is_ppm, read_ppm
from repro.formats.bmp import is_bmp, read_bmp

MAGIC = b"VXI1"
_HEADER = struct.Struct("<4sHHBB")
END_OF_BLOCK_RUN = 255
_HB_SYMBOLS = 257          # 256 byte values + end-of-stream
_HB_EOS = 256

MAX_DIMENSION = 16384


# -- integer colour conversion (shared with the guest decoder) --------------------

def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Integer RGB -> YCbCr (JPEG-style), matching the guest's fixed-point math."""
    r = rgb[..., 0].astype(np.int64)
    g = rgb[..., 1].astype(np.int64)
    b = rgb[..., 2].astype(np.int64)
    y = (77 * r + 150 * g + 29 * b) >> 8
    cb = ((-43 * r - 85 * g + 128 * b) >> 8) + 128
    cr = ((128 * r - 107 * g - 21 * b) >> 8) + 128
    return np.clip(np.stack([y, cb, cr], axis=-1), 0, 255)


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Integer YCbCr -> RGB, the exact inverse formula the guest decoder uses."""
    y = ycc[..., 0].astype(np.int64)
    cb = ycc[..., 1].astype(np.int64) - 128
    cr = ycc[..., 2].astype(np.int64) - 128
    r = y + ((359 * cr) >> 8)
    g = y - ((88 * cb + 183 * cr) >> 8)
    b = y + ((454 * cb) >> 8)
    return np.clip(np.stack([r, g, b], axis=-1), 0, 255).astype(np.uint8)


def _pad_to_blocks(plane: np.ndarray) -> np.ndarray:
    height, width = plane.shape
    padded_height = (height + BLOCK - 1) // BLOCK * BLOCK
    padded_width = (width + BLOCK - 1) // BLOCK * BLOCK
    return np.pad(plane, ((0, padded_height - height), (0, padded_width - width)), mode="edge")


class VximgCodec(Codec):
    """JPEG-class lossy image codec; decoders output BMP."""

    info = CodecInfo(
        name="vximg",
        description="8x8 DCT lossy still-image codec (JPEG class)",
        availability="repro.codecs.vximg",
        output_format="BMP image",
        category="image",
        lossy=True,
    )

    def __init__(self, *, quality: int = 75):
        self._quality = quality

    @property
    def magic(self) -> bytes:
        return MAGIC

    def can_encode(self, data: bytes) -> bool:
        return is_ppm(data) or is_bmp(data)

    # -- encoding -------------------------------------------------------------------

    def encode(self, data: bytes, **options) -> bytes:
        quality = int(options.get("quality", self._quality))
        pixels = read_ppm(data) if is_ppm(data) else read_bmp(data)
        return self.encode_pixels(pixels, quality=quality)

    def encode_pixels(self, pixels: np.ndarray, *, quality: int | None = None) -> bytes:
        """Compress an ``(H, W, 3)`` RGB array directly."""
        quality = self._quality if quality is None else quality
        height, width = pixels.shape[:2]
        if height > MAX_DIMENSION or width > MAX_DIMENSION:
            raise CodecError("image too large for vximg")
        channels = 3
        table = quant_table(quality)
        planes = rgb_to_ycbcr(pixels)

        tokens = bytearray()
        for channel in range(channels):
            plane = _pad_to_blocks(planes[..., channel])
            previous_dc = 0
            for block_row in range(0, plane.shape[0], BLOCK):
                for block_col in range(0, plane.shape[1], BLOCK):
                    block = plane[block_row : block_row + BLOCK, block_col : block_col + BLOCK]
                    coefficients = forward_dct(block)
                    quantised = np.round(coefficients / table).astype(np.int64)
                    scanned = zigzag_scan(quantised)
                    write_uvarint(tokens, zigzag_encode(int(scanned[0]) - previous_dc))
                    previous_dc = int(scanned[0])
                    self._encode_ac(tokens, scanned[1:])

        header = _HEADER.pack(MAGIC, width, height, quality, channels)
        quant_zigzag = bytes(int(table.reshape(64)[index]) for index in ZIGZAG)
        return header + quant_zigzag + _huffman_pack(bytes(tokens))

    @staticmethod
    def _encode_ac(tokens: bytearray, coefficients: list[int]) -> None:
        run = 0
        for value in coefficients:
            if value == 0:
                run += 1
                continue
            while run > 254:
                # A run longer than a byte is split by emitting an explicit
                # zero coefficient (cannot happen with 63 AC coefficients but
                # mirrored by the decoders for safety): 254 skipped zeros plus
                # the zero value itself consume 255 positions.
                tokens.append(254)
                write_uvarint(tokens, zigzag_encode(0))
                run -= 255
            tokens.append(run)
            write_uvarint(tokens, zigzag_encode(int(value)))
            run = 0
        tokens.append(END_OF_BLOCK_RUN)

    # -- native decoding ----------------------------------------------------------------

    def decode(self, data: bytes) -> bytes:
        if len(data) < _HEADER.size + 64 or data[:4] != MAGIC:
            raise CodecError("not a vximg stream")
        _, width, height, quality, channels = _HEADER.unpack_from(data, 0)
        if channels not in (1, 3):
            raise CodecError("vximg channel count must be 1 or 3")
        if not width or not height:
            raise CodecError("vximg image has zero dimensions")
        quant_zigzag = data[_HEADER.size : _HEADER.size + 64]
        table = zigzag_unscan(list(quant_zigzag))
        tokens = _huffman_unpack(data, _HEADER.size + 64)

        padded_height = (height + BLOCK - 1) // BLOCK * BLOCK
        padded_width = (width + BLOCK - 1) // BLOCK * BLOCK
        planes = np.zeros((padded_height, padded_width, 3), dtype=np.int64)

        offset = 0
        for channel in range(channels):
            previous_dc = 0
            for block_row in range(0, padded_height, BLOCK):
                for block_col in range(0, padded_width, BLOCK):
                    scanned, offset, previous_dc = self._decode_block(tokens, offset, previous_dc)
                    coefficients = zigzag_unscan(scanned) * table
                    pixels = inverse_dct_integer(coefficients)
                    planes[block_row : block_row + BLOCK,
                           block_col : block_col + BLOCK, channel] = pixels
        if channels == 1:
            planes[..., 1] = 128
            planes[..., 2] = 128
        rgb = ycbcr_to_rgb(planes[:height, :width])
        if channels == 1:
            rgb = np.repeat(planes[:height, :width, :1].astype(np.uint8), 3, axis=2)
        return write_bmp(rgb)

    @staticmethod
    def _decode_block(tokens: bytes, offset: int, previous_dc: int) -> tuple[list[int], int, int]:
        delta, offset = read_uvarint(tokens, offset)
        dc = previous_dc + zigzag_decode(delta)
        scanned = [dc] + [0] * 63
        position = 1
        while True:
            if offset >= len(tokens):
                raise CodecError("truncated vximg token stream")
            run = tokens[offset]
            offset += 1
            if run == END_OF_BLOCK_RUN:
                break
            position += run
            value, offset = read_uvarint(tokens, offset)
            if position >= 64:
                raise CodecError("vximg AC run overflows the block")
            scanned[position] = zigzag_decode(value)
            position += 1
        return scanned, offset, dc

    # -- guest decoder ------------------------------------------------------------------------

    def guest_units(self):
        from repro.codecs.guest import vximg_guest_units

        return vximg_guest_units()


# -- Huffman byte-stream layer (shared with vxjp2) -------------------------------------------

def _huffman_pack(payload: bytes) -> bytes:
    """Entropy-code a byte string: 257 code lengths + bit stream + EOS symbol."""
    frequencies = [0] * _HB_SYMBOLS
    for byte in payload:
        frequencies[byte] += 1
    frequencies[_HB_EOS] += 1
    encoder = HuffmanEncoder.from_frequencies(frequencies)
    writer = BitWriter()
    for byte in payload:
        encoder.write_symbol(writer, byte)
    encoder.write_symbol(writer, _HB_EOS)
    return write_lengths_header(encoder.lengths) + writer.getvalue()


def _huffman_unpack(data: bytes, offset: int) -> bytes:
    """Inverse of :func:`_huffman_pack`."""
    lengths, offset = read_lengths_header(data, offset, _HB_SYMBOLS)
    decoder = HuffmanDecoder(lengths)
    reader = BitReader(data, start=offset)
    output = bytearray()
    while True:
        symbol = decoder.read_symbol(reader)
        if symbol == _HB_EOS:
            return bytes(output)
        output.append(symbol)
