"""Canonical Huffman coding.

Both general-purpose codecs (``vxz`` and ``vxbwt``) and the entropy layer of
the image codecs use length-limited canonical Huffman codes.  Only the code
*lengths* are transmitted; codes are reconstructed canonically on both sides,
which is also what the guest decoders (written in vxc) do with the standard
count/first-code method.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from heapq import heapify, heappop, heappush

from repro.codecs.bitio import BitReader, BitWriter
from repro.errors import CodecError

#: Maximum code length accepted anywhere in this library (same limit as DEFLATE).
MAX_CODE_LENGTH = 15


def build_code_lengths(frequencies: list[int], max_length: int = MAX_CODE_LENGTH) -> list[int]:
    """Compute length-limited Huffman code lengths for a frequency table.

    Symbols with zero frequency get length 0 (not coded).  If the natural
    Huffman tree exceeds ``max_length``, lengths are flattened with the
    standard heuristic (demote over-long codes, then repair the Kraft sum).
    """
    count = len(frequencies)
    active = [index for index, frequency in enumerate(frequencies) if frequency > 0]
    if not active:
        return [0] * count
    if len(active) == 1:
        lengths = [0] * count
        lengths[active[0]] = 1
        return lengths

    # Standard Huffman tree construction over a heap of (weight, tiebreak, node).
    heap = [(frequencies[index], index, index) for index in active]
    heapify(heap)
    parents: dict[int, int] = {}
    next_node = count
    while len(heap) > 1:
        weight_a, _, node_a = heappop(heap)
        weight_b, _, node_b = heappop(heap)
        parents[node_a] = next_node
        parents[node_b] = next_node
        heappush(heap, (weight_a + weight_b, next_node, next_node))
        next_node += 1

    lengths = [0] * count
    for index in active:
        depth = 0
        node = index
        while node in parents:
            node = parents[node]
            depth += 1
        lengths[index] = depth

    if max(lengths) <= max_length:
        return lengths
    return _limit_lengths(lengths, max_length)


def _limit_lengths(lengths: list[int], max_length: int) -> list[int]:
    """Clamp code lengths to ``max_length`` while keeping the Kraft sum valid."""
    clamped = [min(length, max_length) if length else 0 for length in lengths]
    # Kraft sum measured in units of 2**-max_length.
    unit = 1 << max_length
    kraft = sum(unit >> length for length in clamped if length)
    while kraft > unit:
        # Demote the deepest code shorter than max_length... classic repair:
        # find a symbol with length < max_length and increase it.
        candidates = sorted(
            (index for index, length in enumerate(clamped) if 0 < length < max_length),
            key=lambda index: clamped[index],
            reverse=True,
        )
        if not candidates:
            raise CodecError("cannot limit Huffman code lengths")
        index = candidates[0]
        clamped[index] += 1
        kraft -= unit >> clamped[index]
    return clamped


def canonical_codes(lengths: list[int]) -> list[int]:
    """Assign canonical codes (MSB-first) given code lengths."""
    max_length = max(lengths, default=0)
    length_counts = [0] * (max_length + 1)
    for length in lengths:
        if length:
            length_counts[length] += 1
    code = 0
    next_code = [0] * (max_length + 2)
    for length in range(1, max_length + 1):
        code = (code + length_counts[length - 1]) << 1
        next_code[length] = code
    codes = [0] * len(lengths)
    for symbol, length in enumerate(lengths):
        if length:
            codes[symbol] = next_code[length]
            next_code[length] += 1
            if codes[symbol] >= (1 << length):
                raise CodecError("over-subscribed Huffman code lengths")
    return codes


@dataclass
class HuffmanEncoder:
    """Canonical Huffman encoder for one alphabet."""

    lengths: list[int]
    codes: list[int]

    @classmethod
    def from_frequencies(cls, frequencies: list[int],
                         max_length: int = MAX_CODE_LENGTH) -> "HuffmanEncoder":
        lengths = build_code_lengths(frequencies, max_length)
        return cls(lengths=lengths, codes=canonical_codes(lengths))

    @classmethod
    def from_data(cls, data: bytes, alphabet_size: int = 256) -> "HuffmanEncoder":
        frequencies = [0] * alphabet_size
        for symbol, count in Counter(data).items():
            frequencies[symbol] = count
        return cls.from_frequencies(frequencies)

    def write_symbol(self, writer: BitWriter, symbol: int) -> None:
        length = self.lengths[symbol]
        if length == 0:
            raise CodecError(f"symbol {symbol} has no code")
        writer.write_code(self.codes[symbol], length)


class HuffmanDecoder:
    """Canonical Huffman decoder using the count/first-code method.

    This mirrors exactly the algorithm implemented in the guest decoders'
    shared vxc library, so the two stay in lock-step.
    """

    def __init__(self, lengths: list[int]):
        self._lengths = lengths
        max_length = max(lengths, default=0)
        if max_length > MAX_CODE_LENGTH:
            raise CodecError("code length exceeds the supported maximum")
        counts = [0] * (max_length + 1)
        for length in lengths:
            if length:
                counts[length] += 1
        # symbols sorted by (length, symbol) -- canonical order
        self._symbols = [
            symbol
            for length in range(1, max_length + 1)
            for symbol, symbol_length in enumerate(lengths)
            if symbol_length == length
        ]
        self._counts = counts
        self._max_length = max_length
        if max_length == 0:
            return
        # Validate the Kraft inequality so corrupt headers fail loudly.
        unit = 1 << max_length
        kraft = sum(unit >> length for length in lengths if length)
        if kraft > unit:
            raise CodecError("over-subscribed Huffman code")

    @property
    def is_empty(self) -> bool:
        return self._max_length == 0

    def read_symbol(self, reader: BitReader) -> int:
        if self.is_empty:
            raise CodecError("cannot decode with an empty Huffman table")
        code = 0
        first = 0
        index = 0
        for length in range(1, self._max_length + 1):
            code |= reader.read_bit()
            count = self._counts[length]
            if code - first < count:
                return self._symbols[index + (code - first)]
            index += count
            first = (first + count) << 1
            code <<= 1
        raise CodecError("invalid Huffman code in stream")


def write_lengths_header(lengths: list[int]) -> bytes:
    """Serialise a code-length table (one byte per symbol)."""
    if any(length > MAX_CODE_LENGTH for length in lengths):
        raise CodecError("code length exceeds the supported maximum")
    return bytes(lengths)


def read_lengths_header(data: bytes, offset: int, count: int) -> tuple[list[int], int]:
    """Read a code-length table written by :func:`write_lengths_header`."""
    end = offset + count
    if end > len(data):
        raise CodecError("truncated Huffman length table")
    lengths = list(data[offset:end])
    if any(length > MAX_CODE_LENGTH for length in lengths):
        raise CodecError("corrupt Huffman length table")
    return lengths, end
