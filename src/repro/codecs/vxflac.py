"""``vxflac``: the FLAC-class lossless audio codec.

Analogue of the paper's ``flac`` codec (Table 1) -- the one full
encoder/decoder pair in the prototype: the archiver can recognise raw WAV
audio and compress it automatically.  The scheme follows FLAC's structure:
per-block fixed linear predictors of order 0..4 with Rice-coded residuals.
Decoders emit a 16-bit PCM WAV file.

Stream layout (little endian)::

    0   4   magic "VXF1"
    4   4   sample rate
    8   1   channels
    9   1   bits per sample (always 16)
    10  4   number of frames
    14  2   block size in frames
    16  ... blocks; per block, per channel:
            u8 predictor order (0..4), u8 Rice parameter,
            Rice-coded residuals for every frame in the block;
            each block is padded to a byte boundary.

Prediction history carries across blocks (the first block starts from
zeros), so no warm-up samples are stored.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.base import Codec, CodecInfo
from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.rice import best_rice_parameter, decode_residuals, encode_residuals
from repro.errors import CodecError
from repro.formats.wav import WavAudio, is_wav, read_wav, write_wav

MAGIC = b"VXF1"
_HEADER = struct.Struct("<4sIBBIH")
DEFAULT_BLOCK_SIZE = 4096
MAX_ORDER = 4

#: Fixed predictor coefficients, FLAC's orders 0..4.
_PREDICTORS = {
    0: [],
    1: [1],
    2: [2, -1],
    3: [3, -3, 1],
    4: [4, -6, 4, -1],
}


class VxflacCodec(Codec):
    """FLAC-class lossless audio codec; decoders output WAV."""

    info = CodecInfo(
        name="vxflac",
        description="Fixed-predictor + Rice lossless audio codec (FLAC class)",
        availability="repro.codecs.vxflac",
        output_format="WAV audio",
        category="audio",
        lossy=False,
    )

    def __init__(self, *, block_size: int = DEFAULT_BLOCK_SIZE):
        if not 256 <= block_size <= 65535:
            raise ValueError("block size must be between 256 and 65535 frames")
        self._block_size = block_size

    @property
    def magic(self) -> bytes:
        return MAGIC

    def can_encode(self, data: bytes) -> bool:
        return is_wav(data)

    # -- encoding ----------------------------------------------------------------------

    def encode(self, data: bytes, **options) -> bytes:
        block_size = int(options.get("block_size", self._block_size))
        audio = read_wav(data)
        return self.encode_audio(audio, block_size=block_size)

    def encode_audio(self, audio: WavAudio, *, block_size: int | None = None) -> bytes:
        block_size = block_size or self._block_size
        samples = np.asarray(audio.samples, dtype=np.int64)
        if samples.ndim == 1:
            samples = samples[:, np.newaxis]
        num_frames, channels = samples.shape
        header = _HEADER.pack(
            MAGIC, audio.sample_rate, channels, 16, num_frames, block_size
        )
        pieces = [header]
        history = np.zeros((MAX_ORDER, channels), dtype=np.int64)
        for start in range(0, num_frames, block_size):
            block = samples[start : start + block_size]
            encoded, history = self._encode_block(block, history)
            pieces.append(encoded)
        return b"".join(pieces)

    def _encode_block(self, block: np.ndarray, history: np.ndarray) -> tuple[bytes, np.ndarray]:
        frames, channels = block.shape
        writer = BitWriter()
        new_history = np.zeros_like(history)
        for channel in range(channels):
            samples = block[:, channel]
            past = history[:, channel]
            best_order, best_residuals = self._choose_predictor(samples, past)
            parameter = best_rice_parameter(best_residuals)
            writer.align_to_byte()
            header = bytes([best_order, parameter])
            for byte in header:
                writer.write_bits(byte, 8)
            encode_residuals(writer, best_residuals, parameter)
            extended = np.concatenate([past[::-1], samples])
            new_history[:, channel] = extended[-MAX_ORDER:][::-1]
        writer.align_to_byte()
        return writer.getvalue(), new_history

    @staticmethod
    def _choose_predictor(samples: np.ndarray, past: np.ndarray) -> tuple[int, list[int]]:
        """Pick the fixed predictor order with the smallest absolute residual sum.

        ``past`` holds the previous samples, most recent first.
        """
        best_order = 0
        best_residuals: list[int] | None = None
        best_cost = None
        extended = np.concatenate([past[::-1], samples])  # oldest ... newest
        offset = len(past)
        for order, coefficients in _PREDICTORS.items():
            predictions = np.zeros(len(samples), dtype=np.int64)
            for tap, coefficient in enumerate(coefficients, start=1):
                predictions += coefficient * extended[offset - tap : offset - tap + len(samples)]
            residuals = (samples - predictions).tolist()
            cost = sum(abs(value) for value in residuals)
            if best_cost is None or cost < best_cost:
                best_order, best_residuals, best_cost = order, residuals, cost
        return best_order, best_residuals

    # -- native decoding -------------------------------------------------------------------

    def decode(self, data: bytes) -> bytes:
        if len(data) < _HEADER.size or data[:4] != MAGIC:
            raise CodecError("not a vxflac stream")
        _, sample_rate, channels, bits, num_frames, block_size = _HEADER.unpack_from(data, 0)
        if bits != 16 or channels < 1 or channels > 8 or block_size < 1:
            raise CodecError("vxflac header is malformed")
        reader = BitReader(data, start=_HEADER.size)
        samples = np.zeros((num_frames, channels), dtype=np.int64)
        history = np.zeros((MAX_ORDER, channels), dtype=np.int64)
        position = 0
        while position < num_frames:
            frames = min(block_size, num_frames - position)
            for channel in range(channels):
                reader.align_to_byte()
                order = reader.read_bits(8)
                parameter = reader.read_bits(8)
                if order > MAX_ORDER:
                    raise CodecError("vxflac predictor order out of range")
                residuals = decode_residuals(reader, frames, parameter)
                decoded = _reconstruct(residuals, order, history[:, channel])
                samples[position : position + frames, channel] = decoded
                combined = np.concatenate([history[:, channel][::-1], decoded])
                history[:, channel] = combined[-MAX_ORDER:][::-1]
            reader.align_to_byte()
            position += frames
        clipped = np.clip(samples, -32768, 32767).astype(np.int16)
        return write_wav(WavAudio(sample_rate=sample_rate, samples=clipped))

    # -- guest decoder -------------------------------------------------------------------------

    def guest_units(self):
        from repro.codecs.guest import vxflac_guest_units

        return vxflac_guest_units()


def _reconstruct(residuals: list[int], order: int, past: np.ndarray) -> np.ndarray:
    """Rebuild samples from residuals given the predictor ``order`` and history."""
    coefficients = _PREDICTORS[order]
    history = list(past)          # most recent first
    output = np.zeros(len(residuals), dtype=np.int64)
    for index, residual in enumerate(residuals):
        prediction = 0
        for tap, coefficient in enumerate(coefficients):
            prediction += coefficient * history[tap]
        value = residual + prediction
        output[index] = value
        history = [value] + history[:MAX_ORDER - 1]
    return output
