"""Codec plug-ins: native encoders plus archived VXA guest decoders."""

from repro.codecs.base import Codec, CodecInfo
from repro.codecs.registry import CodecRegistry, default_registry
from repro.codecs.vxbwt import VxbwtCodec
from repro.codecs.vxflac import VxflacCodec
from repro.codecs.vximg import VximgCodec
from repro.codecs.vxjp2 import Vxjp2Codec
from repro.codecs.vxsnd import VxsndCodec
from repro.codecs.vxz import VxzCodec

__all__ = [
    "Codec",
    "CodecInfo",
    "CodecRegistry",
    "default_registry",
    "VxbwtCodec",
    "VxflacCodec",
    "VximgCodec",
    "Vxjp2Codec",
    "VxsndCodec",
    "VxzCodec",
]
