"""Rice (Golomb power-of-two) coding of prediction residuals.

Used by the FLAC-class lossless audio codec: residuals from the fixed linear
predictors are mapped to unsigned integers with the zigzag mapping and coded
as ``quotient`` unary + ``k`` remainder bits, exactly as FLAC does.
"""

from __future__ import annotations

from repro.codecs.bitio import BitReader, BitWriter, zigzag_decode, zigzag_encode
from repro.errors import CodecError

#: Largest Rice parameter accepted (FLAC uses 0..14 for 16-bit audio).
MAX_RICE_PARAMETER = 30

#: Safety cap on unary run length so corrupt data cannot loop forever.
_MAX_QUOTIENT = 1 << 20


def best_rice_parameter(residuals: list[int]) -> int:
    """Pick the Rice parameter minimising the coded size of ``residuals``."""
    if not residuals:
        return 0
    total = sum(zigzag_encode(value) for value in residuals)
    mean = total / len(residuals)
    parameter = 0
    while (1 << (parameter + 1)) < mean + 1 and parameter < MAX_RICE_PARAMETER:
        parameter += 1
    # Refine around the estimate by brute force (cheap, +-2 candidates).
    best = None
    best_bits = None
    for candidate in range(max(0, parameter - 2), min(MAX_RICE_PARAMETER, parameter + 3)):
        bits = rice_cost(residuals, candidate)
        if best_bits is None or bits < best_bits:
            best, best_bits = candidate, bits
    return best


def rice_cost(residuals: list[int], parameter: int) -> int:
    """Exact bit cost of coding ``residuals`` with ``parameter``."""
    cost = 0
    for value in residuals:
        mapped = zigzag_encode(value)
        cost += (mapped >> parameter) + 1 + parameter
    return cost


def encode_residuals(writer: BitWriter, residuals: list[int], parameter: int) -> None:
    """Rice-encode signed ``residuals`` with the given parameter."""
    if not 0 <= parameter <= MAX_RICE_PARAMETER:
        raise CodecError(f"rice parameter out of range: {parameter}")
    for value in residuals:
        mapped = zigzag_encode(value)
        quotient = mapped >> parameter
        if quotient > _MAX_QUOTIENT:
            raise CodecError("residual too large for Rice coding")
        for _ in range(quotient):
            writer.write_bit(1)
        writer.write_bit(0)
        writer.write_bits(mapped & ((1 << parameter) - 1), parameter)


def decode_residuals(reader: BitReader, count: int, parameter: int) -> list[int]:
    """Decode ``count`` signed residuals."""
    if not 0 <= parameter <= MAX_RICE_PARAMETER:
        raise CodecError(f"rice parameter out of range: {parameter}")
    residuals = []
    for _ in range(count):
        quotient = 0
        while reader.read_bit():
            quotient += 1
            if quotient > _MAX_QUOTIENT:
                raise CodecError("corrupt Rice stream (runaway unary code)")
        remainder = reader.read_bits(parameter)
        residuals.append(zigzag_decode((quotient << parameter) | remainder))
    return residuals
