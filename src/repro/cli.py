"""Command-line interface: the ``vxzip`` / ``vxunzip`` tools.

The paper's prototype is a pair of command-line utilities that extend
ZIP/UnZIP.  This module provides the equivalent front end over the library:

* ``vxzip create ARCHIVE FILES...`` -- build an archive, auto-selecting codecs
  and embedding decoders (``--lossy`` permits lossy media codecs),
* ``vxzip list ARCHIVE`` -- list members with their codecs and decoders,
* ``vxzip extract ARCHIVE [-o DIR]`` -- extract members, optionally forcing
  the archived VXA decoders (``--vxa``) or decoding pre-compressed members
  all the way to their uncompressed form (``--force-decode``),
* ``vxzip check ARCHIVE`` -- the integrity check that always runs the
  archived decoders.

Usable as ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.core.archive_reader import ArchiveReader, MODE_AUTO, MODE_VXA
from repro.core.archive_writer import ArchiveWriter
from repro.core.integrity import format_report
from repro.errors import VxaError


def _cmd_create(args) -> int:
    writer = ArchiveWriter(allow_lossy=args.lossy)
    root = pathlib.Path(args.root) if args.root else None
    for file_name in args.files:
        path = pathlib.Path(file_name)
        data = path.read_bytes()
        member = str(path.relative_to(root)) if root else path.name
        info = writer.add_file(member, data, store_raw=args.store)
        print(f"  adding {member}  ({info.original_size} -> {info.stored_size} bytes, "
              f"codec={info.codec or 'none'})")
    archive = writer.finish()
    pathlib.Path(args.archive).write_bytes(archive)
    manifest = writer.manifest
    print(f"wrote {args.archive}: {len(archive)} bytes, "
          f"{len(manifest.files)} member(s), {len(manifest.decoders)} embedded decoder(s), "
          f"decoder overhead {manifest.decoder_overhead_fraction * 100:.1f}%")
    return 0


def _cmd_list(args) -> int:
    reader = ArchiveReader(pathlib.Path(args.archive).read_bytes())
    print(f"{'member':40s} {'stored':>10s} {'original':>10s} {'codec':>8s}  decoder")
    for entry in reader.entries():
        extension = reader.extension_for(entry.name)
        codec = extension.codec_name if extension else "-"
        decoder = (f"pseudo-file @0x{extension.decoder_offset:x}"
                   if extension else "(none)")
        flags = " [pre-compressed]" if extension and extension.precompressed else ""
        print(f"{entry.name:40s} {entry.compressed_size:10d} {entry.uncompressed_size:10d} "
              f"{codec:>8s}  {decoder}{flags}")
    return 0


def _cmd_extract(args) -> int:
    reader = ArchiveReader(pathlib.Path(args.archive).read_bytes())
    output_dir = pathlib.Path(args.output)
    mode = MODE_VXA if args.vxa else MODE_AUTO
    names = args.members or reader.names()
    for name in names:
        result = reader.extract(name, mode=mode, force_decode=args.force_decode)
        target = output_dir / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(result.data)
        how = "archived VXA decoder" if result.used_vxa_decoder else (
            "native decoder" if result.decoded else "stored form (still compressed)")
        print(f"  {name}: {len(result.data)} bytes via {how}")
    return 0


def _cmd_check(args) -> int:
    reader = ArchiveReader(pathlib.Path(args.archive).read_bytes())
    report = reader.check_archive()
    print(format_report(report))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vxzip",
        description="VXA-enhanced ZIP archiver (vxZIP/vxUnZIP reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    create = commands.add_parser("create", help="create an archive from files")
    create.add_argument("archive")
    create.add_argument("files", nargs="+")
    create.add_argument("--lossy", action="store_true",
                        help="permit lossy codecs for media files")
    create.add_argument("--store", action="store_true",
                        help="store files raw with no compression or decoder")
    create.add_argument("--root", help="directory member names are relative to")
    create.set_defaults(handler=_cmd_create)

    listing = commands.add_parser("list", help="list archive members and decoders")
    listing.add_argument("archive")
    listing.set_defaults(handler=_cmd_list)

    extract = commands.add_parser("extract", help="extract members")
    extract.add_argument("archive")
    extract.add_argument("members", nargs="*", help="members to extract (default: all)")
    extract.add_argument("-o", "--output", default=".", help="output directory")
    extract.add_argument("--vxa", action="store_true",
                         help="always use the archived VXA decoders")
    extract.add_argument("--force-decode", action="store_true",
                         help="decode pre-compressed members to their uncompressed form")
    extract.set_defaults(handler=_cmd_extract)

    check = commands.add_parser("check", help="verify the archive with its own decoders")
    check.add_argument("archive")
    check.set_defaults(handler=_cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (VxaError, OSError) as error:
        print(f"vxzip: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
