"""Command-line interface: the ``vxzip`` / ``vxunzip`` tools.

The paper's prototype is a pair of command-line utilities that extend
ZIP/UnZIP.  This module provides the equivalent front end over the
:mod:`repro.api` facade:

* ``vxzip create ARCHIVE FILES...`` -- build an archive, auto-selecting codecs
  and embedding decoders (``--lossy`` permits lossy media codecs),
* ``vxzip list ARCHIVE`` -- list members with their codecs and decoders,
* ``vxzip extract ARCHIVE [-o DIR]`` -- extract members (streaming, with
  zip-slip protection), optionally forcing the archived VXA decoders
  (``--vxa``) or decoding pre-compressed members all the way to their
  uncompressed form (``--force-decode``),
* ``vxzip check ARCHIVE`` -- the integrity check that always runs the
  archived decoders (``--reuse`` picks the section 2.4 VM-reuse policy).

``vxunzip`` exposes the reading half (list/extract/check) under the name
the paper uses for the extraction tool.  Usable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import repro.api as vxa
from repro.core.integrity import format_report
from repro.core.policy import VmReusePolicy
from repro.errors import ArchiveDamagedError, VxaError


def _read_options(args) -> vxa.ReadOptions:
    mode = vxa.MODE_VXA if getattr(args, "vxa", False) else vxa.MODE_AUTO
    reuse = VmReusePolicy(getattr(args, "reuse", VmReusePolicy.ALWAYS_FRESH.value))
    on_error = getattr(args, "on_error", None) or vxa.ON_ERROR_ABORT
    if getattr(args, "keep_going", False) and on_error == vxa.ON_ERROR_ABORT:
        # --keep-going is the ergonomic alias; --on-error picks the flavour.
        on_error = vxa.ON_ERROR_QUARANTINE
    return vxa.ReadOptions(
        mode=mode,
        force_decode=getattr(args, "force_decode", False),
        reuse=reuse,
        jobs=max(1, getattr(args, "jobs", 1) or 1),
        verify_images=getattr(args, "verify_images", "off"),
        analysis_elision=not getattr(args, "no_guard_elision", False),
        on_error=on_error,
        retries=getattr(args, "retries", 1),
        member_deadline=getattr(args, "member_deadline", None),
        on_damage=(vxa.ON_DAMAGE_SALVAGE if getattr(args, "salvage", False)
                   else vxa.ON_DAMAGE_REJECT),
    )


def _cmd_create(args) -> int:
    root = pathlib.Path(args.root) if args.root else None
    with vxa.create(args.archive, vxa.WriteOptions(allow_lossy=args.lossy)) as builder:
        for file_name in args.files:
            path = pathlib.Path(file_name)
            member = str(path.relative_to(root)) if root else path.name
            info = builder.add_path(path, member, store_raw=args.store)
            print(f"  adding {member}  ({info.original_size} -> {info.stored_size} bytes, "
                  f"codec={info.codec or 'none'})")
        manifest = builder.finish()
    print(f"wrote {args.archive}: {manifest.archive_size} bytes, "
          f"{len(manifest.files)} member(s), {len(manifest.decoders)} embedded decoder(s), "
          f"decoder overhead {manifest.decoder_overhead_fraction * 100:.1f}%")
    return 0


def _cmd_list(args) -> int:
    with vxa.open(args.archive) as archive:
        print(f"{'member':40s} {'stored':>10s} {'original':>10s} {'codec':>8s}  decoder")
        for entry in archive.entries():
            extension = archive.extension_for(entry.name)
            codec = extension.codec_name if extension else "-"
            decoder = (f"pseudo-file @0x{extension.decoder_offset:x}"
                       if extension else "(none)")
            flags = " [pre-compressed]" if extension and extension.precompressed else ""
            print(f"{entry.name:40s} {entry.compressed_size:10d} "
                  f"{entry.uncompressed_size:10d} {codec:>8s}  {decoder}{flags}")
    return 0


def _cmd_extract(args) -> int:
    with vxa.open(args.archive, _read_options(args)) as archive:
        report = archive.extract_into(
            pathlib.Path(args.output),
            names=args.members or None,
        )
        for record in report:
            how = "archived VXA decoder" if record.used_vxa_decoder else (
                "native decoder" if record.decoded else "stored form (still compressed)")
            print(f"  {record.name}: {record.size} bytes via {how}")
        for failure in report.failures:
            status = "quarantined" if failure.quarantined else "skipped"
            retried = (f", {failure.attempts} attempt(s)"
                       if failure.attempts > 1 else "")
            print(f"  {failure.name}: {status} -- {failure.error_type}: "
                  f"{failure.message}{retried}", file=sys.stderr)
        if report.failures:
            print(f"{len(report)} member(s) extracted, "
                  f"{len(report.failures)} failed "
                  f"({len(report.quarantined)} quarantined)", file=sys.stderr)
        if getattr(args, "stats", False):
            # With --jobs > 1 these counters are the merged totals of every
            # worker's DecoderSession, so the line reads the same either way.
            stats = archive.session.stats
            print(
                f"code cache: {stats.fragments_translated} fragment(s) translated, "
                f"{stats.chained_branches} chained branch(es), "
                f"{stats.cache_hits} cache hit(s), "
                f"{stats.retranslations} retranslation(s), "
                f"{stats.evictions} eviction(s)"
            )
            print(
                f"static analysis: {stats.images_verified} image(s) analysed, "
                f"{stats.guards_elided} bounds guard(s) elided"
            )
            print(
                f"durability: {stats.members_salvaged} member(s) salvaged, "
                f"{stats.directory_reconstructed} directory rebuild(s), "
                f"{stats.commit_record_verified} commit record(s) verified"
            )
    return 1 if report.failures else 0


def _cmd_analyze(args) -> int:
    from repro.analysis import verify_image

    failed = 0
    with vxa.open(args.archive) as archive:
        decoders: dict[int, tuple[str, list[str]]] = {}
        for entry in archive.entries():
            extension = archive.extension_for(entry.name)
            if extension is None:
                continue
            codec, members = decoders.setdefault(
                extension.decoder_offset, (extension.codec_name, []))
            members.append(entry.name)
        if not decoders:
            print("no archived decoders to analyse")
            return 0
        for offset, (codec, members) in sorted(decoders.items()):
            image = archive.decoder_image_for(members[0])
            report = verify_image(image)
            counts = report.counts()
            status = "SAFE" if report.ok else "UNSAFE"
            print(f"decoder {codec} @0x{offset:x} "
                  f"({len(members)} member(s)): {status}")
            print(f"  sites: {counts['proved']} proved, "
                  f"{counts['guard']} guarded, {counts['unsafe']} unsafe; "
                  f"{len(report.proved_reads)} read / "
                  f"{len(report.proved_writes)} write guard(s) elidable")
            stack = (f"stack bounded at {report.total_down} byte(s)"
                     if report.stack_bounded
                     else "stack depth not statically bounded")
            print(f"  {stack}; proofs valid for sandboxes >= "
                  f"{report.min_size} bytes")
            for site in report.unsafe_sites[:8]:
                detail = f" ({site.detail})" if site.detail else ""
                print(f"  unsafe @0x{site.pc:x}: {site.kind}{detail}")
            if not report.ok:
                failed += 1
    return 1 if failed else 0


def _cmd_check(args) -> int:
    if getattr(args, "deep", False):
        # Media-level verdict: operates on the raw bytes (no decoder runs),
        # so it works even on archives too damaged to open normally.
        # Exit codes: 0 clean / 1 salvageable / 2 unrecoverable.
        from repro.core.integrity import format_assessment
        from repro.repair import deep_check

        assessment = deep_check(args.archive)
        print(format_assessment(assessment))
        return assessment.exit_code()
    with vxa.open(args.archive, _read_options(args)) as archive:
        report = archive.check()
        print(format_report(report))
    return 0 if report.ok else 1


def _cmd_repair(args) -> int:
    """Rebuild a clean archive from a damaged one's salvageable members."""
    import json

    from repro.repair import repair_archive

    try:
        result = repair_archive(args.archive, args.output)
    except ArchiveDamagedError as error:
        print(f"unrecoverable: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(f"classification  : {result.classification}")
        for region in result.regions:
            affected = (f" (affects {', '.join(region.members)})"
                        if region.members else "")
            print(f"  damaged bytes {region.start}..{region.end}: "
                  f"{region.description}{affected}")
        for action in result.actions:
            reason = f" -- {action.reason}" if action.reason else ""
            print(f"  {action.name}: {action.action}{reason}")
        if result.rebuilt:
            print(f"rebuilt {result.output_path}: "
                  f"{len(result.copied)} member(s) salvaged, "
                  f"{len(result.dropped)} dropped")
        elif args.output is None:
            print("dry run (no --output): nothing written")
    return result.exit_code


def _add_containment_flags(parser) -> None:
    """Fault-containment knobs shared by ``extract`` and ``check``."""
    parser.add_argument("-k", "--keep-going", action="store_true",
                        help="do not abort on a failing member: quarantine "
                             "it and extract everything else")
    parser.add_argument("--on-error", default=None,
                        choices=[vxa.ON_ERROR_ABORT, vxa.ON_ERROR_SKIP,
                                 vxa.ON_ERROR_QUARANTINE],
                        help="per-member failure policy (overrides "
                             "--keep-going's default of 'quarantine')")
    parser.add_argument("--retries", type=int, default=1,
                        help="times a member may kill its worker before it "
                             "is quarantined (default: 1)")
    parser.add_argument("--member-deadline", type=float, default=None,
                        help="wall-clock seconds one member's decoder may "
                             "run before it is aborted (default: no limit)")
    parser.add_argument("--salvage", action="store_true",
                        help="tolerate media damage: reconstruct a lost "
                             "directory, extract healthy members and report "
                             "damaged ones instead of aborting")


def _add_reading_commands(commands) -> None:
    listing = commands.add_parser("list", help="list archive members and decoders")
    listing.add_argument("archive")
    listing.set_defaults(handler=_cmd_list)

    extract = commands.add_parser("extract", help="extract members")
    extract.add_argument("archive")
    extract.add_argument("members", nargs="*", help="members to extract (default: all)")
    extract.add_argument("-o", "--output", default=".", help="output directory")
    extract.add_argument("--vxa", action="store_true",
                         help="always use the archived VXA decoders")
    extract.add_argument("--force-decode", action="store_true",
                         help="decode pre-compressed members to their uncompressed form")
    extract.add_argument("--stats", action="store_true",
                         help="print translation code-cache counters after extraction")
    extract.add_argument("--reuse", default=VmReusePolicy.ALWAYS_FRESH.value,
                         choices=[policy.value for policy in VmReusePolicy],
                         help="VM reuse policy across files sharing a decoder")
    extract.add_argument("-j", "--jobs", type=int, default=1,
                         help="extract with N parallel workers, sharding "
                              "members by decoder image (default: 1, serial)")
    extract.add_argument("--verify-images", default="off",
                         choices=["off", "warn", "reject"],
                         help="statically verify archived decoder images "
                              "before running them")
    extract.add_argument("--no-guard-elision", action="store_true",
                         help="keep every dynamic bounds guard even at "
                              "statically proved sites (ablation)")
    _add_containment_flags(extract)
    extract.set_defaults(handler=_cmd_extract)

    check = commands.add_parser("check", help="verify the archive with its own decoders")
    check.add_argument("archive")
    check.add_argument("--deep", action="store_true",
                       help="media-level verdict instead of decoder runs: "
                            "classify the bytes clean (exit 0) / salvageable "
                            "(exit 1) / unrecoverable (exit 2)")
    check.add_argument("--reuse", default=VmReusePolicy.ALWAYS_FRESH.value,
                       choices=[policy.value for policy in VmReusePolicy],
                       help="VM reuse policy across files sharing a decoder")
    check.add_argument("-j", "--jobs", type=int, default=1,
                       help="check with N parallel workers, sharding "
                            "members by decoder image (default: 1, serial)")
    check.add_argument("--verify-images", default="off",
                       choices=["off", "warn", "reject"],
                       help="statically verify archived decoder images "
                            "before running them")
    check.add_argument("--no-guard-elision", action="store_true",
                       help="keep every dynamic bounds guard even at "
                            "statically proved sites (ablation)")
    _add_containment_flags(check)
    check.set_defaults(handler=_cmd_check)

    analyze = commands.add_parser(
        "analyze",
        help="statically verify the archived decoder images without running them")
    analyze.add_argument("archive")
    analyze.set_defaults(handler=_cmd_analyze)

    repair = commands.add_parser(
        "repair",
        help="rebuild a clean archive from a damaged one's salvageable members")
    repair.add_argument("archive")
    repair.add_argument("-o", "--output", default=None,
                        help="path for the repaired archive (omit for a "
                             "dry-run damage report)")
    repair.add_argument("--json", action="store_true",
                        help="emit the structured damage report as JSON")
    repair.set_defaults(handler=_cmd_repair)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vxzip",
        description="VXA-enhanced ZIP archiver (vxZIP/vxUnZIP reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    create = commands.add_parser("create", help="create an archive from files")
    create.add_argument("archive")
    create.add_argument("files", nargs="+")
    create.add_argument("--lossy", action="store_true",
                        help="permit lossy codecs for media files")
    create.add_argument("--store", action="store_true",
                        help="store files raw with no compression or decoder")
    create.add_argument("--root", help="directory member names are relative to")
    create.set_defaults(handler=_cmd_create)

    _add_reading_commands(commands)
    return parser


def build_unzip_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vxunzip",
        description="VXA-aware ZIP extractor (vxUnZIP reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    _add_reading_commands(commands)
    return parser


def _run(parser: argparse.ArgumentParser, argv: list[str] | None) -> int:
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (VxaError, OSError) as error:
        print(f"{parser.prog}: error: {error}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    return _run(build_parser(), argv)


def unzip_main(argv: list[str] | None = None) -> int:
    return _run(build_unzip_parser(), argv)


if __name__ == "__main__":
    raise SystemExit(main())
