"""vxZIP: the VXA-enhanced archive writer (paper sections 2.2 and 3).

.. deprecated::
    :class:`ArchiveWriter` is a thin compatibility shim over the streaming
    :class:`repro.api.ArchiveBuilder` facade; new code should use
    ``repro.api.create(...)`` instead, which writes straight to a file or
    sink and consolidates the writer knobs into
    :class:`repro.api.WriteOptions`.

The codec-selection behaviour (redec path for recognised pre-compressed
input, media codecs when loss is permitted, the general-purpose default
otherwise) lives in the builder; this shim only adapts the historical
bytes-out interface on top of it.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.codecs.registry import CodecRegistry
from repro.core.decoder_store import StoredDecoder
from repro.core.policy import SecurityAttributes


@dataclass
class ArchivedFileInfo:
    """What the writer did with one input file (returned for reporting)."""

    name: str
    codec: str | None
    stored_size: int
    original_size: int
    precompressed: bool
    method: int

    @property
    def ratio(self) -> float:
        if self.original_size == 0:
            return 1.0
        return self.stored_size / self.original_size


@dataclass
class ArchiveManifest:
    """Summary of a finished archive."""

    files: list[ArchivedFileInfo] = field(default_factory=list)
    decoders: list[StoredDecoder] = field(default_factory=list)
    archive_size: int = 0

    @property
    def decoder_overhead_bytes(self) -> int:
        return sum(decoder.compressed_size for decoder in self.decoders)

    @property
    def decoder_overhead_fraction(self) -> float:
        if self.archive_size == 0:
            return 0.0
        return self.decoder_overhead_bytes / self.archive_size


class ArchiveWriter:
    """Builds vxZIP archives in memory.

    Deprecated shim over :class:`repro.api.ArchiveBuilder`; see the module
    docstring.
    """

    def __init__(
        self,
        registry: CodecRegistry | None = None,
        *,
        allow_lossy: bool = False,
        attach_decoders: bool = True,
    ):
        import warnings

        warnings.warn(
            "ArchiveWriter is deprecated; use repro.api.create() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.builder import ArchiveBuilder
        from repro.api.options import WriteOptions

        self._buffer = io.BytesIO()
        self._builder = ArchiveBuilder(
            self._buffer,
            WriteOptions(
                registry=registry,
                allow_lossy=allow_lossy,
                attach_decoders=attach_decoders,
            ),
        )

    # -- adding files ------------------------------------------------------------------

    def add_file(
        self,
        name: str,
        data: bytes,
        *,
        codec: str | None = None,
        allow_lossy: bool | None = None,
        attributes: SecurityAttributes | None = None,
        store_raw: bool = False,
        encode_options: dict | None = None,
    ):
        """Archive one file (see :meth:`repro.api.ArchiveBuilder.add`)."""
        return self._builder.add(
            name,
            data,
            codec=codec,
            allow_lossy=allow_lossy,
            attributes=attributes,
            store_raw=store_raw,
            encode_options=encode_options,
        )

    # -- finishing -----------------------------------------------------------------------

    def finish(self, comment: bytes = b"vxZIP archive") -> bytes:
        """Finalise and return the archive bytes."""
        self._builder.finish(comment)
        return self._buffer.getvalue()

    @property
    def manifest(self):
        return self._builder.manifest


def create_archive(
    files: dict[str, bytes],
    *,
    registry: CodecRegistry | None = None,
    allow_lossy: bool = False,
    attach_decoders: bool = True,
):
    """Convenience helper: archive a mapping of name -> contents.

    Returns ``(archive_bytes, manifest)``.  Deprecated alongside
    :class:`ArchiveWriter`; use :func:`repro.api.create`.
    """
    import warnings

    warnings.warn(
        "create_archive is deprecated; use repro.api.create() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.builder import ArchiveBuilder
    from repro.api.options import WriteOptions

    buffer = io.BytesIO()
    builder = ArchiveBuilder(
        buffer,
        WriteOptions(registry=registry, allow_lossy=allow_lossy,
                     attach_decoders=attach_decoders),
    )
    for name, data in files.items():
        builder.add(name, data)
    manifest = builder.finish()
    return buffer.getvalue(), manifest
