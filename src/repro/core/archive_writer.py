"""vxZIP: the VXA-enhanced archive writer (paper sections 2.2 and 3).

For every input file the writer:

1. asks the codec registry whether the file is *already* compressed in a
   recognised format -- if so it is stored untouched with ZIP method 0 and a
   VXA decoder attached (the recogniser-decoder, "redec", path), so old
   tools can still extract the original compressed file;
2. otherwise picks a codec (media-specific when one recognises the content
   and loss is permitted, the general-purpose default otherwise), compresses
   the file natively, stores it with the reserved VXA method tag and attaches
   the codec's decoder;
3. files can also be stored raw (no compression, no decoder) on request.

Each distinct decoder image is embedded once as a hidden pseudo-file and
shared by every member that references it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codecs.base import Codec
from repro.codecs.registry import CodecRegistry, default_registry
from repro.core.decoder_store import DecoderStore, StoredDecoder
from repro.core.extension import VxaExtension
from repro.core.policy import SecurityAttributes
from repro.errors import ArchiveError
from repro.zipformat.crc import crc32
from repro.zipformat.structures import METHOD_STORE, METHOD_VXA
from repro.zipformat.writer import ZipWriter


@dataclass
class ArchivedFileInfo:
    """What the writer did with one input file (returned for reporting)."""

    name: str
    codec: str | None
    stored_size: int
    original_size: int
    precompressed: bool
    method: int

    @property
    def ratio(self) -> float:
        if self.original_size == 0:
            return 1.0
        return self.stored_size / self.original_size


@dataclass
class ArchiveManifest:
    """Summary of a finished archive."""

    files: list[ArchivedFileInfo] = field(default_factory=list)
    decoders: list[StoredDecoder] = field(default_factory=list)
    archive_size: int = 0

    @property
    def decoder_overhead_bytes(self) -> int:
        return sum(decoder.compressed_size for decoder in self.decoders)

    @property
    def decoder_overhead_fraction(self) -> float:
        if self.archive_size == 0:
            return 0.0
        return self.decoder_overhead_bytes / self.archive_size


class ArchiveWriter:
    """Builds vxZIP archives in memory."""

    def __init__(
        self,
        registry: CodecRegistry | None = None,
        *,
        allow_lossy: bool = False,
        attach_decoders: bool = True,
    ):
        self._registry = registry or default_registry()
        self._allow_lossy = allow_lossy
        self._attach_decoders = attach_decoders
        self._zip = ZipWriter()
        self._decoders = DecoderStore(self._zip)
        self._manifest = ArchiveManifest()
        self._finished = False

    # -- adding files ------------------------------------------------------------------

    def add_file(
        self,
        name: str,
        data: bytes,
        *,
        codec: str | None = None,
        allow_lossy: bool | None = None,
        attributes: SecurityAttributes | None = None,
        store_raw: bool = False,
        encode_options: dict | None = None,
    ) -> ArchivedFileInfo:
        """Archive one file.

        Args:
            name: member name inside the archive.
            data: file contents.
            codec: force a specific codec by name (bypasses selection).
            allow_lossy: override the writer-level lossy policy for this file.
            attributes: Unix-style security attributes recorded on the member.
            store_raw: store the file uncompressed with no decoder attached.
            encode_options: extra keyword arguments for the codec's encoder.
        """
        if self._finished:
            raise ArchiveError("archive already finalised")
        if not name:
            raise ArchiveError("archived files need a name")
        lossy_ok = self._allow_lossy if allow_lossy is None else allow_lossy
        attributes = attributes or SecurityAttributes()
        external = (attributes.mode & 0xFFFF) << 16

        if store_raw:
            self._zip.add_member(name, data, method=METHOD_STORE,
                                 external_attributes=external)
            info = ArchivedFileInfo(name, None, len(data), len(data), False, METHOD_STORE)
            self._manifest.files.append(info)
            return info

        recognized = self._registry.recognize_compressed(data)
        if codec is not None:
            chosen = self._registry.get(codec)
            if recognized is not None and recognized.name == chosen.name:
                return self._add_precompressed(name, data, chosen, external)
            return self._add_encoded(name, data, chosen, external, encode_options)
        if recognized is not None:
            return self._add_precompressed(name, data, recognized, external)
        chosen = self._registry.select_for_raw(data, allow_lossy=lossy_ok)
        return self._add_encoded(name, data, chosen, external, encode_options)

    def _attach(self, codec: Codec) -> StoredDecoder | None:
        if not self._attach_decoders:
            return None
        return self._decoders.store(codec.name, codec.guest_decoder_image())

    def _add_precompressed(self, name: str, data: bytes, codec: Codec,
                           external: int) -> ArchivedFileInfo:
        """The redec path: store already-compressed data untouched (method 0)."""
        decoder = self._attach(codec)
        decoded_size, decoded_crc = _decoded_identity(codec, data)
        extra = b""
        if decoder is not None:
            extra = VxaExtension(
                decoder_offset=decoder.offset,
                original_size=decoded_size,
                original_crc32=decoded_crc,
                codec_name=codec.name,
                precompressed=True,
                lossy=codec.info.lossy,
            ).pack()
        self._zip.add_member(name, data, method=METHOD_STORE, extra=extra,
                             external_attributes=external)
        info = ArchivedFileInfo(name, codec.name, len(data), len(data), True, METHOD_STORE)
        self._manifest.files.append(info)
        return info

    def _add_encoded(self, name: str, data: bytes, codec: Codec, external: int,
                     encode_options: dict | None) -> ArchivedFileInfo:
        """Compress with a codec's native encoder and tag with the VXA method."""
        encoded = codec.encode(data, **(encode_options or {}))
        decoder = self._attach(codec)
        # For lossy codecs the "original" the decoder reproduces is the decoded
        # output, not the input bytes; record the decoder's actual product so
        # integrity checks are meaningful (paper section 2.3).
        if codec.info.lossy:
            reference = codec.decode(encoded)
        else:
            reference = data
        extra = b""
        if decoder is not None:
            extra = VxaExtension(
                decoder_offset=decoder.offset,
                original_size=len(reference),
                original_crc32=crc32(reference),
                codec_name=codec.name,
                precompressed=False,
                lossy=codec.info.lossy,
            ).pack()
        self._zip.add_member(
            name,
            encoded,
            method=METHOD_VXA,
            uncompressed_size=len(reference),
            crc=crc32(reference),
            extra=extra,
            external_attributes=external,
        )
        info = ArchivedFileInfo(name, codec.name, len(encoded), len(data), False, METHOD_VXA)
        self._manifest.files.append(info)
        return info

    # -- finishing -----------------------------------------------------------------------

    def finish(self, comment: bytes = b"vxZIP archive") -> bytes:
        """Finalise and return the archive bytes."""
        if self._finished:
            raise ArchiveError("archive already finalised")
        archive = self._zip.finish(comment)
        self._finished = True
        self._manifest.decoders = self._decoders.stored
        self._manifest.archive_size = len(archive)
        return archive

    @property
    def manifest(self) -> ArchiveManifest:
        return self._manifest


def _decoded_identity(codec: Codec, compressed: bytes) -> tuple[int, int]:
    """Size and CRC of what the decoder will produce for pre-compressed input."""
    decoded = codec.decode(compressed)
    return len(decoded), crc32(decoded)


def create_archive(
    files: dict[str, bytes],
    *,
    registry: CodecRegistry | None = None,
    allow_lossy: bool = False,
    attach_decoders: bool = True,
) -> tuple[bytes, ArchiveManifest]:
    """Convenience helper: archive a mapping of name -> contents."""
    writer = ArchiveWriter(registry, allow_lossy=allow_lossy,
                           attach_decoders=attach_decoders)
    for name, data in files.items():
        writer.add_file(name, data)
    archive = writer.finish()
    return archive, writer.manifest
