"""vxUnZIP: the VXA-aware archive reader (paper sections 2.3 and 4).

.. deprecated::
    :class:`ArchiveReader` is a thin compatibility shim over the streaming
    :class:`repro.api.Archive` facade; new code should use
    ``repro.api.open(...)`` instead, which works on file objects, streams
    member contents, and consolidates the knobs scattered here as keyword
    arguments into :class:`repro.api.ReadOptions`.

This module still defines the extraction-mode constants and the
:class:`ExtractedFile` / :class:`IntegrityReport` result types, which the
facade shares.  It must not import :mod:`repro.api` at module level (the
facade imports these definitions), so all delegation happens lazily.
"""

from __future__ import annotations

import io
import warnings
from dataclasses import dataclass, field

from repro.codecs.registry import CodecRegistry
from repro.core.extension import VxaExtension
from repro.core.policy import VmReusePolicy
from repro.vm.limits import ExecutionLimits
from repro.vm.machine import ENGINE_TRANSLATOR
from repro.zipformat.structures import ZipEntry

#: Extraction modes.
MODE_AUTO = "auto"        # native decoder when available, archived decoder otherwise
MODE_NATIVE = "native"    # native decoders only (fails for unknown codecs)
MODE_VXA = "vxa"          # always run the archived decoder in the VM


@dataclass
class ExtractedFile:
    """Result of extracting one member."""

    name: str
    data: bytes
    used_vxa_decoder: bool
    codec_name: str | None
    was_precompressed: bool
    decoded: bool               # False when pre-compressed data was left as-is


@dataclass
class IntegrityReport:
    """Outcome of a whole-archive integrity check.

    ``vm_initialisations`` / ``vm_reuses`` count how often the decoder
    session loaded a pristine decoder image versus kept VM state across
    files (paper section 2.4); they feed the VM-reuse ablation benchmark.
    The code-cache counters summarise the translation engine's work over
    the whole check: fragments translated, fragment-cache hits, chained
    (back-patched) branch transitions and retranslations of already-seen
    entry points.
    """

    #: Session counters carried verbatim (names match ``SessionStats``);
    #: every producer/merger of reports goes through :meth:`counters` /
    #: :meth:`add_counters` so a counter added here propagates everywhere.
    COUNTER_FIELDS = ("vm_initialisations", "vm_reuses",
                      "fragments_translated", "cache_hits",
                      "chained_branches", "retranslations", "evictions",
                      "guards_elided", "images_verified",
                      "members_salvaged", "directory_reconstructed",
                      "commit_record_verified")

    checked: int = 0
    passed: int = 0
    failures: list[str] = field(default_factory=list)
    vm_initialisations: int = 0
    vm_reuses: int = 0
    fragments_translated: int = 0
    cache_hits: int = 0
    chained_branches: int = 0
    retranslations: int = 0
    evictions: int = 0
    guards_elided: int = 0
    images_verified: int = 0
    members_salvaged: int = 0
    directory_reconstructed: int = 0
    commit_record_verified: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures and self.checked == self.passed

    def counters(self) -> dict:
        """The session counters as a plain dict (JSON/worker transport)."""
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def add_counters(self, source) -> None:
        """Accumulate counters from a mapping or counter-bearing object."""
        for name in self.COUNTER_FIELDS:
            if isinstance(source, dict):
                value = source.get(name, 0)
            else:
                value = getattr(source, name, 0)
            setattr(self, name, getattr(self, name) + value)


class ArchiveReader:
    """Reads vxZIP archives from in-memory bytes.

    Deprecated shim over :class:`repro.api.Archive`; see the module
    docstring.
    """

    def __init__(
        self,
        archive,
        *,
        registry: CodecRegistry | None = None,
        engine: str = ENGINE_TRANSLATOR,
        vm_limits: ExecutionLimits | None = None,
    ):
        warnings.warn(
            "ArchiveReader is deprecated; use repro.api.open() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.archive import Archive
        from repro.api.options import ReadOptions

        options = ReadOptions(engine=engine, limits=vm_limits, registry=registry)
        if isinstance(archive, (bytes, bytearray, memoryview)):
            archive = io.BytesIO(bytes(archive))
        self._archive = Archive(archive, options)

    # -- listing -------------------------------------------------------------------------

    def names(self) -> list[str]:
        return self._archive.names()

    def __len__(self) -> int:
        return len(self._archive)

    def entries(self) -> list[ZipEntry]:
        return self._archive.entries()

    def extension_for(self, name: str) -> VxaExtension | None:
        return self._archive.extension_for(name)

    def decoder_image_for(self, name: str) -> bytes | None:
        """The raw decoder ELF attached to a member, if any."""
        return self._archive.decoder_image_for(name)

    # -- extraction -----------------------------------------------------------------------

    def extract(
        self,
        name: str,
        *,
        mode: str = MODE_AUTO,
        force_decode: bool = False,
        fresh_vm: bool = True,
    ) -> ExtractedFile:
        """Extract one member (see :meth:`repro.api.Archive.extract`)."""
        return self._archive.extract(
            name, mode=mode, force_decode=force_decode, _fresh_vm=fresh_vm
        )

    def extract_all(self, *, mode: str = MODE_AUTO, force_decode: bool = False):
        """Extract every listed member; returns ``{name: ExtractedFile}``."""
        return self._archive.extract_all(mode=mode, force_decode=force_decode)

    # -- integrity ------------------------------------------------------------------------

    def check_archive(
        self, *, reuse_policy: VmReusePolicy = VmReusePolicy.ALWAYS_FRESH
    ) -> IntegrityReport:
        """Verify every member that carries a VXA decoder."""
        return self._archive.check(reuse=reuse_policy)
