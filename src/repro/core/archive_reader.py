"""vxUnZIP: the VXA-aware archive reader (paper sections 2.3 and 4).

The reader needs *no* codec knowledge: every member carrying a VXA extension
header can be decoded by loading the referenced decoder pseudo-file into the
virtual machine and streaming the member through it.  When a codec registry
is available the reader may use a faster native decoder instead, but the
paper's recommended-safe behaviour -- always exercising the archived decoder,
especially for integrity checks -- is the default for ``check_archive``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codecs.registry import CodecRegistry, default_registry
from repro.core.extension import VxaExtension, parse_extension
from repro.core.policy import VmReusePolicy
from repro.errors import ArchiveError, DecoderMissingError, GuestFault, IntegrityError
from repro.vm.limits import ExecutionLimits
from repro.vm.machine import ENGINE_TRANSLATOR, VirtualMachine
from repro.zipformat.crc import crc32
from repro.zipformat.reader import ZipReader
from repro.zipformat.structures import METHOD_STORE, METHOD_VXA, ZipEntry

#: Extraction modes.
MODE_AUTO = "auto"        # native decoder when available, archived decoder otherwise
MODE_NATIVE = "native"    # native decoders only (fails for unknown codecs)
MODE_VXA = "vxa"          # always run the archived decoder in the VM


@dataclass
class ExtractedFile:
    """Result of extracting one member."""

    name: str
    data: bytes
    used_vxa_decoder: bool
    codec_name: str | None
    was_precompressed: bool
    decoded: bool               # False when pre-compressed data was left as-is


@dataclass
class IntegrityReport:
    """Outcome of a whole-archive integrity check."""

    checked: int = 0
    passed: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and self.checked == self.passed


class ArchiveReader:
    """Reads vxZIP archives."""

    def __init__(
        self,
        archive: bytes,
        *,
        registry: CodecRegistry | None = None,
        engine: str = ENGINE_TRANSLATOR,
        vm_limits: ExecutionLimits | None = None,
    ):
        self._zip = ZipReader(archive)
        self._registry = registry if registry is not None else default_registry()
        self._engine = engine
        self._vm_limits = vm_limits or ExecutionLimits()
        self._decoder_cache: dict[int, bytes] = {}
        self._vm_cache: dict[int, VirtualMachine] = {}

    # -- listing -------------------------------------------------------------------------

    def names(self) -> list[str]:
        return self._zip.names()

    def __len__(self) -> int:
        return len(self._zip)

    def entries(self) -> list[ZipEntry]:
        return list(self._zip.entries)

    def extension_for(self, name: str) -> VxaExtension | None:
        return parse_extension(self._zip.find(name).extra)

    def decoder_image_for(self, name: str) -> bytes | None:
        """The raw decoder ELF attached to a member, if any."""
        extension = self.extension_for(name)
        if extension is None:
            return None
        return self._load_decoder(extension.decoder_offset)

    # -- extraction -----------------------------------------------------------------------

    def extract(
        self,
        name: str,
        *,
        mode: str = MODE_AUTO,
        force_decode: bool = False,
        fresh_vm: bool = True,
    ) -> ExtractedFile:
        """Extract one member.

        Pre-compressed members (the redec path) are returned in their stored,
        still-compressed form unless ``force_decode`` is set, mirroring
        vxUnZIP's default of leaving popular formats compressed on extraction.
        """
        if mode not in (MODE_AUTO, MODE_NATIVE, MODE_VXA):
            raise ArchiveError(f"unknown extraction mode {mode!r}")
        entry = self._zip.find(name)
        extension = parse_extension(entry.extra)

        if extension is None:
            # Plain ZIP member: no VXA decoder involved.
            data = self._zip.read_member(entry)
            return ExtractedFile(name, data, False, None, False, decoded=True)

        if entry.method == METHOD_STORE and extension.precompressed and not force_decode:
            data = self._zip.read_member(entry)
            return ExtractedFile(name, data, False, extension.codec_name,
                                 True, decoded=False)

        encoded = self._encoded_bytes(entry, extension)
        data, used_vxa = self._decode(encoded, extension, mode, fresh_vm)
        if len(data) != extension.original_size or crc32(data) != extension.original_crc32:
            raise IntegrityError(
                f"member {name!r} decoded to unexpected contents "
                f"({len(data)} bytes vs {extension.original_size} expected)"
            )
        return ExtractedFile(name, data, used_vxa, extension.codec_name,
                             extension.precompressed, decoded=True)

    def extract_all(self, *, mode: str = MODE_AUTO, force_decode: bool = False):
        """Extract every listed member; returns ``{name: ExtractedFile}``."""
        return {
            name: self.extract(name, mode=mode, force_decode=force_decode)
            for name in self.names()
        }

    # -- integrity ------------------------------------------------------------------------

    def check_archive(self, *, reuse_policy: VmReusePolicy = VmReusePolicy.ALWAYS_FRESH) -> IntegrityReport:
        """Verify every member that carries a VXA decoder.

        Integrity checks "always run the archived VXA decoder" (paper section
        2.3) -- native decoders are never used here, so a bug that only
        affects the archived decoder cannot hide behind the fast path.
        """
        report = IntegrityReport()
        for entry in self._zip.entries:
            extension = parse_extension(entry.extra)
            if extension is None:
                continue
            report.checked += 1
            try:
                encoded = self._encoded_bytes(entry, extension)
                fresh = reuse_policy is VmReusePolicy.ALWAYS_FRESH
                data, _ = self._decode(encoded, extension, MODE_VXA, fresh)
            except (GuestFault, ArchiveError) as error:
                report.failures.append(f"{entry.name}: {error}")
                continue
            if len(data) != extension.original_size or crc32(data) != extension.original_crc32:
                report.failures.append(f"{entry.name}: decoded output does not match its checksum")
                continue
            report.passed += 1
        return report

    # -- internals -------------------------------------------------------------------------

    def _encoded_bytes(self, entry: ZipEntry, extension: VxaExtension) -> bytes:
        if entry.method == METHOD_VXA:
            return self._zip.read_stored_bytes(entry)
        # Pre-compressed member stored with method 0: the member data *is* the
        # encoded stream the decoder understands.
        return self._zip.read_member(entry)

    def _load_decoder(self, offset: int) -> bytes:
        image = self._decoder_cache.get(offset)
        if image is None:
            _, image = self._zip.read_member_at(offset)
            self._decoder_cache[offset] = image
        return image

    def _decode(self, encoded: bytes, extension: VxaExtension, mode: str,
                fresh_vm: bool) -> tuple[bytes, bool]:
        codec = None
        if extension.codec_name and extension.codec_name in self._registry:
            codec = self._registry.get(extension.codec_name)
        if mode == MODE_NATIVE:
            if codec is None:
                raise DecoderMissingError(
                    f"no native decoder available for codec {extension.codec_name!r}"
                )
            return codec.decode(encoded), False
        if mode == MODE_AUTO and codec is not None:
            return codec.decode(encoded), False
        # MODE_VXA, or AUTO with no native decoder: run the archived decoder.
        vm = self._vm_for(extension.decoder_offset)
        limits = self._vm_limits.scaled_for_input(len(encoded))
        result = vm.decode(encoded, limits=limits, fresh=fresh_vm)
        if result.exit_code != 0:
            raise IntegrityError(
                f"archived decoder exited with status {result.exit_code}: "
                f"{result.stderr.decode('latin-1', 'replace')!r}"
            )
        return result.output, True

    def _vm_for(self, decoder_offset: int) -> VirtualMachine:
        vm = self._vm_cache.get(decoder_offset)
        if vm is None:
            image = self._load_decoder(decoder_offset)
            vm = VirtualMachine(image, engine=self._engine, limits=self._vm_limits)
            self._vm_cache[decoder_offset] = vm
        return vm
