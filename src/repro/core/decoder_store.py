"""Decoder pseudo-file management for the archive writer.

Paper section 3.2: each decoder is stored once as a hidden pseudo-file
(empty filename, absent from the central directory, deflate-compressed);
every archived file that needs it simply points at the same archive offset.
This module handles that de-duplication.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.zipformat.writer import ZipWriter


@dataclass
class StoredDecoder:
    """Bookkeeping for one decoder already written into the archive."""

    codec_name: str
    offset: int
    image_size: int
    compressed_size: int
    digest: str


class DecoderStore:
    """Writes each distinct decoder image into the archive exactly once."""

    def __init__(self, writer: ZipWriter):
        self._writer = writer
        self._by_digest: dict[str, StoredDecoder] = {}

    def store(self, codec_name: str, image: bytes) -> StoredDecoder:
        """Ensure ``image`` is present in the archive; return its record."""
        digest = hashlib.sha256(image).hexdigest()
        existing = self._by_digest.get(digest)
        if existing is not None:
            return existing
        offset = self._writer.current_offset
        entry = self._writer.add_pseudo_file(image, deflate=True)
        stored = StoredDecoder(
            codec_name=codec_name,
            offset=offset,
            image_size=len(image),
            compressed_size=entry.compressed_size,
            digest=digest,
        )
        self._by_digest[digest] = stored
        return stored

    @property
    def stored(self) -> list[StoredDecoder]:
        return list(self._by_digest.values())

    @property
    def total_compressed_size(self) -> int:
        """Bytes of archive space consumed by all stored decoders."""
        return sum(item.compressed_size for item in self._by_digest.values())
