"""Virtual-machine reuse policy and file security attributes.

Paper section 2.4: reusing VM state across files sharing a decoder improves
performance on archives with many small files, but risks leaking data from
one file to another through a buggy or malicious decoder.  The recommended
mitigation is to re-initialise whenever the security attributes of the files
being processed change; the policies below encode the three useful points on
that spectrum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


@dataclass(frozen=True)
class SecurityAttributes:
    """Ownership and permissions of an archived file (Unix-style)."""

    owner: int = 0
    group: int = 0
    mode: int = 0o644

    @property
    def world_readable(self) -> bool:
        return bool(self.mode & 0o004)

    def same_domain(self, other: "SecurityAttributes") -> bool:
        """Files in the same protection domain may safely share VM state."""
        return (
            self.owner == other.owner
            and self.group == other.group
            and self.world_readable == other.world_readable
        )


class VmReusePolicy(enum.Enum):
    """How the archive reader manages decoder VM instances across files."""

    #: Re-initialise the VM with a pristine decoder image for every file
    #: (the paper's safest option; the reader's default).
    ALWAYS_FRESH = "always-fresh"

    #: Reuse the VM for consecutive files that share a decoder *and* have the
    #: same security attributes; re-initialise when attributes change.
    REUSE_SAME_ATTRIBUTES = "reuse-same-attributes"

    #: Reuse the VM for every file sharing a decoder regardless of attributes
    #: (fastest; only appropriate when all archive contents are equally trusted).
    ALWAYS_REUSE = "always-reuse"


def reuse_groups(files, policy: VmReusePolicy):
    """Split ``files`` (ordered ``(name, attributes)`` pairs) into reuse groups.

    Files inside one group may be decoded by a single VM instance without
    re-initialisation under ``policy``; a new group means the reader must
    reset the VM first.
    """
    groups: list[list[str]] = []
    current: list[str] = []
    current_attributes: SecurityAttributes | None = None
    for name, attributes in files:
        if policy is VmReusePolicy.ALWAYS_FRESH:
            groups.append([name])
            continue
        if policy is VmReusePolicy.ALWAYS_REUSE:
            current.append(name)
            continue
        if current_attributes is None or attributes.same_domain(current_attributes):
            current.append(name)
            current_attributes = attributes if current_attributes is None else current_attributes
        else:
            groups.append(current)
            current = [name]
            current_attributes = attributes
    if current:
        groups.append(current)
    return groups
