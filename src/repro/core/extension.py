"""The VXA extension header attached to every archived file.

Paper section 3.1: "vxZIP attaches a new VXA extension header to each file,
pointing to the file's associated VXA decoder".  Because ZIP extension
headers are limited to 64 KB, the decoder itself lives elsewhere in the
archive as a pseudo-file; the extension header carries only the decoder's
archive offset plus a little metadata that lets the reader pick a native
fast path when it recognises the codec.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ArchiveError
from repro.zipformat.structures import ExtraField, pack_extra_fields, unpack_extra_fields

#: Extra-field header ID used for the VXA extension ("Vx" little-endian).
VXA_EXTRA_ID = 0x7856

#: Info-ZIP "new Unix" extra field: carries uid/gid so the reader can
#: reconstruct the full protection domain (owner + group + mode) that the
#: section 2.4 VM-reuse policy compares; bare ZIP external attributes only
#: hold the mode bits.
UNIX_EXTRA_ID = 0x7875

#: Flag bits.
FLAG_PRECOMPRESSED = 0x01       # file was stored already-compressed (redec path)
FLAG_LOSSY = 0x02               # the codec that produced the data is lossy

_FIXED = struct.Struct("<BIIIB")
_VERSION = 1


@dataclass(frozen=True)
class VxaExtension:
    """Decoded contents of one VXA extension header.

    Attributes:
        decoder_offset: archive offset of the decoder pseudo-file's local header.
        original_size: size of the fully-decoded output (what the archived
            decoder produces), used for integrity checking.
        original_crc32: CRC-32 of the fully-decoded output.
        codec_name: name of the codec that produced the data (advisory; lets
            the reader use a native decoder when it has one).
        precompressed: True when the file was stored in its original,
            already-compressed form (ZIP method 0) and the decoder merely
            provides the long-term fallback.
        lossy: True when the producing codec is lossy.
    """

    decoder_offset: int
    original_size: int
    original_crc32: int
    codec_name: str
    precompressed: bool = False
    lossy: bool = False

    def pack(self) -> bytes:
        """Serialise as a ZIP extra-field block."""
        name_bytes = self.codec_name.encode("utf-8")[:255]
        flags = (FLAG_PRECOMPRESSED if self.precompressed else 0) | (
            FLAG_LOSSY if self.lossy else 0
        )
        payload = _FIXED.pack(
            _VERSION,
            self.decoder_offset,
            self.original_size,
            self.original_crc32,
            flags,
        ) + bytes([len(name_bytes)]) + name_bytes
        return pack_extra_fields([ExtraField(VXA_EXTRA_ID, payload)])


def pack_unix_extra(owner: int, group: int) -> bytes:
    """Serialise uid/gid as an Info-ZIP new-Unix extra-field block."""
    payload = struct.pack("<BB", 1, 4) + struct.pack("<I", owner) \
        + struct.pack("<B", 4) + struct.pack("<I", group)
    return pack_extra_fields([ExtraField(UNIX_EXTRA_ID, payload)])


def parse_unix_extra(extra: bytes) -> tuple[int, int] | None:
    """Recover ``(owner, group)`` from a member's extra block, if recorded."""
    for field in unpack_extra_fields(extra):
        if field.header_id != UNIX_EXTRA_ID:
            continue
        payload = field.payload
        if len(payload) < 2 or payload[0] != 1:
            return None
        uid_size = payload[1]
        gid_start = 2 + uid_size
        if len(payload) < gid_start + 1:
            return None
        gid_size = payload[gid_start]
        gid_end = gid_start + 1 + gid_size
        if len(payload) < gid_end:
            return None
        owner = int.from_bytes(payload[2:gid_start], "little")
        group = int.from_bytes(payload[gid_start + 1:gid_end], "little")
        return owner, group
    return None


def parse_extension(extra: bytes) -> VxaExtension | None:
    """Extract the VXA extension from a member's extra-field block, if present."""
    for field in unpack_extra_fields(extra):
        if field.header_id != VXA_EXTRA_ID:
            continue
        payload = field.payload
        if len(payload) < _FIXED.size + 1:
            raise ArchiveError("VXA extension header is truncated")
        version, offset, size, crc, flags = _FIXED.unpack_from(payload, 0)
        if version != _VERSION:
            raise ArchiveError(f"unsupported VXA extension version {version}")
        name_length = payload[_FIXED.size]
        name_start = _FIXED.size + 1
        name_end = name_start + name_length
        if name_end > len(payload):
            raise ArchiveError("VXA extension codec name is truncated")
        return VxaExtension(
            decoder_offset=offset,
            original_size=size,
            original_crc32=crc,
            codec_name=payload[name_start:name_end].decode("utf-8", "replace"),
            precompressed=bool(flags & FLAG_PRECOMPRESSED),
            lossy=bool(flags & FLAG_LOSSY),
        )
    return None
