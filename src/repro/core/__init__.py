"""The VXA architecture core: vxZIP archive writer and vxUnZIP archive reader."""

from repro.core.archive_reader import (
    ArchiveReader,
    ExtractedFile,
    IntegrityReport,
    MODE_AUTO,
    MODE_NATIVE,
    MODE_VXA,
)
from repro.core.archive_writer import (
    ArchivedFileInfo,
    ArchiveManifest,
    ArchiveWriter,
    create_archive,
)
from repro.core.decoder_store import DecoderStore, StoredDecoder
from repro.core.extension import VxaExtension, parse_extension
from repro.core.integrity import check_archive, format_report, is_archive_intact
from repro.core.policy import SecurityAttributes, VmReusePolicy, reuse_groups

__all__ = [
    "ArchiveReader",
    "ExtractedFile",
    "IntegrityReport",
    "MODE_AUTO",
    "MODE_NATIVE",
    "MODE_VXA",
    "ArchivedFileInfo",
    "ArchiveManifest",
    "ArchiveWriter",
    "create_archive",
    "DecoderStore",
    "StoredDecoder",
    "VxaExtension",
    "parse_extension",
    "check_archive",
    "format_report",
    "is_archive_intact",
    "SecurityAttributes",
    "VmReusePolicy",
    "reuse_groups",
]
