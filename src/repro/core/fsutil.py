"""Small filesystem durability helpers shared by the write and read paths.

Crash consistency on POSIX needs three steps in order: flush+fsync the data
file, atomically rename it into place, then fsync the *parent directory* so
the rename itself is on stable storage.  These helpers keep that dance in
one place; both the archive finalize path and ``extract_into`` use them.
"""

from __future__ import annotations

import contextlib
import os


def fsync_file(file) -> None:
    """Flush and fsync an open binary file object."""
    file.flush()
    os.fsync(file.fileno())


def fsync_directory(path) -> None:
    """fsync a directory so renames/creates inside it survive a crash.

    Silently a no-op where directories cannot be opened or fsynced (some
    filesystems and platforms); durability is then only as good as the OS
    default, which is the best that can be done there.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)


__all__ = ["fsync_directory", "fsync_file"]
