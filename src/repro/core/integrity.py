"""Stand-alone archive integrity checking helpers.

Thin wrappers over :meth:`repro.core.archive_reader.ArchiveReader.check_archive`
for callers that just want a yes/no answer or a printable report.  Kept
separate so the examples and benchmarks can exercise integrity checking
without constructing readers themselves.
"""

from __future__ import annotations

from repro.codecs.registry import CodecRegistry
from repro.core.archive_reader import ArchiveReader, IntegrityReport
from repro.core.policy import VmReusePolicy


def check_archive(
    archive: bytes,
    *,
    registry: CodecRegistry | None = None,
    reuse_policy: VmReusePolicy = VmReusePolicy.ALWAYS_FRESH,
) -> IntegrityReport:
    """Run the full always-use-the-archived-decoder integrity check."""
    reader = ArchiveReader(archive, registry=registry)
    return reader.check_archive(reuse_policy=reuse_policy)


def is_archive_intact(archive: bytes, **kwargs) -> bool:
    """True when every decoder-bearing member decodes to its recorded checksum."""
    return check_archive(archive, **kwargs).ok


def format_report(report: IntegrityReport) -> str:
    """Render an integrity report the way the vxUnZIP tool would print it."""
    lines = [f"members checked : {report.checked}",
             f"members passed  : {report.passed}"]
    if report.failures:
        lines.append("failures:")
        lines.extend(f"  - {failure}" for failure in report.failures)
    else:
        lines.append("archive integrity: OK (all archived decoders reproduce their data)")
    return "\n".join(lines)
