"""Stand-alone archive integrity checking helpers.

Thin wrappers over :meth:`repro.api.Archive.check` for callers that just
want a yes/no answer or a printable report.  Kept separate so the examples
and benchmarks can exercise integrity checking without constructing
archives themselves.
"""

from __future__ import annotations

import io

from repro.codecs.registry import CodecRegistry
from repro.core.archive_reader import IntegrityReport
from repro.core.policy import VmReusePolicy


def check_archive(
    archive,
    *,
    registry: CodecRegistry | None = None,
    reuse_policy: VmReusePolicy = VmReusePolicy.ALWAYS_FRESH,
) -> IntegrityReport:
    """Run the full always-use-the-archived-decoder integrity check.

    ``archive`` may be raw bytes, a filesystem path, or a seekable binary
    file object.
    """
    from repro.api import open as open_archive
    from repro.api.options import ReadOptions

    if isinstance(archive, (bytes, bytearray, memoryview)):
        archive = io.BytesIO(bytes(archive))
    with open_archive(archive, ReadOptions(registry=registry)) as opened:
        return opened.check(reuse=reuse_policy)


def is_archive_intact(archive, **kwargs) -> bool:
    """True when every decoder-bearing member decodes to its recorded checksum."""
    return check_archive(archive, **kwargs).ok


def format_report(report: IntegrityReport) -> str:
    """Render an integrity report the way the vxUnZIP tool would print it."""
    lines = [f"members checked : {report.checked}",
             f"members passed  : {report.passed}"]
    if report.vm_initialisations or report.vm_reuses:
        lines.append(
            f"decoder VMs     : {report.vm_initialisations} initialisation(s), "
            f"{report.vm_reuses} state reuse(s)"
        )
    if report.fragments_translated:
        lines.append(
            f"code cache      : {report.fragments_translated} fragment(s) translated, "
            f"{report.cache_hits} cache hit(s), "
            f"{report.chained_branches} chained branch(es), "
            f"{report.retranslations} retranslation(s), "
            f"{report.evictions} eviction(s)"
        )
    if report.images_verified or report.guards_elided:
        lines.append(
            f"static analysis : {report.images_verified} image(s) analysed, "
            f"{report.guards_elided} bounds guard(s) elided"
        )
    if report.failures:
        lines.append("failures:")
        lines.extend(f"  - {failure}" for failure in report.failures)
    else:
        lines.append("archive integrity: OK (all archived decoders reproduce their data)")
    return "\n".join(lines)
