"""Stand-alone archive integrity checking helpers.

Thin wrappers over :meth:`repro.api.Archive.check` for callers that just
want a yes/no answer or a printable report, plus the *media-level*
assessment (:func:`assess_media`) that classifies an archive's bytes
without running any decoders: every member extent is checked against the
end-of-archive digest table (or its CRC when the archive predates commit
records) and classified ``intact`` / ``suspect`` / ``lost`` -- the verdicts
``vxunzip check --deep`` and :mod:`repro.repair` are built on.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.codecs.registry import CodecRegistry
from repro.core.archive_reader import IntegrityReport
from repro.core.policy import VmReusePolicy
from repro.errors import ArchiveError, VxaError, ZipFormatError


def check_archive(
    archive,
    *,
    registry: CodecRegistry | None = None,
    reuse_policy: VmReusePolicy = VmReusePolicy.ALWAYS_FRESH,
) -> IntegrityReport:
    """Run the full always-use-the-archived-decoder integrity check.

    ``archive`` may be raw bytes, a filesystem path, or a seekable binary
    file object.
    """
    from repro.api import open as open_archive
    from repro.api.options import ReadOptions

    if isinstance(archive, (bytes, bytearray, memoryview)):
        archive = io.BytesIO(bytes(archive))
    with open_archive(archive, ReadOptions(registry=registry)) as opened:
        return opened.check(reuse=reuse_policy)


def is_archive_intact(archive, **kwargs) -> bool:
    """True when every decoder-bearing member decodes to its recorded checksum."""
    return check_archive(archive, **kwargs).ok


def format_report(report: IntegrityReport) -> str:
    """Render an integrity report the way the vxUnZIP tool would print it."""
    lines = [f"members checked : {report.checked}",
             f"members passed  : {report.passed}"]
    if report.vm_initialisations or report.vm_reuses:
        lines.append(
            f"decoder VMs     : {report.vm_initialisations} initialisation(s), "
            f"{report.vm_reuses} state reuse(s)"
        )
    if report.fragments_translated:
        lines.append(
            f"code cache      : {report.fragments_translated} fragment(s) translated, "
            f"{report.cache_hits} cache hit(s), "
            f"{report.chained_branches} chained branch(es), "
            f"{report.retranslations} retranslation(s), "
            f"{report.evictions} eviction(s)"
        )
    if report.images_verified or report.guards_elided:
        lines.append(
            f"static analysis : {report.images_verified} image(s) analysed, "
            f"{report.guards_elided} bounds guard(s) elided"
        )
    if report.failures:
        lines.append("failures:")
        lines.extend(f"  - {failure}" for failure in report.failures)
    else:
        lines.append("archive integrity: OK (all archived decoders reproduce their data)")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Media-level assessment (no decoder runs)
# --------------------------------------------------------------------------

#: Member verdict statuses.
STATUS_INTACT = "intact"      # bytes verified (digest table or CRC)
STATUS_SUSPECT = "suspect"    # present but contradicts its recorded identity
STATUS_LOST = "lost"          # extent missing or unreachable

#: Archive classifications (also the ``check --deep`` exit codes).
CLASS_CLEAN = "clean"
CLASS_SALVAGEABLE = "salvageable"
CLASS_UNRECOVERABLE = "unrecoverable"
_EXIT_CODES = {CLASS_CLEAN: 0, CLASS_SALVAGEABLE: 1, CLASS_UNRECOVERABLE: 2}


@dataclass
class MemberVerdict:
    """Media-level verdict for one member or decoder extent."""

    name: str
    status: str
    verified_by: str = "none"   # "digest" | "crc" | "structure" | "none"
    reason: str = ""
    offset: int | None = None   # local-header offset of the extent
    size: int | None = None     # full extent size when known
    decoder_offset: int | None = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "verified_by": self.verified_by,
            "reason": self.reason,
            "offset": self.offset,
            "size": self.size,
            "decoder_offset": self.decoder_offset,
        }


@dataclass
class MediaAssessment:
    """Outcome of a whole-archive media scan (``check --deep``'s substrate)."""

    directory_status: str = "ok"         # "ok" | "reconstructed"
    commit_status: str = "absent"        # "verified" | "present" | "absent"
    members: list[MemberVerdict] = field(default_factory=list)
    decoders: dict[int, MemberVerdict] = field(default_factory=dict)
    damage: list[str] = field(default_factory=list)
    archive_size: int = 0

    @property
    def intact_members(self) -> list[MemberVerdict]:
        return [m for m in self.members if m.status == STATUS_INTACT]

    @property
    def damaged_members(self) -> list[MemberVerdict]:
        return [m for m in self.members if m.status != STATUS_INTACT]

    def classification(self) -> str:
        damaged = (self.directory_status != "ok" or bool(self.damage)
                   or any(m.status != STATUS_INTACT for m in self.members)
                   or any(d.status != STATUS_INTACT for d in self.decoders.values()))
        if not damaged:
            return CLASS_CLEAN
        if self.members and not self.intact_members:
            return CLASS_UNRECOVERABLE
        if not self.members:
            # Nothing recoverable at all: damage with no surviving members.
            return CLASS_UNRECOVERABLE
        return CLASS_SALVAGEABLE

    def exit_code(self) -> int:
        return _EXIT_CODES[self.classification()]

    def as_dict(self) -> dict:
        return {
            "classification": self.classification(),
            "directory_status": self.directory_status,
            "commit_status": self.commit_status,
            "archive_size": self.archive_size,
            "members": [m.as_dict() for m in self.members],
            "decoders": {str(offset): d.as_dict()
                         for offset, d in self.decoders.items()},
            "damage": list(self.damage),
        }


def _open_salvage_reader(archive):
    """Open ``archive`` (bytes, path, or file object) in salvage mode."""
    from repro.zipformat.reader import ZipReader

    if isinstance(archive, (bytes, bytearray, memoryview)):
        return ZipReader(bytes(archive), salvage=True)
    if isinstance(archive, (str, bytes)) or hasattr(archive, "__fspath__"):
        with open(archive, "rb") as handle:
            return ZipReader(handle.read(), salvage=True)
    return ZipReader(archive, salvage=True)


def _verify_extent(reader, verdict: MemberVerdict, digest_row) -> None:
    """Check one extent against its digest-table row, updating ``verdict``."""
    from repro.zipformat.commit import sha256

    extent = reader.read_extent(digest_row.offset, digest_row.size)
    if len(extent) < digest_row.size:
        verdict.status = STATUS_LOST
        verdict.reason = "extent truncated"
    elif sha256(extent) != digest_row.digest:
        verdict.status = STATUS_SUSPECT
        verdict.reason = "extent digest mismatch"
        verdict.verified_by = "digest"
    else:
        verdict.status = STATUS_INTACT
        verdict.verified_by = "digest"


def assess_media(archive) -> MediaAssessment:
    """Classify an archive's bytes without running any decoders.

    Opens the archive in salvage mode (so even a destroyed central
    directory yields a member list), then checks every member and decoder
    extent -- against the end-of-archive digest table when present, by CRC
    for traditionally-compressed data otherwise.  Members recorded in the
    digest table but absent from the media are reported ``lost``.
    """
    from repro.core.extension import parse_extension
    from repro.zipformat.commit import KIND_MEMBER
    from repro.zipformat.structures import METHOD_VXA

    assessment = MediaAssessment()
    try:
        reader = _open_salvage_reader(archive)
    except ZipFormatError as error:
        assessment.damage.append(f"archive is unreadable: {error}")
        return assessment
    assessment.archive_size = reader.source_size
    assessment.directory_status = ("reconstructed" if reader.directory_reconstructed
                                   else "ok")
    if reader.commit_verified:
        assessment.commit_status = "verified"
    elif reader.commit_marker is not None:
        assessment.commit_status = "present"
    assessment.damage.extend(reader.damage)

    digest_rows = (reader.digest_table.by_offset()
                   if reader.digest_table is not None else {})
    present_offsets = set()

    # -- decoder extents referenced by members ------------------------------------
    decoder_offsets: dict[int, list[str]] = {}
    for entry in reader.entries:
        try:
            extension = parse_extension(entry.extra)
        except ArchiveError:
            extension = None
        if extension is not None:
            decoder_offsets.setdefault(extension.decoder_offset, []).append(entry.name)
    for offset in sorted(decoder_offsets):
        verdict = MemberVerdict(name=f"<decoder@{offset}>", status=STATUS_INTACT,
                                offset=offset)
        row = digest_rows.get(offset)
        if row is not None:
            verdict.size = row.size
            _verify_extent(reader, verdict, row)
        else:
            try:
                reader.read_member_at(offset)
                verdict.status = STATUS_INTACT
                verdict.verified_by = "crc"
            except VxaError as error:
                verdict.status = STATUS_SUSPECT
                verdict.reason = f"decoder unreadable: {error}"
        assessment.decoders[offset] = verdict

    # -- member extents -----------------------------------------------------------
    for entry in reader.entries:
        present_offsets.add(entry.local_header_offset)
        try:
            extension = parse_extension(entry.extra)
        except ArchiveError as error:
            assessment.members.append(MemberVerdict(
                name=entry.name, status=STATUS_SUSPECT,
                reason=f"VXA extension unreadable: {error}",
                offset=entry.local_header_offset))
            continue
        decoder_offset = extension.decoder_offset if extension is not None else None
        verdict = MemberVerdict(name=entry.name, status=STATUS_INTACT,
                                offset=entry.local_header_offset,
                                decoder_offset=decoder_offset)
        row = digest_rows.get(entry.local_header_offset)
        if row is not None:
            verdict.size = row.size
            _verify_extent(reader, verdict, row)
        elif entry.method == METHOD_VXA:
            # No digest table and no traditional checksum over the *stored*
            # bytes: all we can check cheaply is that the extent is present
            # and structurally sound; decode-time CRC remains the real gate.
            try:
                offset, size = reader.member_extent(entry)
                verdict.size = size
                if len(reader.read_extent(offset, size)) < size:
                    verdict.status = STATUS_LOST
                    verdict.reason = "extent truncated"
                else:
                    verdict.verified_by = "structure"
            except VxaError as error:
                verdict.status = STATUS_LOST
                verdict.reason = str(error)
        else:
            try:
                reader.read_member(entry)
                verdict.verified_by = "crc"
            except VxaError as error:
                verdict.status = STATUS_SUSPECT
                verdict.reason = f"stored data unreadable: {error}"
        # An intact VXA member whose decoder is damaged cannot be decoded;
        # only its pre-compressed stored form (if any) remains extractable.
        if (verdict.status == STATUS_INTACT and decoder_offset is not None
                and entry.method == METHOD_VXA
                and decoder_offset in assessment.decoders
                and assessment.decoders[decoder_offset].status != STATUS_INTACT):
            verdict.status = STATUS_LOST
            verdict.reason = "decoder extent damaged"
        assessment.members.append(verdict)

    # -- members recorded in the digest table but missing from the media ----------
    for offset, row in sorted(digest_rows.items()):
        if row.kind != KIND_MEMBER or offset in present_offsets:
            continue
        assessment.members.append(MemberVerdict(
            name=row.name, status=STATUS_LOST, reason="extent missing from media",
            offset=offset, size=row.size))

    return assessment


def format_assessment(assessment: MediaAssessment) -> str:
    """Render a media assessment the way ``vxunzip check --deep`` prints it."""
    lines = [
        f"classification  : {assessment.classification()}",
        f"directory       : {assessment.directory_status}",
        f"commit record   : {assessment.commit_status}",
        f"members         : {len(assessment.intact_members)} intact, "
        f"{len(assessment.damaged_members)} damaged",
    ]
    for verdict in assessment.damaged_members:
        detail = f" ({verdict.reason})" if verdict.reason else ""
        lines.append(f"  - {verdict.name or '<unnamed>'}: {verdict.status}{detail}")
    for offset, verdict in sorted(assessment.decoders.items()):
        if verdict.status != STATUS_INTACT:
            lines.append(f"  - decoder at offset {offset}: {verdict.status} "
                         f"({verdict.reason})")
    for note in assessment.damage:
        lines.append(f"  ! {note}")
    return "\n".join(lines)
