"""Sandboxed guest memory for the VXA virtual machine.

The paper's vx32 gives each decoder a flat, unsegmented address space that
starts at virtual address 0 and is at most 1 GB, enforced with x86 segment
registers (section 4.1).  Here the same property -- a decoder can only ever
read or write its own sandbox -- is enforced in software by bounds-checking
every access.

The check policy is configurable to reproduce the software-fault-isolation
ablation discussed in section 6.3: ``full`` checks both loads and stores
(the paper argues this is required for VXA because a malicious decoder could
otherwise *read* leftover secrets out of the archive reader's address space
and leak them into its output stream), while ``write-only`` checks only
stores, the cheaper policy measured at ~4% overhead on RISC SFI systems.
"""

from __future__ import annotations

from repro.errors import MemoryFault, ResourceLimitExceeded

#: Hard ceiling on guest address space size (paper section 4.1).
GUEST_ADDRESS_SPACE_LIMIT = 1 << 30

#: Default sandbox size given to decoders; decoders grow it with ``setperm``.
DEFAULT_MEMORY_SIZE = 4 << 20

CHECK_FULL = "full"
CHECK_WRITE_ONLY = "write-only"
CHECK_NONE = "none"

_VALID_POLICIES = (CHECK_FULL, CHECK_WRITE_ONLY, CHECK_NONE)


class GuestMemory:
    """A decoder's flat address space.

    The backing store is a single ``bytearray``.  Addresses are guest-virtual
    and start at zero.  ``setperm`` (the heap-growth virtual system call)
    extends the accessible region up to ``limit``.
    """

    __slots__ = ("buffer", "size", "limit", "check_policy", "_check_reads", "_check_writes")

    def __init__(
        self,
        size: int = DEFAULT_MEMORY_SIZE,
        *,
        limit: int = GUEST_ADDRESS_SPACE_LIMIT,
        check_policy: str = CHECK_FULL,
    ):
        if size <= 0:
            raise ValueError("guest memory size must be positive")
        if limit > GUEST_ADDRESS_SPACE_LIMIT:
            raise ValueError("guest memory limit exceeds the 1 GB architecture ceiling")
        if size > limit:
            raise ValueError("initial guest memory size exceeds its limit")
        if check_policy not in _VALID_POLICIES:
            raise ValueError(f"unknown check policy {check_policy!r}")
        self.buffer = bytearray(size)
        self.size = size
        self.limit = limit
        self.check_policy = check_policy
        self._check_reads = check_policy == CHECK_FULL
        self._check_writes = check_policy in (CHECK_FULL, CHECK_WRITE_ONLY)

    # -- sandbox management -------------------------------------------------

    def reset(self) -> None:
        """Zero the sandbox (used when re-initialising the VM between files).

        The backing ``bytearray`` is zeroed *in place* rather than rebound:
        the execution engines and translated fragments bind the buffer object
        directly, so rebinding would leave them decoding and mutating a dead
        buffer while the live sandbox stays stale.
        """
        buffer = self.buffer
        buffer[:] = bytes(len(buffer))

    def grow(self, new_size: int) -> int:
        """Grow the accessible region to ``new_size`` bytes (``setperm``).

        Returns the new size.  Shrinking is ignored (the current size is
        returned) and growing beyond the limit raises
        :class:`ResourceLimitExceeded`.
        """
        if new_size <= self.size:
            return self.size
        if new_size > self.limit:
            raise ResourceLimitExceeded(
                f"guest requested {new_size} bytes of memory, limit is {self.limit}"
            )
        self.buffer.extend(b"\x00" * (new_size - self.size))
        self.size = new_size
        return self.size

    # -- access checks ------------------------------------------------------

    def _fault(self, address: int, size: int, kind: str):
        raise MemoryFault(address & 0xFFFFFFFF, size, kind)

    def check_range(self, address: int, size: int, *, write: bool) -> None:
        """Validate a guest buffer range (used by the syscall layer)."""
        if address < 0 or size < 0 or address + size > self.size:
            self._fault(address, size, "write" if write else "read")

    # -- loads ---------------------------------------------------------------

    def load8u(self, address: int) -> int:
        if self._check_reads and not 0 <= address < self.size:
            self._fault(address, 1, "read")
        try:
            return self.buffer[address]
        except IndexError:
            self._fault(address, 1, "read")

    def load8s(self, address: int) -> int:
        value = self.load8u(address)
        return value - 0x100 if value >= 0x80 else value

    def load16u(self, address: int) -> int:
        if (self._check_reads and not 0 <= address <= self.size - 2) or address < 0:
            self._fault(address, 2, "read")
        chunk = self.buffer[address : address + 2]
        if len(chunk) != 2:
            self._fault(address, 2, "read")
        return chunk[0] | (chunk[1] << 8)

    def load16s(self, address: int) -> int:
        value = self.load16u(address)
        return value - 0x10000 if value >= 0x8000 else value

    def load32(self, address: int) -> int:
        if (self._check_reads and not 0 <= address <= self.size - 4) or address < 0:
            self._fault(address, 4, "read")
        chunk = self.buffer[address : address + 4]
        if len(chunk) != 4:
            self._fault(address, 4, "read")
        return int.from_bytes(chunk, "little")

    # -- stores --------------------------------------------------------------

    def store8(self, address: int, value: int) -> None:
        if self._check_writes and not 0 <= address < self.size:
            self._fault(address, 1, "write")
        try:
            self.buffer[address] = value & 0xFF
        except IndexError:
            self._fault(address, 1, "write")

    def store16(self, address: int, value: int) -> None:
        if (self._check_writes and not 0 <= address <= self.size - 2) or address < 0:
            self._fault(address, 2, "write")
        if address + 2 > len(self.buffer):
            self._fault(address, 2, "write")
        value &= 0xFFFF
        self.buffer[address] = value & 0xFF
        self.buffer[address + 1] = value >> 8

    def store32(self, address: int, value: int) -> None:
        if (self._check_writes and not 0 <= address <= self.size - 4) or address < 0:
            self._fault(address, 4, "write")
        if address + 4 > len(self.buffer):
            self._fault(address, 4, "write")
        self.buffer[address : address + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    # -- bulk access for the host (syscall layer, loader) ---------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        """Copy ``size`` bytes out of guest memory (host-side helper)."""
        self.check_range(address, size, write=False)
        return bytes(self.buffer[address : address + size])

    def write_bytes(self, address: int, data: bytes) -> None:
        """Copy ``data`` into guest memory (host-side helper)."""
        self.check_range(address, len(data), write=True)
        self.buffer[address : address + len(data)] = data

    def read_cstring(self, address: int, max_length: int = 4096) -> bytes:
        """Read a NUL-terminated string (used only for stderr diagnostics)."""
        end = min(self.size, address + max_length)
        self.check_range(address, 0, write=False)
        terminator = self.buffer.find(b"\x00", address, end)
        if terminator < 0:
            terminator = end
        return bytes(self.buffer[address:terminator])
