"""Load VXA decoder ELF images into a guest sandbox.

Mirrors vx32's loader: the decoder image is copied to its linked virtual
addresses inside the sandbox, the stack pointer is parked at the top of the
initial sandbox, and the executable region is recorded so the execution
engines can refuse to run code outside it (code sandboxing, section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.elf.reader import parse_executable
from repro.elf.structures import ElfImage
from repro.errors import ElfFormatError, ImageVerificationError
from repro.vm.memory import DEFAULT_MEMORY_SIZE, GuestMemory

#: Bytes reserved at the top of the sandbox for the guest stack.
DEFAULT_STACK_SIZE = 256 << 10

#: Extra headroom above the image before the heap would hit the stack.
HEAP_HEADROOM = 64 << 10
_HEAP_HEADROOM = HEAP_HEADROOM  # backwards-compatible alias


@dataclass
class LoadedProgram:
    """Result of loading an executable into guest memory."""

    entry: int
    stack_top: int
    brk: int                       # first free address after the image (heap start)
    text_start: int
    text_end: int


def admit_image(image: ElfImage | bytes, mode: str = "off", *, report=None):
    """Run the static-analysis admission policy over ``image``.

    Args:
        image: raw ELF bytes or a parsed :class:`ElfImage`.
        mode: ``"off"`` (return ``None`` without analysing), ``"warn"``
            (analyse, emit a :class:`UserWarning` for unsafe images) or
            ``"reject"`` (raise :class:`ImageVerificationError` before any
            VM runs the image).
        report: a previously computed
            :class:`~repro.analysis.verify.AnalysisReport` for this very
            image (e.g. from a session-shared code cache); passing it skips
            re-analysis but still applies the admission decision.

    Returns:
        The :class:`repro.analysis.verify.AnalysisReport`, or ``None`` when
        ``mode`` is ``"off"``.
    """
    if mode == "off":
        return report
    if mode not in ("warn", "reject"):
        raise ValueError(f"unknown verify_images mode: {mode!r}")
    if report is None:
        from repro.analysis.verify import verify_image

        report = verify_image(image)
    if not report.ok:
        problems = report.unsafe_sites
        summary = "; ".join(
            f"0x{site.pc:x}: {site.kind} {site.detail or site.verdict}"
            for site in problems[:4]
        )
        message = (
            f"decoder image failed static verification "
            f"({len(problems)} unsafe site(s): {summary})"
        )
        if mode == "reject":
            raise ImageVerificationError(message)
        import warnings

        warnings.warn(message, UserWarning, stacklevel=2)
    return report


def load_image(
    image: ElfImage | bytes,
    memory: GuestMemory,
    *,
    stack_size: int = DEFAULT_STACK_SIZE,
) -> LoadedProgram:
    """Copy ``image`` into ``memory`` and return the initial machine state.

    Args:
        image: a parsed :class:`ElfImage` or raw ELF bytes.
        memory: the sandbox to populate; grown if the image needs more room.
        stack_size: bytes to reserve for the guest stack at the top of memory.

    Raises:
        ElfFormatError: if the image does not fit its declared constraints.
    """
    if isinstance(image, (bytes, bytearray)):
        image = parse_executable(bytes(image))

    load_size = image.load_size
    needed = load_size + _HEAP_HEADROOM + stack_size
    if needed > memory.size:
        memory.grow(max(needed, min(memory.limit, DEFAULT_MEMORY_SIZE)))
    if load_size + stack_size > memory.size:
        raise ElfFormatError(
            f"decoder image needs {load_size} bytes plus stack, sandbox is {memory.size}"
        )

    text_start = None
    text_end = None
    for segment in image.segments:
        memory.write_bytes(segment.vaddr, segment.data)
        # memsz > filesz space is already zero because sandboxes start zeroed,
        # but re-zero explicitly in case the memory is being reused.
        if segment.memsz > len(segment.data):
            zero_start = segment.vaddr + len(segment.data)
            memory.write_bytes(zero_start, b"\x00" * (segment.memsz - len(segment.data)))
        if segment.executable:
            start, end = segment.vaddr, segment.vaddr + segment.memsz
            if text_start is None:
                text_start, text_end = start, end
            else:
                text_start = min(text_start, start)
                text_end = max(text_end, end)

    stack_top = (memory.size - 16) & ~0xF
    return LoadedProgram(
        entry=image.entry,
        stack_top=stack_top,
        brk=load_size,
        text_start=text_start or 0,
        text_end=text_end or 0,
    )
