"""Dynamic binary translation engine for the VXA virtual machine.

This is the analogue of vx32's code sandboxing technique (paper section 4.2):
guest code is never executed directly.  Instead, the first time execution
reaches a guest address the translator scans the instruction stream from that
address to the end of the basic block, emits an equivalent *safe fragment* --
here a compiled Python function -- and stores it in a fragment cache keyed by
the guest entry point.  Later executions of the same entry point reuse the
cached fragment.

Control flow is handled the way the paper describes:

* direct branches end a fragment and hand the (statically known) successor
  address back to the dispatcher, which looks it up in the cache -- the
  dispatch loop plays the role of the paper's back-patched branch trampolines,
* indirect branches (``jmpr``, ``callr``, ``ret``) return a run-time computed
  address which the dispatcher resolves through the same hash table, exactly
  like vx32's hash lookup of translated entry points,
* system-call instructions trap to the host's
  :class:`~repro.vm.syscalls.SyscallHandler`.

Because the guest ISA is variable-length, the translator only ever decodes
along realised execution paths; a jump into the middle of an instruction
simply translates whatever bytes are found there, and anything that does not
decode raises :class:`~repro.errors.IllegalInstructionFault` -- the guest can
hurt only itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import (
    DivisionFault,
    IllegalInstructionFault,
    InvalidInstructionError,
    ResourceLimitExceeded,
)
from repro.isa.encoding import decode
from repro.isa.opcodes import CONDITIONAL_JUMPS, Op
from repro.vm.syscalls import ACTION_EXIT

#: Maximum number of guest instructions translated into one fragment.
MAX_FRAGMENT_INSTRUCTIONS = 128

_MASK = 0xFFFFFFFF


@dataclass
class Fragment:
    """One translated code fragment."""

    entry: int                    # guest address of the first instruction
    func: Callable                # compiled fragment: (vm, regs, mem) -> next pc
    instruction_count: int        # guest instructions covered
    end: int                      # guest address just past the last instruction
    source: str                   # generated Python source (for inspection/tests)


def _signed(value: int) -> int:
    return value - 0x100000000 if value >= 0x80000000 else value


def _signed_division(dividend: int, divisor: int, want_remainder: bool) -> int:
    """C-style truncating signed division / remainder on 32-bit values."""
    if divisor == 0:
        raise DivisionFault("division by zero")
    dividend_signed = _signed(dividend)
    divisor_signed = _signed(divisor)
    quotient = abs(dividend_signed) // abs(divisor_signed)
    if (dividend_signed < 0) != (divisor_signed < 0):
        quotient = -quotient
    if want_remainder:
        return (dividend_signed - quotient * divisor_signed) & _MASK
    return quotient & _MASK


def _unsigned_division(dividend: int, divisor: int, want_remainder: bool) -> int:
    if divisor == 0:
        raise DivisionFault("division by zero")
    return (dividend % divisor if want_remainder else dividend // divisor) & _MASK


#: Globals made available to generated fragment code.
_FRAGMENT_GLOBALS = {
    "_sdiv": _signed_division,
    "_udiv": _unsigned_division,
    "_signed": _signed,
    "ACTION_EXIT": ACTION_EXIT,
}

_CONDITION_EXPR = {
    Op.JE: "a == b",
    Op.JNE: "a != b",
    Op.JLTU: "a < b",
    Op.JLEU: "a <= b",
    Op.JGTU: "a > b",
    Op.JGEU: "a >= b",
    Op.JLTS: "_signed(a) < _signed(b)",
    Op.JLES: "_signed(a) <= _signed(b)",
    Op.JGTS: "_signed(a) > _signed(b)",
    Op.JGES: "_signed(a) >= _signed(b)",
}


class Translator:
    """Scans guest code and produces :class:`Fragment` objects."""

    def __init__(self, memory, text_start: int, text_end: int):
        self._memory = memory
        self._text_start = text_start
        self._text_end = text_end

    def translate(self, entry: int) -> Fragment:
        """Translate the basic block starting at guest address ``entry``."""
        if not self._text_start <= entry < self._text_end:
            raise IllegalInstructionFault(
                f"jump target outside the code segment: 0x{entry:08x}"
            )
        code = self._memory.buffer
        lines: list[str] = [
            "def _fragment(vm, r, mem):",
        ]
        pc = entry
        count = 0
        terminated = False
        while count < MAX_FRAGMENT_INSTRUCTIONS:
            try:
                insn = decode(code, pc)
            except InvalidInstructionError as error:
                raise IllegalInstructionFault(str(error)) from None
            if pc + insn.length > self._text_end:
                raise IllegalInstructionFault(
                    f"instruction at 0x{pc:08x} straddles the code segment end"
                )
            count += 1
            next_pc = pc + insn.length
            body, terminated = self._translate_instruction(insn, pc, next_pc)
            lines.extend("    " + line for line in body)
            pc = next_pc
            if terminated:
                break
        if not terminated:
            # Block limit reached mid-stream: fall through to the next address.
            lines.append(f"    return {pc}")
        source = "\n".join(lines)
        namespace = dict(_FRAGMENT_GLOBALS)
        exec(compile(source, f"<vxa-fragment-0x{entry:x}>", "exec"), namespace)
        return Fragment(
            entry=entry,
            func=namespace["_fragment"],
            instruction_count=count,
            end=pc,
            source=source,
        )

    # -- per-instruction code generation ------------------------------------

    def _translate_instruction(self, insn, pc: int, next_pc: int):
        op = insn.op
        rd = insn.rd
        rs = insn.rs
        imm = insn.imm
        simm = _signed(imm)

        def addr(base_reg, displacement):
            if displacement == 0:
                return f"r[{base_reg}]"
            return f"(r[{base_reg}] + {displacement}) & {_MASK}"

        # Data movement -----------------------------------------------------
        if op is Op.MOVI:
            return [f"r[{rd}] = {imm}"], False
        if op is Op.MOV:
            return [f"r[{rd}] = r[{rs}]"], False
        if op is Op.LD32:
            return [f"r[{rd}] = mem.load32({addr(rs, simm)})"], False
        if op is Op.LD16U:
            return [f"r[{rd}] = mem.load16u({addr(rs, simm)})"], False
        if op is Op.LD8U:
            return [f"r[{rd}] = mem.load8u({addr(rs, simm)})"], False
        if op is Op.LD16S:
            return [f"r[{rd}] = mem.load16s({addr(rs, simm)}) & {_MASK}"], False
        if op is Op.LD8S:
            return [f"r[{rd}] = mem.load8s({addr(rs, simm)}) & {_MASK}"], False
        if op is Op.ST32:
            return [f"mem.store32({addr(rd, simm)}, r[{rs}])"], False
        if op is Op.ST16:
            return [f"mem.store16({addr(rd, simm)}, r[{rs}])"], False
        if op is Op.ST8:
            return [f"mem.store8({addr(rd, simm)}, r[{rs}])"], False
        if op is Op.LEA:
            return [f"r[{rd}] = {addr(rs, simm)}"], False
        if op is Op.PUSH:
            return [
                f"sp = (r[7] - 4) & {_MASK}",
                f"mem.store32(sp, r[{rd}])",
                "r[7] = sp",
            ], False
        if op is Op.POP:
            return [
                f"r[{rd}] = mem.load32(r[7])",
                f"r[7] = (r[7] + 4) & {_MASK}",
            ], False

        # ALU register-register ----------------------------------------------
        if op is Op.ADD:
            return [f"r[{rd}] = (r[{rd}] + r[{rs}]) & {_MASK}"], False
        if op is Op.SUB:
            return [f"r[{rd}] = (r[{rd}] - r[{rs}]) & {_MASK}"], False
        if op is Op.MUL:
            return [f"r[{rd}] = (r[{rd}] * r[{rs}]) & {_MASK}"], False
        if op is Op.DIVU:
            return [f"r[{rd}] = _udiv(r[{rd}], r[{rs}], False)"], False
        if op is Op.REMU:
            return [f"r[{rd}] = _udiv(r[{rd}], r[{rs}], True)"], False
        if op is Op.DIVS:
            return [f"r[{rd}] = _sdiv(r[{rd}], r[{rs}], False)"], False
        if op is Op.REMS:
            return [f"r[{rd}] = _sdiv(r[{rd}], r[{rs}], True)"], False
        if op is Op.AND:
            return [f"r[{rd}] &= r[{rs}]"], False
        if op is Op.OR:
            return [f"r[{rd}] |= r[{rs}]"], False
        if op is Op.XOR:
            return [f"r[{rd}] ^= r[{rs}]"], False
        if op is Op.SHL:
            return [f"r[{rd}] = (r[{rd}] << (r[{rs}] & 31)) & {_MASK}"], False
        if op is Op.SHRU:
            return [f"r[{rd}] >>= (r[{rs}] & 31)"], False
        if op is Op.SHRS:
            return [f"r[{rd}] = (_signed(r[{rd}]) >> (r[{rs}] & 31)) & {_MASK}"], False
        if op is Op.CMP:
            return [f"vm.cc = (r[{rd}], r[{rs}])"], False
        if op is Op.NOT:
            return [f"r[{rd}] = (~r[{rs}]) & {_MASK}"], False
        if op is Op.NEG:
            return [f"r[{rd}] = (-r[{rs}]) & {_MASK}"], False

        # ALU register-immediate ----------------------------------------------
        if op is Op.ADDI:
            return [f"r[{rd}] = (r[{rd}] + {imm}) & {_MASK}"], False
        if op is Op.SUBI:
            return [f"r[{rd}] = (r[{rd}] - {imm}) & {_MASK}"], False
        if op is Op.MULI:
            return [f"r[{rd}] = (r[{rd}] * {imm}) & {_MASK}"], False
        if op is Op.ANDI:
            return [f"r[{rd}] &= {imm}"], False
        if op is Op.ORI:
            return [f"r[{rd}] |= {imm}"], False
        if op is Op.XORI:
            return [f"r[{rd}] ^= {imm}"], False
        if op is Op.SHLI:
            return [f"r[{rd}] = (r[{rd}] << {imm & 31}) & {_MASK}"], False
        if op is Op.SHRUI:
            return [f"r[{rd}] >>= {imm & 31}"], False
        if op is Op.SHRSI:
            return [f"r[{rd}] = (_signed(r[{rd}]) >> {imm & 31}) & {_MASK}"], False
        if op is Op.CMPI:
            return [f"vm.cc = (r[{rd}], {imm})"], False

        # Control flow ---------------------------------------------------------
        if op is Op.JMP:
            return [f"return {(next_pc + simm) & _MASK}"], True
        if op in CONDITIONAL_JUMPS:
            target = (next_pc + simm) & _MASK
            condition = _CONDITION_EXPR[op]
            return [
                "a, b = vm.cc",
                f"if {condition}:",
                f"    return {target}",
                f"return {next_pc}",
            ], True
        if op is Op.CALL:
            target = (next_pc + simm) & _MASK
            return [
                f"sp = (r[7] - 4) & {_MASK}",
                f"mem.store32(sp, {next_pc})",
                "r[7] = sp",
                f"return {target}",
            ], True
        if op is Op.RET:
            return [
                "target = mem.load32(r[7])",
                f"r[7] = (r[7] + 4) & {_MASK}",
                "return target",
            ], True
        if op is Op.JMPR:
            return [f"return r[{rd}]"], True
        if op is Op.CALLR:
            return [
                f"sp = (r[7] - 4) & {_MASK}",
                f"mem.store32(sp, {next_pc})",
                "r[7] = sp",
                f"return r[{rd}]",
            ], True
        if op is Op.VXCALL:
            return [
                "res, action = vm.syscall_handler.dispatch(r[0], r[1], r[2], r[3])",
                f"r[0] = res & {_MASK}",
                "if action == ACTION_EXIT:",
                "    vm.halted = True",
                f"return {next_pc}",
            ], True
        if op is Op.HALT:
            return [
                "vm.halted = True",
                "vm.syscall_handler.exit_code = 0",
                f"return {next_pc}",
            ], True
        if op is Op.NOP:
            return ["pass"], False
        raise IllegalInstructionFault(f"unhandled opcode {op!r} at 0x{pc:08x}")  # pragma: no cover


def run_translator(vm) -> None:
    """Run ``vm`` until exit/halt/fault using translated fragments."""
    memory = vm.memory
    regs = vm.regs
    stats = vm.stats
    cache = vm.fragment_cache
    use_cache = vm.use_fragment_cache
    limits = vm.limits
    budget = limits.max_instructions
    translator = Translator(memory, vm.text_start, vm.text_end)

    executed = 0
    blocks = 0
    misses = 0
    pc = vm.pc
    try:
        while not vm.halted:
            fragment = cache.get(pc) if use_cache else None
            if fragment is None:
                if use_cache and len(cache) >= limits.max_fragments:
                    raise ResourceLimitExceeded(
                        f"decoder exceeded the translated-fragment limit "
                        f"({limits.max_fragments})"
                    )
                fragment = translator.translate(pc)
                misses += 1
                if use_cache:
                    cache[pc] = fragment
            executed += fragment.instruction_count
            if budget is not None and executed > budget:
                raise ResourceLimitExceeded(
                    f"decoder exceeded its instruction budget ({budget})"
                )
            pc = fragment.func(vm, regs, memory)
            blocks += 1
    finally:
        vm.pc = pc
        stats.instructions += executed
        stats.blocks_executed += blocks
        stats.fragments_translated += misses
        stats.fragment_cache_misses += misses
        stats.fragment_cache_hits += blocks - misses if blocks >= misses else 0
