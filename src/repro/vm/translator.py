"""Superblock dynamic binary translation engine for the VXA virtual machine.

This is the analogue of vx32's code sandboxing technique (paper section 4.2):
guest code is never executed directly.  The first time execution reaches a
guest address the translator scans the instruction stream from that address
and emits an equivalent *safe fragment* -- here a compiled Python function --
which is stored in a :class:`~repro.vm.code_cache.CodeCache` keyed by the
guest entry point.

The engine goes beyond one-basic-block-at-a-time translation in three ways,
mirroring the optimisations that make vx32 fast:

*Superblocks.*  The translator follows fall-throughs and direct ``jmp``
branches across basic-block boundaries, building one single-entry multi-exit
trace per fragment (bounded by ``superblock_limit`` instructions and by
revisiting an address already in the trace).  Conditional branches do not end
a trace: the taken edge becomes a side exit and translation continues down
the fall-through path, so hot loops compile into one fragment instead of a
chain of tiny blocks.  ``call`` ends the trace (following it would duplicate
the callee body into every call site's trace, which costs more in
translation time than the saved dispatch is worth) but its edge is still
chainable.

*Fragment chaining.*  Every exit whose successor address is statically known
(direct branches, fall-throughs, the continuation after a virtual system
call) is resolved through the dispatcher exactly once.  The dispatcher then
*back-patches* the exit -- the successor fragment is written into the exit's
slot (a default argument of the compiled function) -- so later executions
hand the successor straight back to the trampoline without any hash lookup.
This plays the role of vx32's back-patched branch trampolines: the fragment
cache's hash table is only consulted for indirect branches (``jmpr``,
``callr``, ``ret``) and for the first execution of each direct edge.

*Inlined guest memory and registers.*  Fragments bind the guest's backing
``bytearray`` and hoist the eight guest registers (and the condition-code
pair) into Python locals at entry, spilling the modified ones back at every
exit.  Loads and stores compile to raw slice/index operations guarded by
precomputed bounds expressions instead of ``GuestMemory`` method calls, and
the instruction-limit accounting is one addition per executed fragment exit
rather than per instruction.

The memory-check policies of :mod:`repro.vm.memory` are honoured: under
``full`` every load and store carries an explicit bounds check against the
live sandbox size (and faults with a precise address); ``write-only`` elides
the read guards and ``none`` elides both.  Eliding a guard never weakens
isolation: the ``struct`` packers and byte indexing bounds-check against the
backing store themselves, so an unchecked wild access still faults (via the
dispatcher's backstop, without a precise address) and can never read, write
or resize memory outside the sandbox.

Because the guest ISA is variable-length, the translator only ever decodes
along realised execution paths; a jump into the middle of an instruction
simply translates whatever bytes are found there, and anything that does not
decode raises :class:`~repro.errors.IllegalInstructionFault` -- the guest can
hurt only itself.  A trace that runs into undecodable bytes *after* a side
exit ends early with a lazy exit, so the fault is only raised if execution
actually falls through to the bad address.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from time import monotonic
from typing import Callable

from repro.errors import (
    DeadlineExceeded,
    DivisionFault,
    IllegalInstructionFault,
    InvalidInstructionError,
    MemoryFault,
    ResourceLimitExceeded,
)
from repro.isa.encoding import decode
from repro.isa.opcodes import CONDITIONAL_JUMPS, Op
from repro.vm.memory import CHECK_FULL, CHECK_WRITE_ONLY
from repro.vm.syscalls import ACTION_EXIT

#: Maximum number of guest instructions translated into one superblock.
MAX_SUPERBLOCK_INSTRUCTIONS = 256

#: Backwards-compatible alias (the pre-superblock engine's name).
MAX_FRAGMENT_INSTRUCTIONS = MAX_SUPERBLOCK_INSTRUCTIONS

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000


@dataclass(slots=True)
class Fragment:
    """One translated code fragment (a superblock trace)."""

    entry: int                    # guest address of the first instruction
    func: Callable                # compiled fragment: (vm, regs, mem, buf, *exits)
    instruction_count: int        # guest instructions along the full trace
    end: int                      # guest address where the trace stopped
    source: str                   # generated Python source (for inspection/tests)
    exit_targets: tuple[int, ...] = ()   # static successor pc per chainable exit


def _signed(value: int) -> int:
    return value - 0x100000000 if value >= 0x80000000 else value


def _signed_division(dividend: int, divisor: int, want_remainder: bool) -> int:
    """C-style truncating signed division / remainder on 32-bit values."""
    if divisor == 0:
        raise DivisionFault("division by zero")
    dividend_signed = _signed(dividend)
    divisor_signed = _signed(divisor)
    quotient = abs(dividend_signed) // abs(divisor_signed)
    if (dividend_signed < 0) != (divisor_signed < 0):
        quotient = -quotient
    if want_remainder:
        return (dividend_signed - quotient * divisor_signed) & _MASK
    return quotient & _MASK


def _unsigned_division(dividend: int, divisor: int, want_remainder: bool) -> int:
    if divisor == 0:
        raise DivisionFault("division by zero")
    return (dividend % divisor if want_remainder else dividend // divisor) & _MASK


def _memory_fault(address: int, size: int, kind: str):
    raise MemoryFault(address, size, kind)


#: Instructions between wall-clock deadline checks when one is armed.  The
#: generated fragments and the dispatcher already compare ``vm.icount``
#: against ``vm.budget`` on every fragment exit and loop back-edge; with a
#: deadline active, ``vm.budget`` is lowered to a rolling *checkpoint* so
#: those very comparisons bring execution into :func:`_budget_exceeded`
#: about every quantum, where the (comparatively expensive) time check
#: runs.  Fragment source text is untouched, preserving the process-wide
#: compile memo.
DEADLINE_CHECK_INTERVAL = 250_000


def _budget_exceeded(vm):
    """Fragment/dispatcher budget stop: hard limit, deadline, or checkpoint.

    Reached whenever ``vm.icount > vm.budget``.  With no deadline armed,
    ``vm.budget`` *is* the hard instruction budget and this always raises.
    With a deadline armed, ``vm.budget`` is a rolling checkpoint below the
    hard budget: enforce the hard budget, then the wall clock, then slide
    the checkpoint forward and resume.
    """
    hard = getattr(vm, "hard_budget", vm.budget)
    if vm.icount > hard:
        raise ResourceLimitExceeded(
            f"decoder exceeded its instruction budget ({hard})"
        )
    deadline = vm.deadline
    if deadline is not None and monotonic() >= deadline:
        raise DeadlineExceeded(
            "decoder exceeded its wall-clock deadline",
            deadline=vm.limits_in_effect.max_wall_seconds,
            instructions=vm.icount,
        )
    vm.budget = min(hard, vm.icount + DEADLINE_CHECK_INTERVAL)


#: Packers/unpackers for inlined guest memory access.  ``unpack_from`` and
#: ``pack_into`` operate on the backing bytearray with no intermediate bytes
#: object (3-4x cheaper than ``int.from_bytes`` over a slice) and raise
#: ``struct.error`` on any overrun, so even unchecked-policy accesses can
#: never escape or resize the sandbox.
_U32 = struct.Struct("<I").unpack_from
_P32 = struct.Struct("<I").pack_into
_U16 = struct.Struct("<H").unpack_from
_P16 = struct.Struct("<H").pack_into

#: Globals made available to generated fragment code.
_FRAGMENT_GLOBALS = {
    "_sdiv": _signed_division,
    "_udiv": _unsigned_division,
    "_flt": _memory_fault,
    "_over": _budget_exceeded,
    "_u32": _U32,
    "_p32": _P32,
    "_u16": _U16,
    "_p16": _P16,
    "ACTION_EXIT": ACTION_EXIT,
}

#: Condition expressions over the hoisted condition-code locals.  Signed
#: comparisons use the sign-bias trick: for 32-bit unsigned a, b it holds
#: that signed(a) < signed(b)  iff  (a ^ 0x80000000) < (b ^ 0x80000000).
_CONDITION_EXPR = {
    Op.JE: "cca == ccb",
    Op.JNE: "cca != ccb",
    Op.JLTU: "cca < ccb",
    Op.JLEU: "cca <= ccb",
    Op.JGTU: "cca > ccb",
    Op.JGEU: "cca >= ccb",
    Op.JLTS: f"(cca ^ {_SIGN}) < (ccb ^ {_SIGN})",
    Op.JLES: f"(cca ^ {_SIGN}) <= (ccb ^ {_SIGN})",
    Op.JGTS: f"(cca ^ {_SIGN}) > (ccb ^ {_SIGN})",
    Op.JGES: f"(cca ^ {_SIGN}) >= (ccb ^ {_SIGN})",
}

#: 2**32 - 2**8 and 2**32 - 2**16: adding these is (x - 2**n) & MASK for the
#: sign-extension of 8- and 16-bit loads, with no masking needed.
_EXT8 = (1 << 32) - (1 << 8)
_EXT16 = (1 << 32) - (1 << 16)

#: Process-wide memo of compiled fragment sources.  Fragment source text is a
#: pure function of the trace bytes and the translator configuration, and a
#: Python code object is immutable, so two VMs running the same decoder image
#: (back-to-back members under an ALWAYS_FRESH policy, parallel sessions, a
#: long-lived archive server) can share the *compilation* even when they do
#: not share a fragment cache.  ``compile`` is by far the most expensive step
#: of translation; the memo turns retranslation into decode + codegen only.
_CODE_MEMO: dict[str, object] = {}
_CODE_MEMO_LIMIT = 4096
#: The memo is process-wide shared state: the in-process thread pool of
#: :mod:`repro.parallel` runs several translators concurrently, so every
#: read-modify-write of the memo must hold this lock.  ``compile`` itself
#: runs outside the lock -- two threads racing to compile the same source
#: waste one compilation, never correctness.
_CODE_MEMO_LOCK = threading.Lock()


class Translator:
    """Scans guest code and produces superblock :class:`Fragment` objects.

    Args:
        memory: the guest sandbox (code bytes and check policy source).
        text_start, text_end: the executable region recorded by the loader.
        superblock_limit: maximum guest instructions per trace (``None``
            uses :data:`MAX_SUPERBLOCK_INSTRUCTIONS`; ``1`` degenerates to
            one instruction per fragment, for ablations).
        chain: emit back-patchable exits for statically known successors.
            Disabled together with the fragment cache, since a chained exit
            is itself a cached translation.
        proved_reads, proved_writes: instruction addresses whose memory
            access the static verifier (:mod:`repro.analysis`) proved in
            bounds for every sandbox of at least the report's ``min_size``
            bytes; their guards are dropped.  The caller is responsible for
            checking ``min_size`` against the live sandbox before passing
            these in.
    """

    def __init__(self, memory, text_start: int, text_end: int, *,
                 superblock_limit: int | None = None, chain: bool = True,
                 known_entries=None,
                 proved_reads: frozenset = frozenset(),
                 proved_writes: frozenset = frozenset()):
        self._memory = memory
        self._text_start = text_start
        self._text_end = text_end
        self._limit = superblock_limit or MAX_SUPERBLOCK_INSTRUCTIONS
        self._chain = chain
        #: Entry points already translated (the code cache's history).  A
        #: trace that reaches one of these stops and chains to the existing
        #: fragment instead of duplicating its tail -- the same reason vx32
        #: ends fragments at known translation boundaries.
        self._known_entries = known_entries if known_entries is not None else set()
        self._check_reads = memory.check_policy == CHECK_FULL
        self._check_writes = memory.check_policy in (CHECK_FULL, CHECK_WRITE_ONLY)
        self._proved_reads = proved_reads
        self._proved_writes = proved_writes
        #: Bounds guards dropped on static-analysis evidence (cumulative
        #: across every trace this translator builds).
        self.guards_elided = 0

    # -- trace construction ---------------------------------------------------

    def translate(self, entry: int) -> Fragment:
        """Translate the superblock starting at guest address ``entry``."""
        text_start = self._text_start
        text_end = self._text_end
        if not text_start <= entry < text_end:
            raise IllegalInstructionFault(
                f"jump target outside the code segment: 0x{entry:08x}"
            )
        code = self._memory.buffer
        chain = self._chain
        check_reads = self._check_reads
        check_writes = self._check_writes

        body: list[str] = []
        written: set[int] = set()       # guest registers assigned so far
        guards: set[int] = set()        # access widths needing a bounds local
        exits: list[int] = []           # static successor pc per chainable exit
        visited: set[int] = set()       # trace-local pcs (bounds trace growth)
        cc_written = False              # condition codes assigned in this trace
        cc_loaded = False               # entry must load vm.cc into locals

        #: Spill sites are emitted as placeholders and expanded during
        #: assembly with the *whole-trace* written sets.  This matters for
        #: looping fragments: a side exit positioned early in the loop body
        #: must still write back registers that instructions *after* it
        #: modified on previous iterations.  (For straight-line traces the
        #: extra spills write back unmodified entry values -- harmless.)
        SPILL = "\x00spill\x00"

        def spill_lines() -> list[str]:
            """Placeholder for the register/condition-code write-back."""
            return [SPILL]

        def exit_lines(executed: int, *, target: int | None = None,
                       expr: str | None = None) -> list[str]:
            """One fragment exit: account instructions, spill, leave."""
            lines = [f"vm.icount += {executed}"]
            lines += spill_lines()
            if expr is not None:                       # indirect: dynamic pc
                lines.append(f"return {expr}")
            elif chain:                                # back-patchable slot
                slot = len(exits)
                exits.append(target)
                lines.append(f"return X{slot} or {-(slot + 1)}")
            else:
                lines.append(f"return {target}")
            return lines

        #: Per-register value upper bounds along the linear trace.  The
        #: entry assumption is top (2**32 - 1, every register invariant), so
        #: the analysis stays sound across in-fragment back-edges: each
        #: iteration re-enters at the trace head, whose assumptions are the
        #: weakest.  Whenever an arithmetic result provably stays below
        #: 2**32 the ``& 0xffffffff`` normalisation is elided.
        bounds = [_MASK] * 8

        #: Common-subexpression state for guest addresses and bounds checks.
        #: vxc emits heavily frame-pointer-relative code, so the same
        #: ``r6 + disp`` address is computed (and checked) many times in a
        #: row; computing it into a local once and letting a wider check
        #: subsume narrower ones removes most of that cost.  Both caches are
        #: invalidated whenever the base register is rewritten; inside a
        #: looping fragment every cached local is recomputed at its original
        #: definition site each iteration, so linear reasoning stays sound.
        addr_vars: dict[tuple[int, int], str] = {}
        guarded: dict[str, int] = {}

        def invalidate(reg: int) -> None:
            for key in [k for k in addr_vars if k[0] == reg]:
                guarded.pop(addr_vars.pop(key), None)
            guarded.pop(f"r{reg}", None)

        def addr_of(base: int, disp: int) -> tuple[list[str], str]:
            """Lines + local-variable name holding a guest address."""
            if disp == 0:
                return [], f"r{base}"
            key = (base, disp)
            var = addr_vars.get(key)
            if var is not None:
                return [], var
            var = f"a{len(addr_vars)}_{base}"
            addr_vars[key] = var
            if 0 <= disp and bounds[base] + disp <= _MASK:
                return [f"{var} = r{base} + {disp}"], var
            return [f"{var} = r{base} + {disp} & {_MASK}"], var

        proved_reads = self._proved_reads
        proved_writes = self._proved_writes

        def guard(var: str, width: int, kind: str) -> list[str]:
            if guarded.get(var, 0) >= width:
                return []        # already covered by a wider check (CSE)
            if pc in (proved_writes if kind == "write" else proved_reads):
                # The verifier proved this site in bounds for any sandbox at
                # least min_size bytes large (checked by our caller).  The
                # elided site is deliberately NOT entered in ``guarded``: a
                # later unproved access through the same local must still
                # emit its own check.
                self.guards_elided += 1
                return []
            guarded[var] = width
            guards.add(width)
            return [f"if {var} > s{width}: _flt({var}, {width}, {kind!r})"]

        looping = False

        def back_edge_lines(executed: int) -> list[str]:
            """Jump back to the fragment entry *inside* the fragment.

            No spill or reload is needed -- the hoisted locals stay live --
            but the instruction budget must be enforced here, because a
            looping fragment may not return to the dispatcher for a long
            time (or, for a guest spinning forever, at all).
            """
            return [
                f"vm.icount += {executed}",
                "if vm.icount > vm.budget: _over(vm)",
                "continue",
            ]

        pc = entry
        count = 0
        limit = self._limit
        while True:
            if pc == entry and count:
                # A direct back-edge to the trace head: compile a real loop
                # instead of exiting, so iterations cost no dispatch, no
                # register spill/reload and no fragment call at all.
                looping = True
                body += back_edge_lines(count)
                break
            if (count >= limit or pc in visited
                    or (count and pc in self._known_entries)):
                # Trace budget exhausted, the trace rejoined itself, or we
                # ran into code that already has its own fragment: leave
                # through a chainable exit to wherever we stopped.
                body += exit_lines(count, target=pc)
                break
            visited.add(pc)
            try:
                insn = decode(code, pc)
            except InvalidInstructionError as error:
                if count == 0:
                    raise IllegalInstructionFault(str(error)) from None
                # Undecodable bytes beyond a side exit: fault lazily, only if
                # execution actually falls through to them.
                body += exit_lines(count, target=pc)
                break
            if pc + insn.length > text_end:
                if count == 0:
                    raise IllegalInstructionFault(
                        f"instruction at 0x{pc:08x} straddles the code segment end"
                    )
                body += exit_lines(count, target=pc)
                break
            count += 1
            op = insn.op
            rd = insn.rd
            rs = insn.rs
            imm = insn.imm
            next_pc = pc + insn.length

            # -- control flow (trace shaping) --------------------------------
            if op is Op.JMP:
                target = (next_pc + imm) & _MASK
                if not text_start <= target < text_end:
                    body += exit_lines(count, target=target)
                    break
                pc = target               # follow the direct branch in-trace
                continue
            if op in CONDITIONAL_JUMPS:
                target = (next_pc + imm) & _MASK
                if not cc_written and not cc_loaded:
                    cc_loaded = True      # taken edge reads inherited flags
                body.append(f"if {_CONDITION_EXPR[op]}:")
                if target == entry:
                    looping = True
                    body += ["    " + line
                             for line in back_edge_lines(count)]
                else:
                    body += ["    " + line
                             for line in exit_lines(count, target=target)]
                pc = next_pc              # keep translating the fall-through
                continue
            if op is Op.CALL:
                target = (next_pc + imm) & _MASK
                body.append(f"r7 = r7 - 4 & {_MASK}")
                invalidate(7)     # the pre-decrement guard no longer covers r7
                if check_writes:
                    body += guard("r7", 4, "write")
                body.append(f"_p32(buf, r7, {next_pc})")
                written.add(7)
                body += exit_lines(count, target=target)
                break
            if op is Op.RET:
                if check_reads:
                    body += guard("r7", 4, "read")
                body.append("t = _u32(buf, r7)[0]")
                body.append(f"r7 = r7 + 4 & {_MASK}")
                written.add(7)
                body += exit_lines(count, expr="t")
                break
            if op is Op.JMPR:
                body += exit_lines(count, expr=f"r{rd}")
                break
            if op is Op.CALLR:
                body.append(f"r7 = r7 - 4 & {_MASK}")
                invalidate(7)     # the pre-decrement guard no longer covers r7
                if check_writes:
                    body += guard("r7", 4, "write")
                body.append(f"_p32(buf, r7, {next_pc})")
                written.add(7)
                body += exit_lines(count, expr=f"r{rd}")
                break
            if op is Op.VXCALL:
                # The handler may grow guest memory, so the trace must end
                # here (the bounds locals would go stale); the continuation
                # is still statically known and therefore chainable.
                body.append(f"vm.icount += {count}")
                body += spill_lines()
                body.append(
                    "t, act = vm.syscall_handler.dispatch(r0, r1, r2, r3)")
                body.append(f"r0 = t & {_MASK}")
                body.append("r[0] = r0")
                body.append("if act == ACTION_EXIT:")
                body.append("    vm.halted = True")
                if chain:
                    slot = len(exits)
                    exits.append(next_pc)
                    body.append(f"return X{slot} or {-(slot + 1)}")
                else:
                    body.append(f"return {next_pc}")
                break
            if op is Op.HALT:
                body.append(f"vm.icount += {count}")
                body += spill_lines()
                body.append("vm.halted = True")
                body.append("vm.syscall_handler.exit_code = 0")
                body.append(f"return {next_pc}")
                break

            # -- straight-line instructions ----------------------------------
            lines, touched, touches_cc = self._straightline(
                op, rd, rs, imm, pc, addr_of, guard, invalidate,
                check_reads, check_writes, bounds)
            if touches_cc:
                cc_written = True
            body += lines
            written |= touched
            for reg in touched:
                invalidate(reg)
            pc = next_pc

        # -- assemble and compile the fragment --------------------------------
        params = "".join(f", X{i}=None" for i in range(len(exits)))
        prologue = ["r0, r1, r2, r3, r4, r5, r6, r7 = r"]
        if guards:
            if len(guards) == 1:
                width = next(iter(guards))
                prologue.append(f"s{width} = mem.size - {width}")
            else:
                prologue.append("size = mem.size")
                prologue += [f"s{w} = size - {w}" for w in sorted(guards)]
        if cc_written:
            # Exits spill the condition codes unconditionally, so the locals
            # must exist even on a path that exits before the first CMP.
            cc_loaded = True
        if cc_loaded:
            prologue.append("cca, ccb = vm.cc")
        final_spill: list[str] = []
        if written:
            if len(written) >= 4:
                final_spill.append("r[:] = r0, r1, r2, r3, r4, r5, r6, r7")
            else:
                final_spill.append("; ".join(
                    f"r[{i}] = r{i}" for i in sorted(written)))
        if cc_written:
            final_spill.append("vm.cc = (cca, ccb)")
        expanded: list[str] = []
        for line in body:
            if line.endswith(SPILL):
                indent = line[: -len(SPILL)]
                expanded += [indent + spill for spill in final_spill]
            else:
                expanded.append(line)
        body = expanded
        if looping:
            body = ["while True:"] + ["    " + line for line in body]
        source = "\n".join(
            [f"def _fragment(vm, r, mem, buf{params}):"]
            + ["    " + line for line in prologue + body]
        )
        namespace = dict(_FRAGMENT_GLOBALS)
        with _CODE_MEMO_LOCK:
            code_object = _CODE_MEMO.get(source)
        if code_object is None:
            code_object = compile(source, f"<vxa-fragment-0x{entry:x}>", "exec")
            with _CODE_MEMO_LOCK:
                if len(_CODE_MEMO) >= _CODE_MEMO_LIMIT:
                    _CODE_MEMO.clear()
                _CODE_MEMO[source] = code_object
        exec(code_object, namespace)
        return Fragment(
            entry=entry,
            func=namespace["_fragment"],
            instruction_count=count,
            end=pc,
            source=source,
            exit_targets=tuple(exits),
        )

    # -- per-instruction code generation ---------------------------------------

    def _straightline(self, op, rd, rs, imm, pc, addr_of, guard, invalidate,
                      check_reads, check_writes, bounds):
        """Emit code for one non-control-flow instruction.

        Returns ``(lines, written_registers, touches_cc)`` and updates
        ``bounds`` -- the per-register value upper bounds used to elide
        ``& 0xffffffff`` normalisations that provably cannot matter.
        """
        M = _MASK

        def alu(nb: int, expr: str):
            """Emit ``r{rd} = expr``, masking only when the bound demands it."""
            if nb > M:
                bounds[rd] = M
                return [f"r{rd} = {expr} & {M}"], {rd}, False
            bounds[rd] = nb
            return [f"r{rd} = {expr}"], {rd}, False

        # Data movement -------------------------------------------------------
        if op is Op.MOVI:
            bounds[rd] = imm
            return [f"r{rd} = {imm}"], {rd}, False
        if op is Op.MOV:
            bounds[rd] = bounds[rs]
            return [f"r{rd} = r{rs}"], {rd}, False
        if op is Op.LD32:
            setup, a = addr_of(rs, imm)
            if check_reads:
                setup += guard(a, 4, "read")
            setup.append(f"r{rd} = _u32(buf, {a})[0]")
            bounds[rd] = M
            return setup, {rd}, False
        if op is Op.LD16U:
            setup, a = addr_of(rs, imm)
            if check_reads:
                setup += guard(a, 2, "read")
                setup.append(f"r{rd} = buf[{a}] | buf[{a}+1] << 8")
            else:
                setup.append(f"r{rd} = _u16(buf, {a})[0]")
            bounds[rd] = 0xFFFF
            return setup, {rd}, False
        if op is Op.LD8U:
            setup, a = addr_of(rs, imm)
            if check_reads:
                setup += guard(a, 1, "read")
            setup.append(f"r{rd} = buf[{a}]")
            bounds[rd] = 0xFF
            return setup, {rd}, False
        if op is Op.LD16S:
            setup, a = addr_of(rs, imm)
            if check_reads:
                setup += guard(a, 2, "read")
                setup.append(f"t = buf[{a}] | buf[{a}+1] << 8")
            else:
                setup.append(f"t = _u16(buf, {a})[0]")
            setup.append(f"r{rd} = t + {_EXT16} if t >= 32768 else t")
            bounds[rd] = M
            return setup, {rd}, False
        if op is Op.LD8S:
            setup, a = addr_of(rs, imm)
            if check_reads:
                setup += guard(a, 1, "read")
            setup.append(f"t = buf[{a}]")
            setup.append(f"r{rd} = t + {_EXT8} if t >= 128 else t")
            bounds[rd] = M
            return setup, {rd}, False
        if op is Op.ST32:
            setup, a = addr_of(rd, imm)
            if check_writes:
                setup += guard(a, 4, "write")
            setup.append(f"_p32(buf, {a}, r{rs})")
            return setup, set(), False
        if op is Op.ST16:
            setup, a = addr_of(rd, imm)
            if check_writes:
                setup += guard(a, 2, "write")
            if bounds[rs] <= 0xFFFF:
                setup.append(f"_p16(buf, {a}, r{rs})")
            else:
                setup.append(f"_p16(buf, {a}, r{rs} & 65535)")
            return setup, set(), False
        if op is Op.ST8:
            setup, a = addr_of(rd, imm)
            if check_writes:
                setup += guard(a, 1, "write")
            if bounds[rs] <= 0xFF:
                setup.append(f"buf[{a}] = r{rs}")
            else:
                setup.append(f"buf[{a}] = r{rs} & 255")
            return setup, set(), False
        if op is Op.LEA:
            if imm == 0:
                bounds[rd] = bounds[rs]
                return [f"r{rd} = r{rs}"], {rd}, False
            if 0 <= imm and bounds[rs] + imm <= M:
                bounds[rd] = bounds[rs] + imm
                return [f"r{rd} = r{rs} + {imm}"], {rd}, False
            bounds[rd] = M
            return [f"r{rd} = r{rs} + {imm} & {M}"], {rd}, False
        if op is Op.PUSH:
            lines = [f"r7 = r7 - 4 & {M}"]
            invalidate(7)         # the pre-decrement guard no longer covers r7
            if check_writes:
                lines += guard("r7", 4, "write")
            lines.append(f"_p32(buf, r7, r{rd})")
            bounds[7] = M
            return lines, {7}, False
        if op is Op.POP:
            lines = []
            if check_reads:
                lines += guard("r7", 4, "read")
            lines.append(f"r{rd} = _u32(buf, r7)[0]")
            lines.append(f"r7 = r7 + 4 & {M}")
            bounds[rd] = M
            bounds[7] = M
            return lines, {rd, 7}, False

        # ALU register-register -------------------------------------------------
        if op is Op.ADD:
            return alu(bounds[rd] + bounds[rs], f"r{rd} + r{rs}")
        if op is Op.SUB:
            bounds[rd] = M
            return [f"r{rd} = r{rd} - r{rs} & {M}"], {rd}, False
        if op is Op.MUL:
            return alu(bounds[rd] * bounds[rs], f"r{rd} * r{rs}")
        if op is Op.DIVU:
            bounds[rd] = M
            return [f"r{rd} = _udiv(r{rd}, r{rs}, False)"], {rd}, False
        if op is Op.REMU:
            bounds[rd] = M
            return [f"r{rd} = _udiv(r{rd}, r{rs}, True)"], {rd}, False
        if op is Op.DIVS:
            bounds[rd] = M
            return [f"r{rd} = _sdiv(r{rd}, r{rs}, False)"], {rd}, False
        if op is Op.REMS:
            bounds[rd] = M
            return [f"r{rd} = _sdiv(r{rd}, r{rs}, True)"], {rd}, False
        if op is Op.AND:
            bounds[rd] = min(bounds[rd], bounds[rs])
            return [f"r{rd} &= r{rs}"], {rd}, False
        if op is Op.OR:
            bounds[rd] = (1 << max(bounds[rd].bit_length(),
                                   bounds[rs].bit_length())) - 1
            return [f"r{rd} |= r{rs}"], {rd}, False
        if op is Op.XOR:
            bounds[rd] = (1 << max(bounds[rd].bit_length(),
                                   bounds[rs].bit_length())) - 1
            return [f"r{rd} ^= r{rs}"], {rd}, False
        if op is Op.SHL:
            bounds[rd] = M
            return [f"r{rd} = r{rd} << (r{rs} & 31) & {M}"], {rd}, False
        if op is Op.SHRU:
            return [f"r{rd} >>= r{rs} & 31"], {rd}, False
        if op is Op.SHRS:
            if bounds[rd] < _SIGN:
                # The sign bit is provably clear: arithmetic == logical shift.
                return [f"r{rd} >>= r{rs} & 31"], {rd}, False
            bounds[rd] = M
            return [
                f"r{rd} = ((r{rd} ^ {_SIGN}) - {_SIGN}) >> (r{rs} & 31) & {M}"
            ], {rd}, False
        if op is Op.CMP:
            return [f"cca = r{rd}; ccb = r{rs}"], set(), True
        if op is Op.NOT:
            bounds[rd] = M
            return [f"r{rd} = ~r{rs} & {M}"], {rd}, False
        if op is Op.NEG:
            bounds[rd] = M
            return [f"r{rd} = -r{rs} & {M}"], {rd}, False

        # ALU register-immediate --------------------------------------------------
        if op is Op.ADDI:
            return alu(bounds[rd] + imm, f"r{rd} + {imm}")
        if op is Op.SUBI:
            bounds[rd] = M
            return [f"r{rd} = r{rd} - {imm} & {M}"], {rd}, False
        if op is Op.MULI:
            return alu(bounds[rd] * imm, f"r{rd} * {imm}")
        if op is Op.ANDI:
            bounds[rd] = min(bounds[rd], imm)
            return [f"r{rd} &= {imm}"], {rd}, False
        if op is Op.ORI:
            bounds[rd] = (1 << max(bounds[rd].bit_length(),
                                   imm.bit_length())) - 1
            return [f"r{rd} |= {imm}"], {rd}, False
        if op is Op.XORI:
            bounds[rd] = (1 << max(bounds[rd].bit_length(),
                                   imm.bit_length())) - 1
            return [f"r{rd} ^= {imm}"], {rd}, False
        if op is Op.SHLI:
            return alu(bounds[rd] << (imm & 31), f"r{rd} << {imm & 31}")
        if op is Op.SHRUI:
            bounds[rd] >>= imm & 31
            return [f"r{rd} >>= {imm & 31}"], {rd}, False
        if op is Op.SHRSI:
            if bounds[rd] < _SIGN:
                bounds[rd] >>= imm & 31
                return [f"r{rd} >>= {imm & 31}"], {rd}, False
            bounds[rd] = M
            return [
                f"r{rd} = ((r{rd} ^ {_SIGN}) - {_SIGN}) >> {imm & 31} & {M}"
            ], {rd}, False
        if op is Op.CMPI:
            return [f"cca = r{rd}; ccb = {imm}"], set(), True
        if op is Op.NOP:
            return [], set(), False
        raise IllegalInstructionFault(
            f"unhandled opcode {op!r} at 0x{pc:08x}")  # pragma: no cover


def run_translator(vm) -> None:
    """Run ``vm`` until exit/halt/fault using chained superblock fragments.

    The trampoline below is the analogue of vx32's dispatch loop.  A fragment
    returns one of three things:

    * a :class:`Fragment` -- a back-patched direct edge; continue there with
      no cache lookup (a *chained* transition),
    * a negative ``int`` -- an unlinked chainable exit; bit-inverted it is
      the exit slot whose static target must be resolved once and patched
      into the fragment's defaults,
    * a non-negative ``int`` -- a dynamically computed successor address
      (indirect branch); resolve it through the fragment cache's hash table.
    """
    memory = vm.memory
    regs = vm.regs
    stats = vm.stats
    cache = vm.code_cache
    use_cache = vm.use_fragment_cache
    chain = use_cache and vm.chain_fragments
    limits = vm.limits_in_effect          # the per-run (input-scaled) limits
    budget = limits.max_instructions
    if budget is None:
        budget = float("inf")
    vm.hard_budget = budget
    # With a deadline armed, vm.budget becomes a rolling checkpoint (see
    # _budget_exceeded); otherwise it is the hard budget, exactly as before.
    if vm.deadline is None:
        vm.budget = budget
    else:
        vm.budget = min(budget, DEADLINE_CHECK_INTERVAL)
    max_fragments = limits.max_fragments
    # Analysis-driven guard elision: only with a clean report whose proofs
    # cover the live sandbox (memory growth is monotone, so the size check
    # cannot be invalidated mid-run).
    proved_reads: frozenset = frozenset()
    proved_writes: frozenset = frozenset()
    report = getattr(vm, "analysis_report", None)
    if (getattr(vm, "analysis_elision", False) and report is not None
            and report.ok and memory.size >= report.min_size):
        proved_reads = report.proved_reads
        proved_writes = report.proved_writes
    translator = Translator(
        memory, vm.text_start, vm.text_end,
        superblock_limit=vm.superblock_limit, chain=chain,
        known_entries=cache.known if use_cache else None,
        proved_reads=proved_reads, proved_writes=proved_writes,
    )
    fragments = cache.fragments
    lru_capped = cache.limit is not None
    evictions_before = cache.evictions
    buf = memory.buffer

    blocks = 0
    misses = 0
    retranslated = 0
    chained = 0
    vm.icount = 0
    pc = vm.pc

    def resolve(target: int) -> Fragment:
        nonlocal misses, retranslated
        fragment = fragments.get(target) if use_cache else None
        if fragment is not None:
            if lru_capped:
                cache.touch(target)
            return fragment
        # The limit bounds translation-table memory.  An LRU cap above the
        # ceiling leaves this check to fire exactly as before; a cap below
        # it supersedes the check with a stricter bound (eviction keeps the
        # table under the cap, and translation work stays bounded by the
        # instruction budget -- every translation is a block transition).
        if use_cache and len(fragments) >= max_fragments:
            raise ResourceLimitExceeded(
                f"decoder exceeded the translated-fragment limit "
                f"({max_fragments})"
            )
        fragment = translator.translate(target)
        misses += 1
        if cache.note_translation(target):
            retranslated += 1
        if use_cache:
            cache.store(target, fragment)
        return fragment

    try:
        frag = resolve(pc)
        func = frag.func
        while True:
            blocks += 1
            try:
                ret = func(vm, regs, memory, buf)
            except (IndexError, struct.error) as error:
                # Unchecked-policy access past the sandbox: the struct
                # packers bounds-check against the backing store, so even
                # with guards elided nothing escapes or resizes the sandbox.
                # Only errors raised by the fragment's own code qualify --
                # an IndexError out of the syscall layer (reached via a
                # VXCALL inside the fragment) is a host bug and must
                # propagate loudly, not masquerade as a guest fault.
                traceback = error.__traceback__
                while traceback.tb_next is not None:
                    traceback = traceback.tb_next
                origin = traceback.tb_frame.f_code.co_filename
                if not origin.startswith("<vxa-fragment-"):
                    raise
                # The faulting address is not recoverable here; report the
                # fragment entry as the locus.
                raise MemoryFault(pc, 1, "access") from None
            if vm.halted:
                if ret.__class__ is int:
                    pc = ret if ret >= 0 else frag.exit_targets[-1 - ret]
                else:
                    pc = ret.entry
                break
            if vm.icount > vm.budget:
                _budget_exceeded(vm)
            if ret.__class__ is int:
                if ret >= 0:
                    # Indirect branch: the one remaining hash lookup.
                    pc = ret
                    frag = resolve(ret)
                    func = frag.func
                else:
                    # First crossing of a direct edge: resolve the successor
                    # and back-patch it into the exit slot.
                    slot = -1 - ret
                    pc = frag.exit_targets[slot]
                    successor = resolve(pc)
                    if chain:
                        defaults = list(func.__defaults__)
                        defaults[slot] = successor
                        func.__defaults__ = tuple(defaults)
                    frag = successor
                    func = successor.func
            else:
                # Chained transition: no lookup, no patching.
                chained += 1
                frag = ret
                func = ret.func
                pc = ret.entry
    finally:
        vm.pc = pc
        hits = blocks - misses if blocks >= misses else 0
        stats.instructions += vm.icount
        stats.blocks_executed += blocks
        stats.fragments_translated += misses
        stats.fragment_cache_misses += misses
        stats.fragment_cache_hits += hits
        stats.chained_branches += chained
        stats.retranslations += retranslated
        stats.guards_elided += translator.guards_elided
        stats.evictions += cache.evictions - evictions_before
        cache.record_run(hits=hits, misses=misses, chained_branches=chained,
                         retranslations=retranslated)
