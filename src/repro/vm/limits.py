"""Execution resource limits for guest decoders.

The paper's threat model (section 2.4) assumes a decoder may be buggy or
actively malicious.  Besides memory isolation, a practical archive reader
must also bound how much CPU time and output a decoder may consume, so a
malicious decoder cannot wedge the reader in an infinite loop or fill the
disk.  vx32 leaves this to the embedding application; here the limits are an
explicit, testable part of the VM contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExecutionLimits:
    """Resource ceilings applied to one decoder run.

    Attributes:
        max_instructions: guest instructions allowed before the run is
            aborted with :class:`~repro.errors.ResourceLimitExceeded`.
            ``None`` means unlimited.
        max_output_bytes: bytes the decoder may write to stdout.  ``None``
            means unlimited.
        max_stderr_bytes: bytes of diagnostics the decoder may emit.
        max_memory_bytes: ceiling for ``setperm`` growth; also caps the
            initial sandbox size.
        max_fragments: ceiling on distinct translated code fragments, which
            bounds translation-cache memory for adversarial self-modifying
            control flow.
        max_wall_seconds: wall-clock deadline for one decoder run.  The
            engines piggyback a cheap time check on their existing fuel
            checks, so a decoder wedged in a loop raises
            :class:`~repro.errors.DeadlineExceeded` within one check
            quantum of the deadline instead of burning its whole (huge)
            instruction budget.  ``None`` (default) disables the check.
    """

    max_instructions: int | None = 2_000_000_000
    max_output_bytes: int | None = 1 << 31
    max_stderr_bytes: int = 1 << 16
    max_memory_bytes: int = 64 << 20
    max_fragments: int = 1 << 20
    max_wall_seconds: float | None = None

    def scaled_for_input(self, input_size: int) -> "ExecutionLimits":
        """Derive limits proportional to the encoded input size.

        Archive readers use this so that a tiny malicious file cannot request
        an enormous amount of work: the instruction budget grows linearly
        with the encoded size, with a generous floor.
        """
        budget = max(200_000_000, input_size * 40_000)
        output = max(1 << 26, input_size * 4096)
        # Scaling provides a *floor* proportional to the input; it must never
        # raise an explicitly configured ceiling.
        if self.max_instructions is not None:
            budget = min(budget, self.max_instructions)
        if self.max_output_bytes is not None:
            output = min(output, self.max_output_bytes)
        return ExecutionLimits(
            max_instructions=budget,
            max_output_bytes=output,
            max_stderr_bytes=self.max_stderr_bytes,
            max_memory_bytes=self.max_memory_bytes,
            max_fragments=self.max_fragments,
            max_wall_seconds=self.max_wall_seconds,
        )


@dataclass
class ExecutionStats:
    """Counters collected while running a decoder.

    These feed the Figure 7 / ablation benchmarks and the VM's own tests.
    """

    instructions: int = 0
    blocks_executed: int = 0
    fragments_translated: int = 0
    fragment_cache_hits: int = 0
    fragment_cache_misses: int = 0
    chained_branches: int = 0       # transitions over back-patched direct edges
    retranslations: int = 0         # translations of an already-seen entry
    evictions: int = 0              # fragments dropped by the LRU entry cap
    guards_elided: int = 0          # bounds guards dropped on static proofs
    syscalls: dict[str, int] = field(default_factory=dict)
    bytes_read: int = 0
    bytes_written: int = 0
    streams_decoded: int = 0

    def record_syscall(self, name: str) -> None:
        self.syscalls[name] = self.syscalls.get(name, 0) + 1

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate ``other`` into this stats object (for multi-file runs)."""
        self.instructions += other.instructions
        self.blocks_executed += other.blocks_executed
        self.fragments_translated += other.fragments_translated
        self.fragment_cache_hits += other.fragment_cache_hits
        self.fragment_cache_misses += other.fragment_cache_misses
        self.chained_branches += other.chained_branches
        self.retranslations += other.retranslations
        self.evictions += other.evictions
        self.guards_elided += other.guards_elided
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.streams_decoded += other.streams_decoded
        for name, count in other.syscalls.items():
            self.syscalls[name] = self.syscalls.get(name, 0) + count
