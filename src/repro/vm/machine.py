"""The VXA virtual machine: orchestration of memory, CPU state and engines.

A :class:`VirtualMachine` plays the role the vx32 VMM plays inside vxUnZIP:
it loads one decoder ELF image into a private sandbox, binds the three
virtual file handles, runs the decoder with either the dynamic translator
(default, like vx32) or the reference interpreter, and exposes the paper's
reuse-vs-reinitialise policy for decoding several streams with one decoder
(section 2.4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.elf.reader import parse_executable
from repro.errors import VxaError
from repro.vm.code_cache import CodeCache
from repro.vm.interpreter import run_interpreter
from repro.vm.limits import ExecutionLimits, ExecutionStats
from repro.vm.loader import admit_image, load_image
from repro.vm.memory import CHECK_FULL, DEFAULT_MEMORY_SIZE, GuestMemory
from repro.vm.syscalls import StreamSet, SyscallHandler
from repro.vm.translator import run_translator

ENGINE_TRANSLATOR = "translator"
ENGINE_INTERPRETER = "interpreter"

_ENGINES = {
    ENGINE_TRANSLATOR: run_translator,
    ENGINE_INTERPRETER: run_interpreter,
}


@dataclass
class DecodeResult:
    """Outcome of running a decoder over one (or more) encoded streams."""

    output: bytes
    stderr: bytes
    exit_code: int
    stats: ExecutionStats

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


class VirtualMachine:
    """One sandboxed decoder instance.

    Args:
        image: ELF bytes (or a parsed image) of the decoder to run.
        engine: ``"translator"`` (default) or ``"interpreter"``.
        memory_size: initial sandbox size in bytes.
        limits: resource ceilings; defaults to :class:`ExecutionLimits`.
        check_policy: memory sandbox policy (``full``, ``write-only``,
            ``none``) -- see :mod:`repro.vm.memory`.
        use_fragment_cache: disable only for the fragment-cache ablation.
        code_cache: a session-owned :class:`~repro.vm.code_cache.CodeCache`
            shared with other VMs of the same decoder image; ``None`` gives
            the VM a private cache that is invalidated on :meth:`reset`.
        superblock_limit: maximum guest instructions per translated trace
            (``None`` uses the translator default; ``1`` reproduces the old
            one-basic-block engine).
        chain_fragments: back-patch direct-branch successors so the
            dispatcher's hash lookup is only paid on indirect branches
            (disable only for the chaining ablation).
        verify_images: static-analysis admission policy -- ``"off"``
            (default), ``"warn"`` or ``"reject"``.  ``"reject"`` raises
            :class:`~repro.errors.ImageVerificationError` from the
            constructor, before the image ever executes.
        analysis_elision: let the translator drop bounds guards at sites
            the static verifier proved safe (see
            :mod:`repro.analysis`); disable only for the elision ablation.
    """

    def __init__(
        self,
        image,
        *,
        engine: str = ENGINE_TRANSLATOR,
        memory_size: int = DEFAULT_MEMORY_SIZE,
        limits: ExecutionLimits | None = None,
        check_policy: str = CHECK_FULL,
        use_fragment_cache: bool = True,
        code_cache: CodeCache | None = None,
        superblock_limit: int | None = None,
        chain_fragments: bool = True,
        verify_images: str = "off",
        analysis_elision: bool = True,
    ):
        if engine not in _ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        if isinstance(image, (bytes, bytearray)):
            image = parse_executable(bytes(image))
        self._image = image
        self.engine = engine
        self._memory_size = memory_size
        self.limits = limits or ExecutionLimits()
        self._check_policy = check_policy
        self.use_fragment_cache = use_fragment_cache
        self.code_cache = code_cache if code_cache is not None else CodeCache()
        self.superblock_limit = superblock_limit
        self.chain_fragments = chain_fragments
        self.analysis_elision = analysis_elision
        self.analysis_report = self._admit(verify_images)

        # Mutable machine state, populated by reset().
        self.memory: GuestMemory | None = None
        self.regs: list[int] = [0] * 8
        self.pc = 0
        self.cc = (0, 0)
        self.halted = False
        self.icount = 0
        self.stats = ExecutionStats()
        #: Monotonic wall-clock deadline for the current run (armed by
        #: :meth:`run` from ``max_wall_seconds``); ``None`` disables it.
        self.deadline: float | None = None
        self.syscall_handler: SyscallHandler | None = None
        self.text_start = 0
        self.text_end = 0
        self.reset()

    # -- lifecycle -----------------------------------------------------------

    def _admit(self, verify_images: str):
        """Apply the static-analysis admission policy and return the report.

        In ``warn``/``reject`` modes failures surface exactly as
        :func:`repro.vm.loader.admit_image` specifies.  With verification
        off, analysis still runs opportunistically when the translator could
        use its proofs -- but purely as an optimisation, so any analysis
        failure is swallowed and simply leaves every dynamic guard in place.
        A session-shared code cache carries the report across VMs of the
        same image, so each decoder is analysed at most once per session.
        """
        report = self.code_cache.analysis
        if verify_images != "off":
            report = admit_image(self._image, verify_images, report=report)
        elif (report is None and self.analysis_elision
              and self.engine == ENGINE_TRANSLATOR):
            try:
                from repro.analysis.verify import verify_image

                report = verify_image(self._image)
            except Exception:
                report = None
        if report is not None:
            self.code_cache.set_analysis(report)
        return report

    def reset(self) -> None:
        """Re-initialise the VM with a pristine copy of the decoder image.

        This is the paper's safe default between files whose security
        attributes differ: any state a previous stream may have left in the
        sandbox is destroyed.
        """
        # Reuse the existing sandbox when its geometry is unchanged: the
        # buffer is zeroed *in place* (GuestMemory.reset preserves object
        # identity, which engine bindings and translated fragments rely on)
        # instead of paying a multi-megabyte reallocation per member.  A
        # sandbox the guest grew beyond its initial size is discarded so a
        # fresh decode never inherits a larger address space.
        if self.memory is not None and self.memory.size == self._memory_size:
            self.memory.reset()
        else:
            self.memory = GuestMemory(
                self._memory_size,
                limit=self.limits.max_memory_bytes,
                check_policy=self._check_policy,
            )
        loaded = load_image(self._image, self.memory)
        self.regs = [0] * 8
        self.regs[7] = loaded.stack_top
        self.pc = loaded.entry
        self.cc = (0, 0)
        self.halted = False
        self.text_start = loaded.text_start
        self.text_end = loaded.text_end
        # A session-shared cache survives re-initialisation: translations are
        # derived from the (identical, freshly reloaded) decoder image, never
        # from member data, so keeping them leaks nothing between files.  A
        # private cache is dropped so ALWAYS_FRESH semantics stay pristine.
        if not self.code_cache.shared:
            self.code_cache.invalidate()
        self.syscall_handler = None

    def _restart(self) -> None:
        """Reset only the CPU state, preserving memory and translated code.

        Used when the same decoder instance is reused across streams via the
        ``done`` protocol is *not* in effect but the caller still wants to
        reuse translations (see :meth:`decode` with ``reuse=True``).
        """
        loaded_entry = self._image.entry
        self.regs = [0] * 8
        self.regs[7] = (self.memory.size - 16) & ~0xF
        self.pc = loaded_entry
        self.cc = (0, 0)
        self.halted = False

    # -- execution ------------------------------------------------------------

    def attach_streams(self, streams: StreamSet, on_done=None,
                       limits: ExecutionLimits | None = None,
                       fault_syscall: int | None = None) -> None:
        """Bind stdin/stdout/stderr for the next run.

        ``fault_syscall`` is the fault-injection hook: raise an
        :class:`~repro.errors.InjectedFault` at the guest's Nth virtual
        system call (``None`` in production).
        """
        self.stats = ExecutionStats()
        self.syscall_handler = SyscallHandler(
            self.memory,
            limits or self.limits,
            self.stats,
            streams,
            on_done=on_done,
            fault_at=fault_syscall,
        )

    def run(self) -> int:
        """Run the guest until it exits, halts or faults.

        Returns the guest exit code.  Guest faults propagate as
        :class:`~repro.errors.GuestFault` subclasses; the host and the VM
        object remain usable (call :meth:`reset` to reuse it).
        """
        if self.syscall_handler is None:
            raise VxaError("attach_streams() must be called before run()")
        self._active_limits = self.syscall_handler._limits
        wall = self._active_limits.max_wall_seconds
        self.deadline = (time.monotonic() + wall) if wall else None
        engine = _ENGINES[self.engine]
        engine(self)
        code = self.syscall_handler.exit_code
        return 0 if code is None else code

    @property
    def limits_in_effect(self) -> ExecutionLimits:
        return getattr(self, "_active_limits", self.limits)

    # -- high-level decoding API -----------------------------------------------

    def decode(
        self,
        encoded: bytes,
        *,
        limits: ExecutionLimits | None = None,
        fresh: bool = True,
        fault_syscall: int | None = None,
    ) -> DecodeResult:
        """Decode one encoded stream and return the decoder's output.

        Args:
            encoded: the encoded input supplied on the decoder's stdin.
            limits: per-run resource limits (default: limits scaled to the
                input size).
            fresh: when true (the safe default), the sandbox is re-initialised
                before decoding; when false, the existing sandbox and fragment
                cache are reused (faster, see section 2.4 for the trade-off).
            fault_syscall: fault-injection hook -- fail the run at the Nth
                virtual system call (``None`` in production).
        """
        if fresh:
            self.reset()
        else:
            self._restart()
        run_limits = limits or self.limits.scaled_for_input(len(encoded))
        streams = StreamSet.from_bytes(encoded)
        self.attach_streams(streams, limits=run_limits,
                            fault_syscall=fault_syscall)
        exit_code = self.run()
        return DecodeResult(
            output=streams.stdout.getvalue(),
            stderr=streams.stderr.getvalue(),
            exit_code=exit_code,
            stats=self.stats,
        )

    def decode_many(
        self,
        encoded_streams: list[bytes],
        *,
        limits: ExecutionLimits | None = None,
    ) -> list[DecodeResult]:
        """Decode several streams with one VM instance using the ``done`` protocol.

        The decoder signals completion of each stream with the ``done``
        virtual system call; the host swaps in the next input stream without
        re-loading the decoder.  This is the paper's state-reuse optimisation
        for archives with many files sharing one decoder.
        """
        if not encoded_streams:
            return []
        results: list[DecodeResult] = []
        total_size = sum(len(stream) for stream in encoded_streams)
        run_limits = limits or self.limits.scaled_for_input(total_size)
        self.reset()

        state = {"index": 0}
        current = StreamSet.from_bytes(encoded_streams[0])

        def on_done() -> bool:
            handler = self.syscall_handler
            results.append(
                DecodeResult(
                    output=handler.streams.stdout.getvalue(),
                    stderr=handler.streams.stderr.getvalue(),
                    exit_code=0,
                    stats=self.stats,
                )
            )
            state["index"] += 1
            if state["index"] >= len(encoded_streams):
                return False
            handler.streams = StreamSet.from_bytes(encoded_streams[state["index"]])
            return True

        self.attach_streams(current, on_done=on_done, limits=run_limits)
        exit_code = self.run()
        # If the decoder exited without calling done for the final stream
        # (legacy single-stream decoders), collect its output here.
        if len(results) < len(encoded_streams) and state["index"] < len(encoded_streams):
            handler = self.syscall_handler
            results.append(
                DecodeResult(
                    output=handler.streams.stdout.getvalue(),
                    stderr=handler.streams.stderr.getvalue(),
                    exit_code=exit_code,
                    stats=self.stats,
                )
            )
        return results


def decode_with_image(image: bytes, encoded: bytes, *, engine: str = ENGINE_TRANSLATOR,
                      limits: ExecutionLimits | None = None) -> DecodeResult:
    """One-shot helper: load ``image``, decode ``encoded``, return the result."""
    vm = VirtualMachine(image, engine=engine, limits=limits or ExecutionLimits())
    return vm.decode(encoded)
