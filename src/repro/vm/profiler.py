"""Reporting helpers over :class:`~repro.vm.limits.ExecutionStats`.

Turns raw VM counters into the derived quantities the evaluation section
talks about: fragment-cache hit rate, instructions per output byte, and
per-syscall counts.  Used by the benchmark harness and by the examples.
"""

from __future__ import annotations

from repro.vm.limits import ExecutionStats


def cache_hit_rate(stats: ExecutionStats) -> float:
    """Fraction of executed blocks served from the fragment cache."""
    total = stats.fragment_cache_hits + stats.fragment_cache_misses
    if total == 0:
        return 0.0
    return stats.fragment_cache_hits / total


def chain_rate(stats: ExecutionStats) -> float:
    """Fraction of executed blocks reached over a back-patched direct edge.

    These transitions bypass the dispatcher's hash lookup entirely; the
    remainder paid either a cache lookup (indirect branches) or a
    translation.
    """
    if stats.blocks_executed == 0:
        return 0.0
    return stats.chained_branches / stats.blocks_executed


def instructions_per_output_byte(stats: ExecutionStats) -> float:
    """Guest decode cost normalised by decoded output size."""
    if stats.bytes_written == 0:
        return float("inf") if stats.instructions else 0.0
    return stats.instructions / stats.bytes_written


def summarize(stats: ExecutionStats) -> dict:
    """Flatten stats into a plain dict suitable for printing or JSON."""
    return {
        "instructions": stats.instructions,
        "blocks_executed": stats.blocks_executed,
        "fragments_translated": stats.fragments_translated,
        "fragment_cache_hit_rate": round(cache_hit_rate(stats), 4),
        "chained_branches": stats.chained_branches,
        "chain_rate": round(chain_rate(stats), 4),
        "retranslations": stats.retranslations,
        "bytes_read": stats.bytes_read,
        "bytes_written": stats.bytes_written,
        "instructions_per_output_byte": (
            round(instructions_per_output_byte(stats), 2)
            if stats.bytes_written
            else None
        ),
        "streams_decoded": stats.streams_decoded,
        "syscalls": dict(sorted(stats.syscalls.items())),
    }


def format_report(stats: ExecutionStats, *, title: str = "VM execution report") -> str:
    """Human-readable multi-line report (used by verbose example output)."""
    summary = summarize(stats)
    lines = [title, "-" * len(title)]
    for key, value in summary.items():
        lines.append(f"{key:32s} {value}")
    return "\n".join(lines)
