"""Baseline instruction-at-a-time interpreter for the VXA virtual machine.

The paper's vx32 never interprets: it always scans and translates guest code
into cached fragments.  The interpreter here exists for two reasons:

* it is the reference semantics against which the dynamic translator is
  tested (both engines must produce bit-identical results), and
* it provides the "pure emulation" baseline for the portability discussion
  of section 5.4 and the fragment-cache ablation benchmark -- the measured
  gap between interpreter and translator stands in for the gap between a
  portable instruction-set emulator and vx32-style translation.
"""

from __future__ import annotations

from time import monotonic

from repro.errors import (
    DeadlineExceeded,
    DivisionFault,
    IllegalInstructionFault,
    ResourceLimitExceeded,
    StackFault,
)
from repro.isa.encoding import decode
from repro.isa.opcodes import Op
from repro.vm.syscalls import ACTION_EXIT

_MASK = 0xFFFFFFFF

#: Instructions between wall-clock deadline checks.  The interpreter runs
#: on the order of a hundred thousand guest instructions per second, so
#: this costs one comparison per instruction and bounds deadline overshoot
#: to tens of milliseconds.
DEADLINE_CHECK_INTERVAL = 10_000


def _signed(value: int) -> int:
    return value - 0x100000000 if value >= 0x80000000 else value


def run_interpreter(vm) -> None:
    """Run ``vm`` until it exits, halts or faults, interpreting one instruction
    at a time."""
    memory = vm.memory
    regs = vm.regs
    stats = vm.stats
    code_cache = vm.code_cache
    decode_cache = code_cache.instructions
    code = memory.buffer
    text_start = vm.text_start
    text_end = vm.text_end
    budget = vm.limits_in_effect.max_instructions
    deadline = vm.deadline
    check_at = DEADLINE_CHECK_INTERVAL if deadline is not None else None
    executed = 0
    pc = vm.pc

    try:
        while not vm.halted:
            if budget is not None and executed >= budget:
                raise ResourceLimitExceeded(
                    f"decoder exceeded its instruction budget ({budget})"
                )
            if check_at is not None and executed >= check_at:
                if monotonic() >= deadline:
                    raise DeadlineExceeded(
                        "decoder exceeded its wall-clock deadline",
                        deadline=vm.limits_in_effect.max_wall_seconds,
                        instructions=executed,
                    )
                check_at = executed + DEADLINE_CHECK_INTERVAL
            if not text_start <= pc < text_end:
                raise IllegalInstructionFault(
                    f"execution left the code segment: pc=0x{pc:08x}"
                )
            insn = decode_cache.get(pc)
            if insn is None:
                insn = decode(code, pc)
                if pc + insn.length > text_end:
                    raise IllegalInstructionFault(
                        f"instruction at 0x{pc:08x} straddles the code segment end"
                    )
                code_cache.store_instruction(pc, insn)
            executed += 1
            op = insn.op
            rd = insn.rd
            rs = insn.rs
            imm = insn.imm
            next_pc = pc + insn.length

            if op is Op.MOVI:
                regs[rd] = imm
            elif op is Op.MOV:
                regs[rd] = regs[rs]
            elif op is Op.LD32:
                regs[rd] = memory.load32((regs[rs] + imm) & _MASK)
            elif op is Op.LD16U:
                regs[rd] = memory.load16u((regs[rs] + imm) & _MASK)
            elif op is Op.LD8U:
                regs[rd] = memory.load8u((regs[rs] + imm) & _MASK)
            elif op is Op.LD16S:
                regs[rd] = memory.load16s((regs[rs] + imm) & _MASK) & _MASK
            elif op is Op.LD8S:
                regs[rd] = memory.load8s((regs[rs] + imm) & _MASK) & _MASK
            elif op is Op.ST32:
                memory.store32((regs[rd] + imm) & _MASK, regs[rs])
            elif op is Op.ST16:
                memory.store16((regs[rd] + imm) & _MASK, regs[rs])
            elif op is Op.ST8:
                memory.store8((regs[rd] + imm) & _MASK, regs[rs])
            elif op is Op.LEA:
                regs[rd] = (regs[rs] + imm) & _MASK
            elif op is Op.PUSH:
                sp = (regs[7] - 4) & _MASK
                memory.store32(sp, regs[rd])
                regs[7] = sp
            elif op is Op.POP:
                sp = regs[7]
                regs[rd] = memory.load32(sp)
                regs[7] = (sp + 4) & _MASK
            elif op is Op.ADD:
                regs[rd] = (regs[rd] + regs[rs]) & _MASK
            elif op is Op.SUB:
                regs[rd] = (regs[rd] - regs[rs]) & _MASK
            elif op is Op.MUL:
                regs[rd] = (regs[rd] * regs[rs]) & _MASK
            elif op is Op.DIVU:
                divisor = regs[rs]
                if divisor == 0:
                    raise DivisionFault(f"division by zero at pc=0x{pc:08x}")
                regs[rd] = (regs[rd] // divisor) & _MASK
            elif op is Op.REMU:
                divisor = regs[rs]
                if divisor == 0:
                    raise DivisionFault(f"division by zero at pc=0x{pc:08x}")
                regs[rd] = (regs[rd] % divisor) & _MASK
            elif op is Op.DIVS:
                divisor = _signed(regs[rs])
                if divisor == 0:
                    raise DivisionFault(f"division by zero at pc=0x{pc:08x}")
                dividend = _signed(regs[rd])
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                regs[rd] = quotient & _MASK
            elif op is Op.REMS:
                divisor = _signed(regs[rs])
                if divisor == 0:
                    raise DivisionFault(f"division by zero at pc=0x{pc:08x}")
                dividend = _signed(regs[rd])
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                regs[rd] = (dividend - quotient * _signed(regs[rs])) & _MASK
            elif op is Op.AND:
                regs[rd] &= regs[rs]
            elif op is Op.OR:
                regs[rd] |= regs[rs]
            elif op is Op.XOR:
                regs[rd] ^= regs[rs]
            elif op is Op.SHL:
                regs[rd] = (regs[rd] << (regs[rs] & 31)) & _MASK
            elif op is Op.SHRU:
                regs[rd] = regs[rd] >> (regs[rs] & 31)
            elif op is Op.SHRS:
                regs[rd] = (_signed(regs[rd]) >> (regs[rs] & 31)) & _MASK
            elif op is Op.CMP:
                vm.cc = (regs[rd], regs[rs])
            elif op is Op.NOT:
                regs[rd] = (~regs[rs]) & _MASK
            elif op is Op.NEG:
                regs[rd] = (-regs[rs]) & _MASK
            elif op is Op.ADDI:
                regs[rd] = (regs[rd] + imm) & _MASK
            elif op is Op.SUBI:
                regs[rd] = (regs[rd] - imm) & _MASK
            elif op is Op.MULI:
                regs[rd] = (regs[rd] * imm) & _MASK
            elif op is Op.ANDI:
                regs[rd] &= imm
            elif op is Op.ORI:
                regs[rd] |= imm
            elif op is Op.XORI:
                regs[rd] ^= imm
            elif op is Op.SHLI:
                regs[rd] = (regs[rd] << (imm & 31)) & _MASK
            elif op is Op.SHRUI:
                regs[rd] = regs[rd] >> (imm & 31)
            elif op is Op.SHRSI:
                regs[rd] = (_signed(regs[rd]) >> (imm & 31)) & _MASK
            elif op is Op.CMPI:
                vm.cc = (regs[rd], imm)
            elif op is Op.JMP:
                next_pc = (next_pc + imm) & _MASK
            elif Op.JE <= op <= Op.JGEU:
                left, right = vm.cc
                if _condition(op, left, right):
                    next_pc = (next_pc + imm) & _MASK
            elif op is Op.CALL:
                sp = (regs[7] - 4) & _MASK
                memory.store32(sp, next_pc)
                regs[7] = sp
                next_pc = (next_pc + imm) & _MASK
            elif op is Op.RET:
                sp = regs[7]
                next_pc = memory.load32(sp)
                regs[7] = (sp + 4) & _MASK
            elif op is Op.JMPR:
                next_pc = regs[rd]
            elif op is Op.CALLR:
                sp = (regs[7] - 4) & _MASK
                memory.store32(sp, next_pc)
                regs[7] = sp
                next_pc = regs[rd]
            elif op is Op.VXCALL:
                result, action = vm.syscall_handler.dispatch(
                    regs[0], regs[1], regs[2], regs[3]
                )
                regs[0] = result & _MASK
                if action == ACTION_EXIT:
                    vm.halted = True
            elif op is Op.HALT:
                vm.halted = True
                vm.syscall_handler.exit_code = 0
            elif op is Op.NOP:
                pass
            else:  # pragma: no cover - table is exhaustive
                raise IllegalInstructionFault(f"unhandled opcode {op!r} at 0x{pc:08x}")

            if regs[7] > memory.size:
                raise StackFault(f"stack pointer left the sandbox: sp=0x{regs[7]:08x}")
            pc = next_pc
    finally:
        vm.pc = pc
        stats.instructions += executed
        stats.blocks_executed += executed  # one "block" per instruction


def _condition(op: Op, left: int, right: int) -> bool:
    if op is Op.JE:
        return left == right
    if op is Op.JNE:
        return left != right
    if op is Op.JLTU:
        return left < right
    if op is Op.JLEU:
        return left <= right
    if op is Op.JGTU:
        return left > right
    if op is Op.JGEU:
        return left >= right
    signed_left = _signed(left)
    signed_right = _signed(right)
    if op is Op.JLTS:
        return signed_left < signed_right
    if op is Op.JLES:
        return signed_left <= signed_right
    if op is Op.JGTS:
        return signed_left > signed_right
    return signed_left >= signed_right
