"""The VXA virtual machine (vx32 analogue): sandboxed execution of decoders."""

from repro.vm.code_cache import CodeCache
from repro.vm.limits import ExecutionLimits, ExecutionStats
from repro.vm.machine import (
    DecodeResult,
    ENGINE_INTERPRETER,
    ENGINE_TRANSLATOR,
    VirtualMachine,
    decode_with_image,
)
from repro.vm.memory import (
    CHECK_FULL,
    CHECK_NONE,
    CHECK_WRITE_ONLY,
    DEFAULT_MEMORY_SIZE,
    GUEST_ADDRESS_SPACE_LIMIT,
    GuestMemory,
)
from repro.vm.syscalls import StreamSet, SyscallHandler

__all__ = [
    "CodeCache",
    "ExecutionLimits",
    "ExecutionStats",
    "DecodeResult",
    "ENGINE_INTERPRETER",
    "ENGINE_TRANSLATOR",
    "VirtualMachine",
    "decode_with_image",
    "CHECK_FULL",
    "CHECK_NONE",
    "CHECK_WRITE_ONLY",
    "DEFAULT_MEMORY_SIZE",
    "GUEST_ADDRESS_SPACE_LIMIT",
    "GuestMemory",
    "StreamSet",
    "SyscallHandler",
]
