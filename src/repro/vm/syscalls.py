"""The virtual system call layer between guest decoders and the archive reader.

Paper section 4.3: only five virtual system calls are available to decoders
running under vxUnZIP -- ``read``, ``write``, ``exit``, ``setperm`` and
``done`` -- and only three virtual file handles: stdin (the encoded stream),
stdout (the decoded stream) and stderr (diagnostics).  A decoder is "a
traditional Unix filter in a very pure form".

The handler lives host-side.  Because the guest's address space is a region
the host can address directly, servicing ``read``/``write`` requires no
extra data copies beyond moving bytes between the host streams and the
guest's buffer, mirroring the paper's no-copy argument.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable

from repro.errors import InjectedFault, ResourceLimitExceeded, SyscallFault
from repro.isa.opcodes import FD_STDERR, FD_STDIN, FD_STDOUT, Vxcall
from repro.vm.limits import ExecutionLimits, ExecutionStats
from repro.vm.memory import GuestMemory

#: Guest-visible errno-style results (returned in R0 as negative values).
EBADF = -9
EFAULT = -14
EINVAL = -22
ENOMEM = -12

#: Dispatch outcomes.
ACTION_CONTINUE = "continue"
ACTION_EXIT = "exit"

#: Cap on a single read/write transfer, to bound host-side buffering.
MAX_TRANSFER = 1 << 20


@dataclass
class StreamSet:
    """The three virtual file handles bound to one decoding run."""

    stdin: io.BufferedIOBase
    stdout: io.BufferedIOBase
    stderr: io.BufferedIOBase

    @classmethod
    def from_bytes(cls, encoded: bytes) -> "StreamSet":
        """Convenience constructor: decode ``encoded`` into in-memory buffers."""
        return cls(
            stdin=io.BytesIO(encoded),
            stdout=io.BytesIO(),
            stderr=io.BytesIO(),
        )


class SyscallHandler:
    """Dispatches guest ``VXCALL`` traps.

    Args:
        memory: the guest sandbox (buffers are validated against it).
        limits: resource ceilings for this run.
        stats: counters updated as calls are serviced.
        streams: the bound stdin/stdout/stderr.
        on_done: callback invoked when the guest issues ``done``; it should
            rebind ``streams`` to the next encoded stream and return ``True``,
            or return ``False`` if no further streams are available.
        fault_at: fault-injection hook (:mod:`repro.faults`): raise
            :class:`~repro.errors.InjectedFault` when the guest issues its
            Nth (1-based) virtual system call.  ``None`` in production.
    """

    def __init__(
        self,
        memory: GuestMemory,
        limits: ExecutionLimits,
        stats: ExecutionStats,
        streams: StreamSet,
        on_done: Callable[[], bool] | None = None,
        fault_at: int | None = None,
    ):
        self._memory = memory
        self._limits = limits
        self._stats = stats
        self.streams = streams
        self._on_done = on_done
        self._stderr_bytes = 0
        self._fault_at = fault_at
        self._dispatched = 0
        self.exit_code: int | None = None

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, number: int, arg1: int, arg2: int, arg3: int) -> tuple[int, str]:
        """Service one virtual system call.

        Returns ``(result, action)`` where ``result`` goes back to the guest
        in R0 and ``action`` is :data:`ACTION_CONTINUE` or :data:`ACTION_EXIT`.
        """
        try:
            call = Vxcall(number)
        except ValueError:
            raise SyscallFault(f"unknown virtual system call number {number}") from None
        self._dispatched += 1
        if self._fault_at is not None and self._dispatched == self._fault_at:
            raise InjectedFault(
                f"injected fault at virtual system call #{self._dispatched} "
                f"({call.name.lower()})"
            )
        self._stats.record_syscall(call.name.lower())
        if call is Vxcall.EXIT:
            self.exit_code = _signed(arg1)
            return 0, ACTION_EXIT
        if call is Vxcall.READ:
            return self._read(_signed(arg1), arg2, arg3), ACTION_CONTINUE
        if call is Vxcall.WRITE:
            return self._write(_signed(arg1), arg2, arg3), ACTION_CONTINUE
        if call is Vxcall.SETPERM:
            return self._setperm(arg1), ACTION_CONTINUE
        # DONE
        return self._done(), ACTION_CONTINUE

    # -- individual calls ------------------------------------------------------

    def _read(self, fd: int, buffer: int, count: int) -> int:
        if fd != FD_STDIN:
            return EBADF
        if count < 0:
            return EINVAL
        count = min(count, MAX_TRANSFER)
        try:
            self._memory.check_range(buffer, count, write=True)
        except Exception:
            return EFAULT
        data = self.streams.stdin.read(count)
        if data:
            self._memory.write_bytes(buffer, data)
            self._stats.bytes_read += len(data)
        return len(data)

    def _write(self, fd: int, buffer: int, count: int) -> int:
        if fd not in (FD_STDOUT, FD_STDERR):
            return EBADF
        if count < 0:
            return EINVAL
        count = min(count, MAX_TRANSFER)
        try:
            self._memory.check_range(buffer, count, write=False)
        except Exception:
            return EFAULT
        data = self._memory.read_bytes(buffer, count)
        if fd == FD_STDERR:
            remaining = self._limits.max_stderr_bytes - self._stderr_bytes
            data = data[: max(0, remaining)]
            self._stderr_bytes += len(data)
            self.streams.stderr.write(data)
            return count  # pretend full write so chatty decoders do not loop
        if self._limits.max_output_bytes is not None:
            if self._stats.bytes_written + len(data) > self._limits.max_output_bytes:
                raise ResourceLimitExceeded(
                    "decoder exceeded its output budget "
                    f"({self._limits.max_output_bytes} bytes)"
                )
        self.streams.stdout.write(data)
        self._stats.bytes_written += len(data)
        return len(data)

    def _setperm(self, new_size: int) -> int:
        if new_size > self._limits.max_memory_bytes:
            return ENOMEM
        try:
            return self._memory.grow(new_size)
        except ResourceLimitExceeded:
            return ENOMEM

    def _done(self) -> int:
        self._stats.streams_decoded += 1
        if self._on_done is None:
            return -1
        has_more = self._on_done()
        return 0 if has_more else -1


def _signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value
