"""A first-class cache of translated guest code.

vx32's viability rests on caching translated fragments and reusing them every
time the decoder jumps to the same entry point (paper section 4.2).  In this
reproduction the cache used to be a bare dict buried inside
:class:`~repro.vm.machine.VirtualMachine`; promoting it to an object lets the
:class:`~repro.api.session.DecoderSession` *own* one cache per decoder image
and share it across every VM (and VM re-initialisation) in an archive-read
session: translations are derived from the decoder's code alone -- never from
member data -- so sharing them leaks nothing between files even when the
section 2.4 policy forces the sandbox itself to be re-initialised.

The cache holds two keyed stores over the same guest image:

* ``fragments`` -- compiled superblock fragments, keyed by guest entry
  address (used by the translator engine),
* ``instructions`` -- decoded :class:`~repro.isa.encoding.Instruction`
  objects, keyed by guest address (used by the reference interpreter).

A cache is only valid for VMs running the *same decoder image* with the same
memory-check policy and translator configuration; :class:`DecoderSession`
guarantees this by keying shared caches by decoder pseudo-file offset.

Counters accumulate across runs (they feed ``vxunzip --stats``, the
profiler report and :class:`~repro.core.archive_reader.IntegrityReport`):

* ``hits`` / ``misses`` -- fragment executions served from the cache versus
  fragment translations,
* ``chained_branches`` -- block transitions that followed a back-patched
  direct edge, bypassing the hash lookup entirely,
* ``retranslations`` -- translations of an entry point that had already been
  translated before (the waste an ``ALWAYS_FRESH`` reuse policy pays when
  the cache is private and invalidated between members),
* ``evictions`` -- fragments dropped by the optional LRU entry cap.

Thread safety: all *mutation* paths (fragment/instruction insertion, LRU
bookkeeping, counter merges, invalidation) take the cache's lock, so the
in-process thread pool of :mod:`repro.parallel` cannot corrupt a cache or
lose counter updates even if two workers ever share one.  Plain lookups stay
lock-free -- a dict read is atomic under CPython and the engines tolerate a
racy miss (the worst case is a duplicate translation, observable as a
retranslation, never corruption).
"""

from __future__ import annotations

import threading


class CodeCache:
    """Translated-code store shared by the VM execution engines.

    Args:
        shared: a shared cache is owned by a session and survives
            :meth:`VirtualMachine.reset`; a private cache is invalidated on
            reset so an ``ALWAYS_FRESH`` decode starts from a clean slate.
        limit: optional cap on the number of cached fragments.  When the
            cap is reached the least-recently-used fragment is evicted (and
            counted in ``evictions``), so a long-lived service touching many
            decoder images cannot grow without bound.  ``None`` (the
            default) keeps the cache unbounded, which is always safe for a
            single archive: fragment count is bounded by the decoder's own
            code size and by ``ExecutionLimits.max_fragments``.
    """

    __slots__ = ("fragments", "instructions", "known", "shared", "limit",
                 "lock", "analysis", "hits", "misses", "chained_branches",
                 "retranslations", "evictions")

    def __init__(self, *, shared: bool = False, limit: int | None = None):
        if limit is not None and limit < 1:
            raise ValueError("code cache limit must be at least 1")
        self.fragments: dict = {}
        self.instructions: dict = {}
        #: Entry points ever translated -- survives invalidation, so repeated
        #: translation of the same entry is observable as a retranslation.
        self.known: set = set()
        self.shared = shared
        self.limit = limit
        #: Reentrant so counter merges may nest inside structural updates.
        self.lock = threading.RLock()
        #: The decoder image's static-analysis report
        #: (:class:`repro.analysis.verify.AnalysisReport`), attached once by
        #: the first VM to analyse the image and reused by every other VM
        #: sharing this cache -- analysis, like translation, is a pure
        #: function of the decoder's code.
        self.analysis = None
        self.hits = 0
        self.misses = 0
        self.chained_branches = 0
        self.retranslations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self.fragments)

    # -- fragment store (translator engine) -----------------------------------

    def store(self, entry: int, fragment) -> None:
        """Insert one translated fragment, evicting LRU entries over the cap.

        Insertion order doubles as the recency order (:meth:`touch` refreshes
        it on a hit), so the eviction victim is always ``next(iter(...))``.
        Recency is only observed at dispatcher lookups -- chained
        transitions bypass the table entirely, which is acceptable because
        a chained predecessor keeps executing its successor by direct
        reference even after the successor's table entry is evicted.
        Evicted fragments remain *valid* -- translations are pure functions of
        the decoder's code -- so a chained predecessor that still references
        one keeps working; eviction only bounds the dispatch table, and a
        later jump to the evicted entry retranslates (counted in
        ``retranslations``).
        """
        with self.lock:
            if self.limit is not None:
                fragments = self.fragments
                while len(fragments) >= self.limit:
                    del fragments[next(iter(fragments))]
                    self.evictions += 1
            self.fragments[entry] = fragment

    def touch(self, entry: int) -> None:
        """Refresh ``entry``'s LRU recency (only called when a cap is set).

        This pays a lock + pop/reinsert per dispatcher hit, but only for
        capped caches, only on indirect branches (chained transitions never
        reach the dispatcher), and a dispatched fragment's execution costs
        orders of magnitude more -- measured well under 1% of decode time.
        """
        with self.lock:
            fragment = self.fragments.pop(entry, None)
            if fragment is not None:
                self.fragments[entry] = fragment

    def note_translation(self, entry: int) -> bool:
        """Record ``entry`` in the translation history under the lock.

        Returns ``True`` when the entry had been translated before (a
        retranslation), ``False`` on first translation.
        """
        with self.lock:
            if entry in self.known:
                return True
            self.known.add(entry)
            return False

    # -- analysis results ------------------------------------------------------

    def set_analysis(self, report) -> None:
        """Attach the image's static-analysis report (first writer wins)."""
        with self.lock:
            if self.analysis is None:
                self.analysis = report

    # -- instruction store (reference interpreter) ----------------------------

    def store_instruction(self, address: int, instruction) -> None:
        """Insert one decoded instruction (bounded by the guest's code size)."""
        with self.lock:
            self.instructions[address] = instruction

    # -- counters --------------------------------------------------------------

    def record_run(self, *, hits: int = 0, misses: int = 0,
                   chained_branches: int = 0, retranslations: int = 0) -> None:
        """Merge one engine run's counters under the lock."""
        with self.lock:
            self.hits += hits
            self.misses += misses
            self.chained_branches += chained_branches
            self.retranslations += retranslations

    def invalidate(self) -> None:
        """Drop all cached translations (counters and history persist)."""
        with self.lock:
            self.fragments.clear()
            self.instructions.clear()

    def snapshot(self) -> dict:
        """Counters as a plain dict (for reports and ``--stats`` output)."""
        with self.lock:
            return {
                "fragments": len(self.fragments),
                "hits": self.hits,
                "misses": self.misses,
                "chained_branches": self.chained_branches,
                "retranslations": self.retranslations,
                "evictions": self.evictions,
            }
