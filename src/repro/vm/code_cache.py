"""A first-class cache of translated guest code.

vx32's viability rests on caching translated fragments and reusing them every
time the decoder jumps to the same entry point (paper section 4.2).  In this
reproduction the cache used to be a bare dict buried inside
:class:`~repro.vm.machine.VirtualMachine`; promoting it to an object lets the
:class:`~repro.api.session.DecoderSession` *own* one cache per decoder image
and share it across every VM (and VM re-initialisation) in an archive-read
session: translations are derived from the decoder's code alone -- never from
member data -- so sharing them leaks nothing between files even when the
section 2.4 policy forces the sandbox itself to be re-initialised.

The cache holds two keyed stores over the same guest image:

* ``fragments`` -- compiled superblock fragments, keyed by guest entry
  address (used by the translator engine),
* ``instructions`` -- decoded :class:`~repro.isa.encoding.Instruction`
  objects, keyed by guest address (used by the reference interpreter).

A cache is only valid for VMs running the *same decoder image* with the same
memory-check policy and translator configuration; :class:`DecoderSession`
guarantees this by keying shared caches by decoder pseudo-file offset.

Counters accumulate across runs (they feed ``vxunzip --stats``, the
profiler report and :class:`~repro.core.archive_reader.IntegrityReport`):

* ``hits`` / ``misses`` -- fragment executions served from the cache versus
  fragment translations,
* ``chained_branches`` -- block transitions that followed a back-patched
  direct edge, bypassing the hash lookup entirely,
* ``retranslations`` -- translations of an entry point that had already been
  translated before (the waste an ``ALWAYS_FRESH`` reuse policy pays when
  the cache is private and invalidated between members).
"""

from __future__ import annotations


class CodeCache:
    """Translated-code store shared by the VM execution engines.

    Args:
        shared: a shared cache is owned by a session and survives
            :meth:`VirtualMachine.reset`; a private cache is invalidated on
            reset so an ``ALWAYS_FRESH`` decode starts from a clean slate.
    """

    __slots__ = ("fragments", "instructions", "known", "shared",
                 "hits", "misses", "chained_branches", "retranslations")

    def __init__(self, *, shared: bool = False):
        self.fragments: dict = {}
        self.instructions: dict = {}
        #: Entry points ever translated -- survives invalidation, so repeated
        #: translation of the same entry is observable as a retranslation.
        self.known: set = set()
        self.shared = shared
        self.hits = 0
        self.misses = 0
        self.chained_branches = 0
        self.retranslations = 0

    def __len__(self) -> int:
        return len(self.fragments)

    def invalidate(self) -> None:
        """Drop all cached translations (counters and history persist)."""
        self.fragments.clear()
        self.instructions.clear()

    def snapshot(self) -> dict:
        """Counters as a plain dict (for reports and ``--stats`` output)."""
        return {
            "fragments": len(self.fragments),
            "hits": self.hits,
            "misses": self.misses,
            "chained_branches": self.chained_branches,
            "retranslations": self.retranslations,
        }
