"""Reproduction of "VXA: A Virtual Architecture for Durable Compressed Archives".

Public API
----------

The supported surface is the streaming, session-oriented facade in
:mod:`repro.api`, re-exported here::

    import repro

    with repro.create("backup.zip") as builder:
        builder.add("notes.txt", b"hello")

    with repro.open("backup.zip") as archive:
        data = archive.extract("notes.txt").data

* :func:`repro.open` / :func:`repro.create` -- open an archive for reading
  or start building one, over a path or a seekable file object.
* :class:`repro.Archive` / :class:`repro.ArchiveBuilder` -- the session
  objects those return (context managers).
* :class:`repro.ReadOptions` / :class:`repro.WriteOptions` -- frozen
  configuration (extraction mode, engine, execution limits, VM reuse
  policy; codec registry, lossy policy, decoder attachment).
* :mod:`repro.errors` -- the exception hierarchy, rooted at
  :class:`repro.errors.VxaError`.

Lower layers remain importable for tooling and experiments:
:class:`repro.vm.VirtualMachine` (the vx32-analogue sandbox that runs
archived decoders), :mod:`repro.codecs` (native encoders + VXA guest
decoders), and :mod:`repro.vxc` (the small C-like compiler used to build
guest decoders).  The historical ``repro.core.ArchiveReader`` /
``repro.core.ArchiveWriter`` classes are deprecated shims over the facade.
"""

from repro.api import (
    Archive,
    ArchiveBuilder,
    DecoderSession,
    MODE_AUTO,
    MODE_NATIVE,
    MODE_VXA,
    ON_DAMAGE_REJECT,
    ON_DAMAGE_SALVAGE,
    ReadOptions,
    SecurityAttributes,
    VmReusePolicy,
    WriteOptions,
    create,
    open,
)
from repro.client import VxServeClient, VxServeError
from repro.errors import (
    ArchiveDamagedError,
    ArchiveError,
    CodecError,
    DecoderMissingError,
    GuestFault,
    IntegrityError,
    PathTraversalError,
    VxaError,
    ZipFormatError,
)

__version__ = "0.2.0"

__all__ = [
    "__version__",
    "open",
    "create",
    "Archive",
    "ArchiveBuilder",
    "ReadOptions",
    "WriteOptions",
    "DecoderSession",
    "SecurityAttributes",
    "VmReusePolicy",
    "MODE_AUTO",
    "MODE_NATIVE",
    "MODE_VXA",
    "ON_DAMAGE_REJECT",
    "ON_DAMAGE_SALVAGE",
    "VxServeClient",
    "VxServeError",
    "VxaError",
    "ArchiveDamagedError",
    "ArchiveError",
    "CodecError",
    "DecoderMissingError",
    "GuestFault",
    "IntegrityError",
    "PathTraversalError",
    "ZipFormatError",
]
