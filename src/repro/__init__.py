"""Reproduction of "VXA: A Virtual Architecture for Durable Compressed Archives".

Public API highlights
---------------------

* :class:`repro.core.ArchiveWriter` / :class:`repro.core.ArchiveReader` --
  the vxZIP / vxUnZIP tools.
* :class:`repro.vm.VirtualMachine` -- the vx32-analogue sandbox that runs
  archived decoders.
* :mod:`repro.codecs` -- the codec plug-ins (native encoders + VXA guest
  decoders) shipped with the prototype.
* :mod:`repro.vxc` -- the small C-like compiler used to build guest decoders.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
