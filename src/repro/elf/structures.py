"""ELF32 data structures used to package VXA decoders.

The paper stores each decoder as "simply an ELF executable for the 32-bit
x86 architecture" (section 3.2).  We keep that choice literally: decoders are
genuine little-endian ELF32 ``ET_EXEC`` images with ``PT_LOAD`` program
headers, except that the machine number identifies the VXA-32 virtual
architecture rather than ``EM_386``.  The layout constants below follow the
TIS ELF specification the paper cites.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

ELF_MAGIC = b"\x7fELF"

# e_ident indices
EI_CLASS = 4
EI_DATA = 5
EI_VERSION = 6
EI_OSABI = 7
EI_NIDENT = 16

ELFCLASS32 = 1
ELFDATA2LSB = 1
EV_CURRENT = 1

# e_type
ET_EXEC = 2

# e_machine: official numbers for reference plus our private one.
EM_386 = 3
#: Machine number for the VXA-32 virtual architecture (private/experimental range).
EM_VXA32 = 0xF32A

# Program header types / flags
PT_NULL = 0
PT_LOAD = 1
PT_NOTE = 4
PF_X = 1
PF_W = 2
PF_R = 4

EHDR_SIZE = 52
PHDR_SIZE = 32

_EHDR = struct.Struct("<16sHHIIIIIHHHHHH")
_PHDR = struct.Struct("<IIIIIIII")


@dataclass
class ElfHeader:
    """The ELF file header (Elf32_Ehdr)."""

    e_type: int = ET_EXEC
    e_machine: int = EM_VXA32
    e_version: int = EV_CURRENT
    e_entry: int = 0
    e_phoff: int = EHDR_SIZE
    e_shoff: int = 0
    e_flags: int = 0
    e_ehsize: int = EHDR_SIZE
    e_phentsize: int = PHDR_SIZE
    e_phnum: int = 0
    e_shentsize: int = 0
    e_shnum: int = 0
    e_shstrndx: int = 0

    def pack(self) -> bytes:
        ident = bytearray(EI_NIDENT)
        ident[0:4] = ELF_MAGIC
        ident[EI_CLASS] = ELFCLASS32
        ident[EI_DATA] = ELFDATA2LSB
        ident[EI_VERSION] = EV_CURRENT
        return _EHDR.pack(
            bytes(ident),
            self.e_type,
            self.e_machine,
            self.e_version,
            self.e_entry,
            self.e_phoff,
            self.e_shoff,
            self.e_flags,
            self.e_ehsize,
            self.e_phentsize,
            self.e_phnum,
            self.e_shentsize,
            self.e_shnum,
            self.e_shstrndx,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ElfHeader":
        fields = _EHDR.unpack_from(data, 0)
        header = cls(
            e_type=fields[1],
            e_machine=fields[2],
            e_version=fields[3],
            e_entry=fields[4],
            e_phoff=fields[5],
            e_shoff=fields[6],
            e_flags=fields[7],
            e_ehsize=fields[8],
            e_phentsize=fields[9],
            e_phnum=fields[10],
            e_shentsize=fields[11],
            e_shnum=fields[12],
            e_shstrndx=fields[13],
        )
        header.ident = fields[0]
        return header


@dataclass
class ProgramHeader:
    """One program header (Elf32_Phdr) describing a loadable segment."""

    p_type: int = PT_LOAD
    p_offset: int = 0
    p_vaddr: int = 0
    p_paddr: int = 0
    p_filesz: int = 0
    p_memsz: int = 0
    p_flags: int = PF_R
    p_align: int = 0x1000

    def pack(self) -> bytes:
        return _PHDR.pack(
            self.p_type,
            self.p_offset,
            self.p_vaddr,
            self.p_paddr,
            self.p_filesz,
            self.p_memsz,
            self.p_flags,
            self.p_align,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> "ProgramHeader":
        fields = _PHDR.unpack_from(data, offset)
        return cls(*fields)


@dataclass
class Segment:
    """A loadable segment extracted from an image."""

    vaddr: int
    data: bytes
    memsz: int
    flags: int

    @property
    def executable(self) -> bool:
        return bool(self.flags & PF_X)

    @property
    def writable(self) -> bool:
        return bool(self.flags & PF_W)


@dataclass
class ElfImage:
    """A parsed ELF executable ready to be loaded into the VM."""

    entry: int
    machine: int
    segments: list[Segment] = field(default_factory=list)
    note: bytes = b""

    @property
    def load_size(self) -> int:
        """Highest address occupied by any segment (i.e. minimum memory size)."""
        top = 0
        for segment in self.segments:
            top = max(top, segment.vaddr + segment.memsz)
        return top
