"""Build ELF32 executables for the VXA-32 virtual machine.

Takes the output of the assembler (or the vxc compiler, which drives the
assembler) and lays it out as a two-segment ``ET_EXEC`` image:

* a read+execute segment holding ``.text``,
* a read+write segment holding ``.data`` followed by zero-initialised
  ``.bss`` space (``p_memsz > p_filesz``).

An optional ``PT_NOTE`` segment carries provenance metadata (codec name,
toolchain version, and the split between decoder code and runtime-library
code) which Table 2 of the paper reports and our Table 2 bench reads back.
"""

from __future__ import annotations

import json

from repro.elf.structures import (
    EHDR_SIZE,
    EM_VXA32,
    ElfHeader,
    PF_R,
    PF_W,
    PF_X,
    PHDR_SIZE,
    PT_LOAD,
    PT_NOTE,
    ProgramHeader,
)
from repro.isa.assembler import AssembledProgram


def build_executable(program: AssembledProgram, *, note: dict | None = None) -> bytes:
    """Serialise an assembled program as a VXA-32 ELF executable.

    Args:
        program: output of :func:`repro.isa.assembler.assemble`.
        note: optional JSON-serialisable metadata embedded in a PT_NOTE
            segment (not loaded into guest memory).

    Returns:
        The ELF image bytes.
    """
    note_payload = json.dumps(note, sort_keys=True).encode() if note is not None else b""
    phnum = 2 + (1 if note_payload else 0)

    header = ElfHeader(
        e_machine=EM_VXA32,
        e_entry=program.entry,
        e_phoff=EHDR_SIZE,
        e_phnum=phnum,
    )
    headers_size = EHDR_SIZE + phnum * PHDR_SIZE

    text_offset = _align(headers_size, 16)
    data_offset = _align(text_offset + len(program.text), 16)
    note_offset = _align(data_offset + len(program.data), 16)

    text_phdr = ProgramHeader(
        p_type=PT_LOAD,
        p_offset=text_offset,
        p_vaddr=program.text_base,
        p_paddr=program.text_base,
        p_filesz=len(program.text),
        p_memsz=len(program.text),
        p_flags=PF_R | PF_X,
    )
    data_phdr = ProgramHeader(
        p_type=PT_LOAD,
        p_offset=data_offset,
        p_vaddr=program.data_base,
        p_paddr=program.data_base,
        p_filesz=len(program.data),
        p_memsz=len(program.data) + program.bss_size,
        p_flags=PF_R | PF_W,
    )
    phdrs = [text_phdr, data_phdr]
    if note_payload:
        phdrs.append(
            ProgramHeader(
                p_type=PT_NOTE,
                p_offset=note_offset,
                p_vaddr=0,
                p_paddr=0,
                p_filesz=len(note_payload),
                p_memsz=0,
                p_flags=PF_R,
                p_align=1,
            )
        )

    image = bytearray()
    image += header.pack()
    for phdr in phdrs:
        image += phdr.pack()
    _pad_to(image, text_offset)
    image += program.text
    _pad_to(image, data_offset)
    image += program.data
    if note_payload:
        _pad_to(image, note_offset)
        image += note_payload
    return bytes(image)


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def _pad_to(buffer: bytearray, offset: int) -> None:
    if len(buffer) < offset:
        buffer.extend(b"\x00" * (offset - len(buffer)))
