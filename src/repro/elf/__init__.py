"""Minimal ELF32 container for VXA decoder executables."""

from repro.elf.builder import build_executable
from repro.elf.reader import is_vxa_executable, parse_executable, read_note
from repro.elf.structures import ElfImage, EM_VXA32, Segment

__all__ = [
    "build_executable",
    "is_vxa_executable",
    "parse_executable",
    "read_note",
    "ElfImage",
    "EM_VXA32",
    "Segment",
]
