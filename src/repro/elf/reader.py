"""Parse ELF32 executables produced for the VXA-32 virtual machine.

The archive reader uses this to validate and load decoder images extracted
from archives.  Parsing is defensive throughout: decoder images come from
untrusted archives, so every offset and size is bounds-checked and malformed
images raise :class:`~repro.errors.ElfFormatError` rather than crashing or
over-reading.
"""

from __future__ import annotations

import json

from repro.errors import ElfFormatError
from repro.elf.structures import (
    EHDR_SIZE,
    ELF_MAGIC,
    ELFCLASS32,
    ELFDATA2LSB,
    EI_CLASS,
    EI_DATA,
    EM_VXA32,
    ET_EXEC,
    ElfHeader,
    ElfImage,
    PHDR_SIZE,
    PT_LOAD,
    PT_NOTE,
    ProgramHeader,
    Segment,
)

#: Reject decoder images claiming more than this much guest memory at load.
MAX_IMAGE_MEMORY = 1 << 30  # 1 GB, the paper's address-space ceiling


def parse_executable(data: bytes, *, require_vxa: bool = True) -> ElfImage:
    """Parse ``data`` as a VXA-32 ELF executable.

    Args:
        data: raw ELF image bytes.
        require_vxa: when true (the default), reject images whose machine
            field is not the VXA-32 architecture.

    Raises:
        ElfFormatError: if the image is malformed or unacceptable.
    """
    if len(data) < EHDR_SIZE:
        raise ElfFormatError("image smaller than an ELF header")
    if data[:4] != ELF_MAGIC:
        raise ElfFormatError("bad ELF magic")
    if data[EI_CLASS] != ELFCLASS32:
        raise ElfFormatError("not an ELF32 image")
    if data[EI_DATA] != ELFDATA2LSB:
        raise ElfFormatError("not a little-endian image")

    header = ElfHeader.unpack(data)
    if header.e_type != ET_EXEC:
        raise ElfFormatError(f"not an executable image (e_type={header.e_type})")
    if require_vxa and header.e_machine != EM_VXA32:
        raise ElfFormatError(
            f"unsupported machine 0x{header.e_machine:04x}; expected VXA-32"
        )
    if header.e_phentsize != PHDR_SIZE:
        raise ElfFormatError(f"unexpected program header size {header.e_phentsize}")
    if header.e_phnum == 0 or header.e_phnum > 16:
        raise ElfFormatError(f"implausible program header count {header.e_phnum}")
    if header.e_phoff + header.e_phnum * PHDR_SIZE > len(data):
        raise ElfFormatError("program header table extends past end of image")

    image = ElfImage(entry=header.e_entry, machine=header.e_machine)
    total_memory = 0
    for index in range(header.e_phnum):
        phdr = ProgramHeader.unpack(data, header.e_phoff + index * PHDR_SIZE)
        if phdr.p_type == PT_NOTE:
            if phdr.p_offset + phdr.p_filesz > len(data):
                raise ElfFormatError("note segment extends past end of image")
            image.note = data[phdr.p_offset : phdr.p_offset + phdr.p_filesz]
            continue
        if phdr.p_type != PT_LOAD:
            continue
        if phdr.p_filesz > phdr.p_memsz:
            raise ElfFormatError("segment file size exceeds memory size")
        if phdr.p_offset + phdr.p_filesz > len(data):
            raise ElfFormatError("segment extends past end of image")
        if phdr.p_vaddr + phdr.p_memsz > MAX_IMAGE_MEMORY:
            raise ElfFormatError("segment exceeds the 1 GB guest address space")
        total_memory = max(total_memory, phdr.p_vaddr + phdr.p_memsz)
        image.segments.append(
            Segment(
                vaddr=phdr.p_vaddr,
                data=data[phdr.p_offset : phdr.p_offset + phdr.p_filesz],
                memsz=phdr.p_memsz,
                flags=phdr.p_flags,
            )
        )
    if not image.segments:
        raise ElfFormatError("image contains no loadable segments")
    executable_segments = [segment for segment in image.segments if segment.executable]
    if not executable_segments:
        raise ElfFormatError("image contains no executable segment")
    if not any(
        segment.vaddr <= image.entry < segment.vaddr + segment.memsz
        for segment in executable_segments
    ):
        raise ElfFormatError("entry point lies outside all executable segments")
    return image


def read_note(data: bytes) -> dict:
    """Return the JSON provenance note embedded in a decoder image, or ``{}``."""
    image = parse_executable(data, require_vxa=False)
    if not image.note:
        return {}
    try:
        note = json.loads(image.note.decode())
    except (ValueError, UnicodeDecodeError):
        return {}
    return note if isinstance(note, dict) else {}


def is_vxa_executable(data: bytes) -> bool:
    """Cheap check used by file-type sniffing and archive validation."""
    try:
        parse_executable(data)
    except ElfFormatError:
        return False
    return True
