"""Rebuild a clean archive from the salvageable part of a damaged one.

The rebuild is byte-conservative where it matters: member *stored bytes*
and decoder pseudo-file extents are copied verbatim (CRCs and sizes carried
over, never recomputed from damaged data), VXA extension headers are
rewritten only to point at the decoders' new offsets, and the output gets a
fresh commit record plus the crash-consistent temp+fsync+rename finalize.
Headers are re-packed, so header-level metadata the writer normalises
(timestamps) is normalised again -- contents round-trip bit-for-bit, which
is the durability property the paper cares about.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
from dataclasses import dataclass, field

from repro.core.extension import VXA_EXTRA_ID, parse_extension
from repro.core.fsutil import fsync_directory, fsync_file
from repro.core.integrity import (
    STATUS_INTACT,
    MediaAssessment,
    assess_media,
)
from repro.errors import ArchiveDamagedError, ArchiveError, ZipFormatError
from repro.repair.diagnosis import DamageRegion, minimal_diagnosis
from repro.zipformat.reader import ZipReader
from repro.zipformat.structures import (
    pack_extra_fields,
    read_local_header,
    unpack_extra_fields,
)
from repro.zipformat.writer import ZipWriter

#: Per-member repair actions.
ACTION_COPIED = "copied"
ACTION_COPIED_WITHOUT_DECODER = "copied-without-decoder"
ACTION_DROPPED = "dropped"


@dataclass
class MemberAction:
    """What the rebuild did with one member of the damaged archive."""

    name: str
    action: str
    reason: str = ""

    def as_dict(self) -> dict:
        return {"name": self.name, "action": self.action, "reason": self.reason}


@dataclass
class RepairResult:
    """Structured damage report + rebuild outcome of one repair run."""

    assessment: MediaAssessment
    regions: list[DamageRegion] = field(default_factory=list)
    actions: list[MemberAction] = field(default_factory=list)
    output_path: pathlib.Path | None = None
    rebuilt: bool = False

    @property
    def classification(self) -> str:
        return self.assessment.classification()

    @property
    def exit_code(self) -> int:
        return self.assessment.exit_code()

    @property
    def copied(self) -> list[str]:
        return [a.name for a in self.actions if a.action != ACTION_DROPPED]

    @property
    def dropped(self) -> list[str]:
        return [a.name for a in self.actions if a.action == ACTION_DROPPED]

    def as_dict(self) -> dict:
        return {
            "classification": self.classification,
            "exit_code": self.exit_code,
            "rebuilt": self.rebuilt,
            "output_path": (str(self.output_path)
                            if self.output_path is not None else None),
            "regions": [region.as_dict() for region in self.regions],
            "actions": [action.as_dict() for action in self.actions],
            "assessment": self.assessment.as_dict(),
        }


def _read_source_bytes(source) -> bytes:
    if isinstance(source, (bytes, bytearray, memoryview)):
        return bytes(source)
    return pathlib.Path(source).read_bytes()


def _rewrite_extra(extra: bytes, new_offset: int | None, *,
                   drop_decoder: bool = False) -> bytes:
    """Re-point (or drop) the VXA extension inside an extra-field block."""
    out = b""
    for item in unpack_extra_fields(extra):
        if item.header_id == VXA_EXTRA_ID:
            if drop_decoder:
                continue
            extension = parse_extension(extra)
            out += dataclasses.replace(
                extension, decoder_offset=new_offset).pack()
        else:
            out += pack_extra_fields([item])
    return out


def repair_archive(source, output_path=None, *, comment: bytes | None = None
                   ) -> RepairResult:
    """Rebuild a clean archive from whatever ``source`` still holds intact.

    ``source`` is a damaged archive (path or bytes); ``output_path`` is
    where the repaired archive lands (required to actually rebuild --
    without it the call is a dry run returning only the damage report).
    Every intact member is copied with byte-identical stored contents,
    referenced decoders ride along (re-offset), damaged members and
    decoders are dropped and reported.  The output is finalized with a
    fresh commit record via the crash-consistent temp+rename sequence, and
    is verified clean before the temp is renamed into place.

    Raises :class:`~repro.errors.ArchiveDamagedError` when nothing is
    salvageable and an output was requested.
    """
    data = _read_source_bytes(source)
    assessment = assess_media(data)
    result = RepairResult(assessment=assessment,
                          regions=minimal_diagnosis(assessment))
    classification = assessment.classification()

    try:
        reader = ZipReader(data, salvage=True)
    except ZipFormatError as error:
        if output_path is not None:
            raise ArchiveDamagedError(
                f"nothing salvageable: archive is unreadable ({error})"
            ) from error
        return result

    entries_by_offset = {entry.local_header_offset: entry
                         for entry in reader.entries}
    decoder_ok = {offset: verdict.status == STATUS_INTACT
                  for offset, verdict in assessment.decoders.items()}

    # -- plan per-member actions ---------------------------------------------------
    plan: list[tuple] = []          # (entry, new_extra_fn, action)
    for verdict in assessment.members:
        if verdict.status != STATUS_INTACT:
            result.actions.append(MemberAction(
                name=verdict.name, action=ACTION_DROPPED,
                reason=verdict.reason or verdict.status))
            continue
        entry = entries_by_offset.get(verdict.offset)
        if entry is None:
            result.actions.append(MemberAction(
                name=verdict.name, action=ACTION_DROPPED,
                reason="extent not found by salvage scan"))
            continue
        try:
            extension = parse_extension(entry.extra)
        except ArchiveError:
            extension = None
        if extension is not None and not decoder_ok.get(
                extension.decoder_offset, False):
            # Intact stored bytes whose decoder is gone: only useful when
            # the stored form *is* the original file (the redec path).
            if extension.precompressed:
                plan.append((entry, None, ACTION_COPIED_WITHOUT_DECODER))
            else:
                result.actions.append(MemberAction(
                    name=verdict.name, action=ACTION_DROPPED,
                    reason="decoder extent damaged"))
            continue
        plan.append((entry,
                     extension.decoder_offset if extension is not None else None,
                     ACTION_COPIED))

    if output_path is None:
        for entry, _, action in plan:
            result.actions.append(MemberAction(name=entry.name, action=action))
        return result

    if not plan and classification != "clean":
        raise ArchiveDamagedError(
            "nothing salvageable: no member of the damaged archive is intact")

    # -- rebuild -------------------------------------------------------------------
    output_path = pathlib.Path(output_path)
    temp_path = output_path.with_name(f"{output_path.name}.vxa-tmp.{os.getpid()}")
    try:
        with open(temp_path, "wb") as sink:
            writer = ZipWriter(sink=sink)
            decoder_moves: dict[int, int] = {}

            def copy_decoder(old_offset: int) -> int:
                moved = decoder_moves.get(old_offset)
                if moved is None:
                    pseudo, data_offset = read_local_header(
                        reader.read_extent, old_offset)
                    payload = reader.read_extent(data_offset,
                                                 pseudo.compressed_size)
                    moved = writer.add_member(
                        "", payload, method=pseudo.method,
                        uncompressed_size=pseudo.uncompressed_size,
                        crc=pseudo.crc32,
                        in_central_directory=False).local_header_offset
                    decoder_moves[old_offset] = moved
                return moved

            for entry, decoder_offset, action in plan:
                if action == ACTION_COPIED_WITHOUT_DECODER:
                    extra = _rewrite_extra(entry.extra, None, drop_decoder=True)
                elif decoder_offset is not None:
                    extra = _rewrite_extra(entry.extra,
                                           copy_decoder(decoder_offset))
                else:
                    extra = entry.extra
                stored = reader.read_stored_bytes(entry)
                writer.add_member(
                    entry.name, stored, method=entry.method,
                    uncompressed_size=entry.uncompressed_size,
                    crc=entry.crc32, extra=extra, comment=entry.comment,
                    external_attributes=entry.external_attributes)
                result.actions.append(MemberAction(name=entry.name,
                                                   action=action))
            writer.finish(comment if comment is not None else reader.comment,
                          commit=True)
            fsync_file(sink)
        # The repaired archive must itself assess clean before it replaces
        # anything -- a repair that produces damaged output is a bug, not
        # a result.
        verify = assess_media(temp_path.read_bytes())
        if verify.classification() != "clean":
            raise ArchiveDamagedError(
                "rebuilt archive failed its own media assessment: "
                + "; ".join(verify.damage
                            or [m.reason for m in verify.damaged_members])
            )
        os.replace(temp_path, output_path)
        fsync_directory(output_path.parent)
    except BaseException:
        temp_path.unlink(missing_ok=True)
        raise
    result.output_path = output_path
    result.rebuilt = True
    return result


__all__ = [
    "ACTION_COPIED",
    "ACTION_COPIED_WITHOUT_DECODER",
    "ACTION_DROPPED",
    "MemberAction",
    "RepairResult",
    "repair_archive",
]
