"""Minimal damage diagnosis: the smallest set of regions explaining the loss.

FastDiag's framing (see PAPERS.md): when a system of constraints fails,
report a *minimal* set of culprits, not every downstream symptom.  Applied
to archive media: if one damaged decoder extent makes five members
undecodable, the diagnosis is **one** region (the decoder extent) with five
affected members -- not five independent damage reports.  Members whose own
extents are damaged contribute their own regions; overlapping and adjacent
regions merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.integrity import STATUS_INTACT, MediaAssessment


@dataclass
class DamageRegion:
    """One contiguous damaged byte range and the members it takes down."""

    start: int
    end: int                      # exclusive
    description: str
    members: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "size": self.size,
            "description": self.description,
            "members": list(self.members),
        }


def _merge(regions: list[DamageRegion]) -> list[DamageRegion]:
    """Merge overlapping/adjacent regions, unioning members and descriptions."""
    merged: list[DamageRegion] = []
    for region in sorted(regions, key=lambda r: (r.start, r.end)):
        if merged and region.start <= merged[-1].end:
            last = merged[-1]
            last.end = max(last.end, region.end)
            if region.description not in last.description:
                last.description = f"{last.description}; {region.description}"
            for name in region.members:
                if name not in last.members:
                    last.members.append(name)
        else:
            merged.append(region)
    return merged


def minimal_diagnosis(assessment: MediaAssessment) -> list[DamageRegion]:
    """The smallest set of damaged regions that explains every lost member.

    Damaged decoder extents come first: every member that is only lost
    *because* its decoder extent is damaged is attributed to the decoder's
    region rather than given a region of its own.  Then members whose own
    extents are damaged contribute theirs, and structural damage (torn
    directory, missing tail) appears as a region at the end of the file
    when nothing more precise is known.
    """
    regions: list[DamageRegion] = []
    damaged_decoders = {offset for offset, verdict in assessment.decoders.items()
                        if verdict.status != STATUS_INTACT}
    for offset in sorted(damaged_decoders):
        verdict = assessment.decoders[offset]
        size = verdict.size if verdict.size else 1
        dependents = [m.name for m in assessment.members
                      if m.decoder_offset == offset
                      and m.status != STATUS_INTACT]
        regions.append(DamageRegion(
            start=offset, end=offset + size,
            description=f"decoder extent damaged ({verdict.reason or 'unverified'})",
            members=dependents))
    for verdict in assessment.members:
        if verdict.status == STATUS_INTACT:
            continue
        if (verdict.decoder_offset in damaged_decoders
                and verdict.reason == "decoder extent damaged"):
            continue  # already explained by the decoder's region
        if verdict.offset is None:
            continue
        size = verdict.size if verdict.size else 1
        regions.append(DamageRegion(
            start=verdict.offset, end=verdict.offset + size,
            description=verdict.reason or f"member {verdict.name!r} damaged",
            members=[verdict.name]))
    if assessment.directory_status != "ok":
        # The directory/EOCD lived at the end of the file; without the
        # commit marker its exact extent is unknowable, so pin the region
        # to the archive tail.
        start = assessment.archive_size
        regions.append(DamageRegion(
            start=start, end=start,
            description="central directory lost (reconstructed from local headers)",
            members=[]))
    return _merge(regions)


__all__ = ["DamageRegion", "minimal_diagnosis"]
