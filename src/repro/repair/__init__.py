"""``repro.repair`` -- salvage and rebuild damaged vxZIP archives.

The durability counterpart to :mod:`repro.faults`: where the fault modules
*inject* media damage, this package recovers from it.  Three entry points:

* :func:`deep_check` -- media-level verdict for an archive (``vxunzip
  check --deep``): classifies it ``clean`` / ``salvageable`` /
  ``unrecoverable`` with per-member ``intact``/``suspect``/``lost`` detail;
* :func:`repair_archive` -- rebuild a clean archive from the salvageable
  set, with a structured damage report (``vxunzip repair``);
* :func:`minimal_diagnosis` -- the FastDiag-style smallest set of damaged
  regions explaining every lost member.
"""

from __future__ import annotations

from repro.core.integrity import MediaAssessment, assess_media, format_assessment
from repro.repair.diagnosis import DamageRegion, minimal_diagnosis
from repro.repair.rebuild import (
    ACTION_COPIED,
    ACTION_COPIED_WITHOUT_DECODER,
    ACTION_DROPPED,
    MemberAction,
    RepairResult,
    repair_archive,
)


def deep_check(source) -> MediaAssessment:
    """Media-level assessment of an archive (path or bytes); no decoder runs.

    ``assessment.exit_code()`` follows the repair contract: 0 clean,
    1 salvageable, 2 unrecoverable.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        return assess_media(bytes(source))
    import pathlib

    return assess_media(pathlib.Path(source).read_bytes())


__all__ = [
    "ACTION_COPIED",
    "ACTION_COPIED_WITHOUT_DECODER",
    "ACTION_DROPPED",
    "DamageRegion",
    "MediaAssessment",
    "MemberAction",
    "RepairResult",
    "deep_check",
    "format_assessment",
    "minimal_diagnosis",
    "repair_archive",
]
