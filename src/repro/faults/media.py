"""Deterministic media-level faults: the chaos substrate for durability tests.

PR 7's :class:`~repro.faults.FaultPlan` injects faults into *execution*
(decoder runs, workers, syscalls); this module injects faults into the
*archive bytes themselves* -- the torn writes, truncated downloads and
bitrot that the durability layer (commit records, salvage reads,
``vxunzip repair``) exists to survive.  Every fault is a pure function of
its arguments: the same ``(offset, count, seed)`` always produces the same
damaged bytes, so a failing chaos case replays exactly.

Faults:

* :func:`truncate_tail` -- drop the last N bytes (torn download, lost tail
  cache pages);
* :func:`flip_bytes` -- XOR deterministic nonzero masks over a byte range
  (bitrot, a bad sector);
* ``torn-finalize`` -- not a byte transform but an injection point inside
  the builder's durable finalize (``WriteOptions.finalize_fault``), which
  simulates crashing before fsync, before the atomic rename, or halfway
  through writing the central directory, raising :class:`TornFinalize`.
"""

from __future__ import annotations

import hashlib
import os

from repro.errors import VxaError


class TornFinalize(VxaError):
    """A (simulated) crash interrupted the durable finalize sequence.

    Raised by the builder when ``WriteOptions.finalize_fault`` fires: the
    destination path was never renamed into place, and the temp file is
    left exactly as the crash would have left it.  Pickle-safe by
    construction (message-only), so process pools propagate it intact.
    """


#: Media fault kind names, as used by the CLI/corpus tools and the chaos suite.
FAULT_TRUNCATE_TAIL = "truncate-tail"
FAULT_FLIP_BYTES = "flip-bytes"
FAULT_TORN_FINALIZE = "torn-finalize"
MEDIA_FAULT_KINDS = (FAULT_TRUNCATE_TAIL, FAULT_FLIP_BYTES, FAULT_TORN_FINALIZE)


def truncate_tail(data: bytes, drop: int) -> bytes:
    """Drop the final ``drop`` bytes (``drop >= len(data)`` leaves nothing)."""
    if drop < 0:
        raise ValueError("drop must be non-negative")
    if drop == 0:
        return data
    return data[:-drop] if drop < len(data) else b""


def flip_bytes(data: bytes, offset: int, count: int, seed: int = 0) -> bytes:
    """XOR ``count`` bytes at ``offset`` with deterministic nonzero masks.

    The masks derive from SHA-256 of the seed, remapped so no mask byte is
    zero -- every targeted byte really changes, so a fault is never
    silently a no-op.
    """
    if count <= 0:
        return data
    if not 0 <= offset < len(data):
        raise ValueError(f"flip offset {offset} outside data of {len(data)} bytes")
    count = min(count, len(data) - offset)
    masks = bytearray()
    counter = 0
    while len(masks) < count:
        block = hashlib.sha256(f"{seed}:{counter}".encode()).digest()
        masks += bytes((b % 255) + 1 for b in block)
        counter += 1
    damaged = bytearray(data)
    for index in range(count):
        damaged[offset + index] ^= masks[index]
    return bytes(damaged)


def apply_fault_to_file(path, kind: str, *, offset: int = 0, count: int = 1,
                        drop: int = 1, seed: int = 0) -> None:
    """Apply a byte-level media fault to a file in place (corpus generation)."""
    data = open(path, "rb").read()
    if kind == FAULT_TRUNCATE_TAIL:
        damaged = truncate_tail(data, drop)
    elif kind == FAULT_FLIP_BYTES:
        damaged = flip_bytes(data, offset, count, seed)
    else:
        raise ValueError(f"unknown byte-level media fault {kind!r}")
    with open(path, "wb") as handle:
        handle.write(damaged)
        handle.flush()
        os.fsync(handle.fileno())


__all__ = [
    "FAULT_FLIP_BYTES",
    "FAULT_TORN_FINALIZE",
    "FAULT_TRUNCATE_TAIL",
    "MEDIA_FAULT_KINDS",
    "TornFinalize",
    "apply_fault_to_file",
    "flip_bytes",
    "truncate_tail",
]
