"""Deterministic fault injection for extraction robustness drills.

The containment layer (per-member salvage, worker crash recovery, member
deadlines) is only trustworthy if its failure paths are *provoked on
purpose* and asserted against.  This package provides a seeded, frozen,
serialisable :class:`FaultPlan` that the read path consults at well-defined
hook points, behind ``ReadOptions.fault_plan``:

* ``corrupt-payload`` -- flip one deterministic byte of a member's encoded
  payload before it reaches the decoder (surfaces as the same
  :class:`~repro.errors.IntegrityError`/codec failure a truly corrupt
  archive would produce);
* ``syscall-error`` -- raise :class:`~repro.errors.InjectedFault` at the
  member's Nth virtual system call;
* ``exhaust-fuel`` -- cap the member's instruction budget at a tiny value
  so the run dies with :class:`~repro.errors.ResourceLimitExceeded`;
* ``kill-worker`` -- terminate the worker mid-member: a process-pool
  worker exits hard (``os._exit``), a thread/serial worker raises
  :class:`~repro.errors.WorkerCrashed` (the nearest simulation that keeps
  the test process alive);
* ``delay-io`` -- sleep before the member is read, to widen race windows.

With ``fault_plan=None`` (the default everywhere) every hook is a no-op
and no code below imports this package.

Determinism has two parts.  Faults *target* members by exact name, and any
derived value (which payload byte flips, with what) is a pure function of
``(seed, member)``.  Faults that must fire a bounded number of ``times``
(e.g. "kill the worker twice, then let the member through" -- the retry
budget drill) claim firings through a filesystem *ledger* directory with
atomic ``O_EXCL`` slot files, so the count survives the very worker deaths
the plan causes and is race-free across processes.  Plans without bounded
specs need no ledger.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field

from repro.errors import VxaError

KIND_CORRUPT_PAYLOAD = "corrupt-payload"
KIND_SYSCALL_ERROR = "syscall-error"
KIND_EXHAUST_FUEL = "exhaust-fuel"
KIND_KILL_WORKER = "kill-worker"
KIND_DELAY_IO = "delay-io"

_KINDS = (KIND_CORRUPT_PAYLOAD, KIND_SYSCALL_ERROR, KIND_EXHAUST_FUEL,
          KIND_KILL_WORKER, KIND_DELAY_IO)

#: Instruction budget an ``exhaust-fuel`` fault imposes when the spec does
#: not pick one: enough to boot a decoder's first blocks, never enough to
#: finish a real member.
DEFAULT_FUEL = 10_000

#: Process exit status of a ``kill-worker`` firing in a process-pool worker.
KILL_EXIT_STATUS = 87

#: In-process firing counters for ledger-less plans (thread/serial
#: executors, where workers share this process and survive their "death").
_LOCAL_COUNTS: dict = {}
_LOCAL_LOCK = threading.Lock()


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault against one member.

    Attributes:
        member: exact member name the fault targets.
        kind: one of the ``KIND_*`` constants.
        at: kind-specific intensity -- the Nth syscall for
            ``syscall-error`` (1-based, default first), the instruction
            budget for ``exhaust-fuel`` (default :data:`DEFAULT_FUEL`).
        times: fire at most this many observations (``None`` = every
            time).  Bounded specs need the plan's ledger to stay exact
            across worker deaths.
        delay: seconds to sleep for ``delay-io``.
    """

    member: str
    kind: str
    at: int = 0
    times: int | None = None
    delay: float = 0.0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be at least 1")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def as_dict(self) -> dict:
        return {"member": self.member, "kind": self.kind, "at": self.at,
                "times": self.times, "delay": self.delay}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(member=data["member"], kind=data["kind"],
                   at=data.get("at", 0), times=data.get("times"),
                   delay=data.get("delay", 0.0))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable set of :class:`FaultSpec` injections.

    Frozen so it can ride inside a frozen ``ReadOptions``, cross the
    process-pool pickle boundary, and key worker archive caches by its
    ``repr``.  All mutable firing state lives in the ledger directory (or
    the module-local counter table), never on the plan.
    """

    specs: tuple = field(default_factory=tuple)
    seed: int = 0
    ledger: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError("specs must be FaultSpec instances")

    # -- serialisation -----------------------------------------------------

    def as_dict(self) -> dict:
        return {"seed": self.seed, "ledger": self.ledger,
                "specs": [spec.as_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(specs=tuple(FaultSpec.from_dict(item)
                               for item in data.get("specs", ())),
                   seed=data.get("seed", 0),
                   ledger=data.get("ledger"))

    # -- firing bookkeeping ------------------------------------------------

    def _find(self, member: str, kind: str) -> FaultSpec | None:
        for spec in self.specs:
            if spec.member == member and spec.kind == kind:
                return spec
        return None

    def _slot_key(self, spec: FaultSpec) -> str:
        digest = hashlib.sha256(
            f"{self.seed}:{spec.kind}:{spec.member}".encode()).hexdigest()
        return digest[:24]

    def _claim(self, spec: FaultSpec) -> bool:
        """Atomically claim one firing of ``spec``; False once exhausted.

        Unbounded specs (``times=None``) always fire and keep no state.
        Bounded specs claim a slot file in the ledger directory --
        ``O_CREAT|O_EXCL`` is atomic across processes, and files survive
        the claiming worker's death -- or, without a ledger, a counter in
        this process (sufficient for thread/serial executors).
        """
        if spec.times is None:
            return True
        key = self._slot_key(spec)
        if self.ledger is None:
            with _LOCAL_LOCK:
                fired = _LOCAL_COUNTS.get(key, 0)
                if fired >= spec.times:
                    return False
                _LOCAL_COUNTS[key] = fired + 1
                return True
        os.makedirs(self.ledger, exist_ok=True)
        for slot in range(spec.times):
            path = os.path.join(self.ledger, f"{key}.{slot}")
            try:
                handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(handle)
            return True
        return False

    # -- hook queries (all no-ops for untargeted members) ------------------

    def corrupt(self, member: str, payload: bytes) -> bytes:
        """The member's payload, with one deterministic byte flipped."""
        spec = self._find(member, KIND_CORRUPT_PAYLOAD)
        if spec is None or not payload or not self._claim(spec):
            return payload
        digest = hashlib.sha256(f"{self.seed}:{member}".encode()).digest()
        position = int.from_bytes(digest[:4], "little") % len(payload)
        flip = digest[4] | 1        # never zero: the byte always changes
        corrupted = bytearray(payload)
        corrupted[position] ^= flip
        return bytes(corrupted)

    def fuel_limit(self, member: str) -> int | None:
        """Instruction budget override for ``exhaust-fuel``, or ``None``."""
        spec = self._find(member, KIND_EXHAUST_FUEL)
        if spec is None or not self._claim(spec):
            return None
        return spec.at or DEFAULT_FUEL

    def syscall_fault_at(self, member: str) -> int | None:
        """1-based syscall ordinal to fault at, or ``None``."""
        spec = self._find(member, KIND_SYSCALL_ERROR)
        if spec is None or not self._claim(spec):
            return None
        return spec.at or 1

    def io_delay(self, member: str) -> None:
        """Sleep the planned ``delay-io`` interval before reading ``member``."""
        spec = self._find(member, KIND_DELAY_IO)
        if spec is None or spec.delay <= 0 or not self._claim(spec):
            return
        time.sleep(spec.delay)

    def kill_worker(self, member: str) -> None:
        """Fire a planned ``kill-worker`` fault, if one is due.

        In a process-pool worker the process exits hard (the parent sees
        ``BrokenProcessPool``, exactly like a real segfault/OOM kill); in a
        thread worker or the serial path it raises
        :class:`~repro.errors.WorkerCrashed`, which the pool and the
        salvage loop treat as the same event.
        """
        spec = self._find(member, KIND_KILL_WORKER)
        if spec is None or not self._claim(spec):
            return
        from repro.errors import WorkerCrashed
        from repro.parallel.worker import in_process_worker

        if in_process_worker():
            os._exit(KILL_EXIT_STATUS)
        raise WorkerCrashed(
            f"fault injection killed the worker processing {member!r}",
            member=member,
        )


class FaultPlanError(VxaError):
    """A fault plan could not be parsed or applied."""


from repro.faults.media import (  # noqa: E402  -- re-export after FaultPlanError
    FAULT_FLIP_BYTES,
    FAULT_TORN_FINALIZE,
    FAULT_TRUNCATE_TAIL,
    MEDIA_FAULT_KINDS,
    TornFinalize,
    apply_fault_to_file,
    flip_bytes,
    truncate_tail,
)

__all__ = [
    "DEFAULT_FUEL",
    "FAULT_FLIP_BYTES",
    "FAULT_TORN_FINALIZE",
    "FAULT_TRUNCATE_TAIL",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "KILL_EXIT_STATUS",
    "KIND_CORRUPT_PAYLOAD",
    "KIND_DELAY_IO",
    "KIND_EXHAUST_FUEL",
    "KIND_KILL_WORKER",
    "KIND_SYSCALL_ERROR",
    "MEDIA_FAULT_KINDS",
    "TornFinalize",
    "apply_fault_to_file",
    "flip_bytes",
    "truncate_tail",
]
