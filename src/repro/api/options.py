"""Frozen configuration objects for the :mod:`repro.api` facade.

All the knobs that used to ride along as per-call keyword arguments on
``ArchiveReader`` / ``ArchiveWriter`` (``mode``, ``engine``, ``vm_limits``,
``fresh_vm``, ``reuse_policy``, ``allow_lossy``, ...) are consolidated here
into two immutable dataclasses, fixed for the lifetime of an
:class:`~repro.api.archive.Archive` or
:class:`~repro.api.builder.ArchiveBuilder` session.  A scheduler can hand a
session to a worker knowing its behaviour cannot drift mid-batch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.codecs.registry import CodecRegistry
from repro.core.archive_reader import MODE_AUTO, MODE_NATIVE, MODE_VXA
from repro.core.policy import VmReusePolicy
from repro.faults import FaultPlan
from repro.vm.limits import ExecutionLimits
from repro.vm.machine import ENGINE_INTERPRETER, ENGINE_TRANSLATOR

_MODES = (MODE_AUTO, MODE_NATIVE, MODE_VXA)
_ENGINES = (ENGINE_TRANSLATOR, ENGINE_INTERPRETER)

#: Executor kinds for parallel extraction (``ReadOptions.executor``).
EXECUTOR_AUTO = "auto"
EXECUTOR_PROCESS = "process"
EXECUTOR_THREAD = "thread"
_EXECUTORS = (EXECUTOR_AUTO, EXECUTOR_PROCESS, EXECUTOR_THREAD)

#: Per-member failure policies (``ReadOptions.on_error``).
ON_ERROR_ABORT = "abort"
ON_ERROR_SKIP = "skip"
ON_ERROR_QUARANTINE = "quarantine"
_ON_ERROR = (ON_ERROR_ABORT, ON_ERROR_SKIP, ON_ERROR_QUARANTINE)

#: Media-damage policies (``ReadOptions.on_damage``).
ON_DAMAGE_REJECT = "reject"
ON_DAMAGE_SALVAGE = "salvage"
_ON_DAMAGE = (ON_DAMAGE_REJECT, ON_DAMAGE_SALVAGE)

#: Torn-finalize fault injection points (``WriteOptions.finalize_fault``).
FINALIZE_FAULT_PRE_FSYNC = "pre-fsync"
FINALIZE_FAULT_PRE_RENAME = "pre-rename"
FINALIZE_FAULT_MID_DIRECTORY = "mid-directory"
_FINALIZE_FAULTS = (FINALIZE_FAULT_PRE_FSYNC, FINALIZE_FAULT_PRE_RENAME,
                    FINALIZE_FAULT_MID_DIRECTORY)


@dataclass(frozen=True)
class ReadOptions:
    """Session-wide configuration for reading an archive.

    Attributes:
        mode: default extraction mode -- ``"auto"`` (native decoder when
            available, archived decoder otherwise), ``"native"`` or ``"vxa"``.
        force_decode: decode pre-compressed (redec) members all the way to
            their uncompressed form instead of returning the stored bytes.
        engine: VM engine used for archived decoders (``"translator"`` or
            ``"interpreter"``).
        limits: resource ceilings for decoder runs (``None`` -> defaults).
        reuse: VM reuse policy applied across members sharing a decoder
            (paper section 2.4); enforced by the session's
            :class:`~repro.api.session.DecoderSession`.
        registry: codec registry for native fast paths (``None`` -> default).
        chunk_size: unit for streamed member reads and writes.
        superblock_limit: maximum guest instructions per translated trace
            (``None`` -> translator default; ``1`` reproduces the old
            one-basic-block engine, for ablations).
        chain_fragments: back-patch direct-branch successors between
            translated fragments so the dispatcher's hash lookup is only
            paid on indirect branches (disable only for ablations).
        jobs: default worker count for :meth:`Archive.extract_into` and
            :meth:`Archive.check` (``1`` keeps the serial path; ``N > 1``
            shards members by decoder image across the
            :mod:`repro.parallel` engine).
        executor: worker pool flavour for ``jobs > 1`` -- ``"process"``
            (one OS process per worker, true multi-core scaling),
            ``"thread"`` (in-process pool: cheap startup, used for small
            archives and tests), or ``"auto"`` to choose by workload size
            and machine shape.
        code_cache_limit: optional LRU cap on translated fragments per
            session-shared code cache, so long-lived services (``vxserve``)
            cannot grow translation state without bound; evictions are
            surfaced next to the hit/chain/retranslation counters.
        verify_images: static-analysis admission policy for archived
            decoder images -- ``"off"`` (default), ``"warn"`` (analyse and
            warn on unsafe images) or ``"reject"`` (refuse to run an image
            the verifier cannot prove safe; see :mod:`repro.analysis`).
        analysis_elision: let the translator drop bounds guards at sites
            the static verifier proved safe (disable only for the elision
            ablation; ignored by the interpreter engine).
        on_error: what a failing member does to the rest of the run --
            ``"abort"`` (default: first failure raises, matching the old
            behaviour), ``"skip"`` (record the failure in the
            :class:`~repro.api.archive.ExtractionReport` and continue) or
            ``"quarantine"`` (like skip, but failed members are flagged
            quarantined and crash-killed members are retried up to
            ``retries`` before quarantine).
        retries: per-member retry budget after a worker crash (fresh VM and
            fresh session on each retry).  A member whose processing kills
            workers ``retries + 1`` times is quarantined rather than
            retried forever.  Only consulted when ``on_error`` is not
            ``"abort"``.
        member_deadline: wall-clock seconds one member's decoder run may
            take before it is aborted with
            :class:`~repro.errors.DeadlineExceeded` (piggybacked on the
            engines' fuel checks, so a wedged guest cannot hang a worker).
            ``None`` disables the deadline.
        fault_plan: deterministic fault-injection plan
            (:class:`~repro.faults.FaultPlan`) consulted by the read path's
            chaos hooks; ``None`` (production) makes every hook a no-op.
        on_damage: what archive *media* damage does to the session --
            ``"reject"`` (default: a torn or corrupt container raises
            :class:`~repro.errors.ArchiveDamagedError`/``ZipFormatError``
            at open) or ``"salvage"`` (reconstruct the directory by
            scanning local headers, extract healthy members byte-identically
            and route damaged ones through the
            :class:`~repro.api.archive.ExtractionReport` as per-member
            failures, mirroring what ``on_error`` does for failing
            decoders).
        durable_output: fsync extracted files (and their directory) before
            the temp-to-final rename in :meth:`Archive.extract_into`, so a
            crash right after extraction cannot leave renamed-but-empty
            output files.  Default on; disable for bulk scratch extractions
            where speed beats durability.
    """

    mode: str = MODE_AUTO
    force_decode: bool = False
    engine: str = ENGINE_TRANSLATOR
    limits: ExecutionLimits | None = None
    reuse: VmReusePolicy = VmReusePolicy.ALWAYS_FRESH
    registry: CodecRegistry | None = None
    chunk_size: int = 1 << 16
    superblock_limit: int | None = None
    chain_fragments: bool = True
    jobs: int = 1
    executor: str = EXECUTOR_AUTO
    code_cache_limit: int | None = None
    verify_images: str = "off"
    analysis_elision: bool = True
    on_error: str = ON_ERROR_ABORT
    retries: int = 1
    member_deadline: float | None = None
    fault_plan: FaultPlan | None = None
    on_damage: str = ON_DAMAGE_REJECT
    durable_output: bool = True

    def __post_init__(self):
        if self.mode not in _MODES:
            raise ValueError(f"unknown extraction mode {self.mode!r}")
        if self.engine not in _ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if not isinstance(self.reuse, VmReusePolicy):
            raise TypeError("reuse must be a VmReusePolicy")
        if self.superblock_limit is not None and self.superblock_limit < 1:
            raise ValueError("superblock_limit must be at least 1")
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.executor not in _EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.code_cache_limit is not None and self.code_cache_limit < 1:
            raise ValueError("code_cache_limit must be at least 1")
        if self.verify_images not in ("off", "warn", "reject"):
            raise ValueError(f"unknown verify_images mode {self.verify_images!r}")
        if self.on_error not in _ON_ERROR:
            raise ValueError(f"unknown on_error policy {self.on_error!r}")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.member_deadline is not None and self.member_deadline <= 0:
            raise ValueError("member_deadline must be positive")
        if self.fault_plan is not None and not isinstance(self.fault_plan,
                                                          FaultPlan):
            raise TypeError("fault_plan must be a FaultPlan")
        if self.on_damage not in _ON_DAMAGE:
            raise ValueError(f"unknown on_damage policy {self.on_damage!r}")

    def with_changes(self, **changes) -> "ReadOptions":
        """A copy of these options with some fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class WriteOptions:
    """Session-wide configuration for building an archive.

    Attributes:
        registry: codec registry used for recognition/selection/encoding
            (``None`` -> default).
        allow_lossy: permit lossy media codecs during codec selection.
        attach_decoders: embed VXA decoder pseudo-files (disable only for
            the storage-overhead ablation; archives become undecodable by
            codec-ignorant readers).
        comment: ZIP end-of-central-directory comment.
        durable: crash-consistent finalize for path-backed builds -- the
            archive is written to a temp file next to its destination, the
            file and its parent directory are fsynced, and only then is it
            atomically renamed into place.  A crash at any point leaves
            either the complete old state or the complete new archive,
            never a torn one.  Ignored for caller-supplied sinks (sockets,
            in-memory buffers), which have no rename to make atomic.
        commit_record: append the end-of-archive commit record (per-extent
            SHA-256 digest table + commit marker,
            :mod:`repro.zipformat.commit`) at finalize.  Backward
            compatible -- plain ZIP readers see only comment bytes and one
            more hidden pseudo-file.  Disable only for interop ablations.
        finalize_fault: deterministic torn-finalize injection point for the
            chaos suite -- ``"pre-fsync"`` / ``"pre-rename"`` abort the
            durable finalize before the respective step, ``"mid-directory"``
            truncates the temp file halfway through the central directory
            first.  ``None`` (production) injects nothing.
    """

    registry: CodecRegistry | None = None
    allow_lossy: bool = False
    attach_decoders: bool = True
    comment: bytes = b"vxZIP archive"
    durable: bool = True
    commit_record: bool = True
    finalize_fault: str | None = None

    def __post_init__(self):
        if (self.finalize_fault is not None
                and self.finalize_fault not in _FINALIZE_FAULTS):
            raise ValueError(f"unknown finalize_fault {self.finalize_fault!r}")

    def with_changes(self, **changes) -> "WriteOptions":
        """A copy of these options with some fields replaced."""
        return replace(self, **changes)
