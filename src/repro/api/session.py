"""Decoder VM lifecycle management for one archive read session.

Paper section 2.4: reusing VM state across files that share a decoder
"may improve performance, especially on archives containing many small
files", at the cost of potential cross-file information leakage; the
recommended mitigation is to re-initialise whenever the security attributes
of the files being processed change.  The old core scattered this decision
across ad-hoc ``fresh_vm`` flags; :class:`DecoderSession` is now the single
place that owns decoder VMs, applies the :class:`~repro.core.policy.VmReusePolicy`
against each file's :class:`~repro.core.policy.SecurityAttributes`, and
counts how often state was reused versus re-initialised (the ablation
benchmark reports these counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.policy import SecurityAttributes, VmReusePolicy
from repro.vm.limits import ExecutionLimits
from repro.vm.machine import DecodeResult, ENGINE_TRANSLATOR, VirtualMachine


@dataclass
class SessionStats:
    """Counters for one decoder session (feeds the section 2.4 ablation)."""

    decodes: int = 0
    vm_initialisations: int = 0     # pristine decoder image (re)loads
    vm_reuses: int = 0              # decodes that kept previous VM state


class DecoderSession:
    """Owns one VM per decoder image and decides reuse vs re-initialise.

    Args:
        load_image: callable mapping a decoder pseudo-file offset to the raw
            decoder ELF bytes (typically ``Archive._load_decoder``).
        policy: the VM reuse policy enforced for every decode.
        engine: VM engine for all decoder runs.
        limits: session-wide resource ceilings (scaled per input).
    """

    def __init__(
        self,
        load_image: Callable[[int], bytes],
        *,
        policy: VmReusePolicy = VmReusePolicy.ALWAYS_FRESH,
        engine: str = ENGINE_TRANSLATOR,
        limits: ExecutionLimits | None = None,
    ):
        self._load_image = load_image
        self.policy = policy
        self._engine = engine
        self._limits = limits or ExecutionLimits()
        self._vms: dict[int, VirtualMachine] = {}
        self._last_attributes: dict[int, SecurityAttributes] = {}
        self.stats = SessionStats()

    # -- policy ----------------------------------------------------------------

    def _needs_fresh(self, decoder_offset: int,
                     attributes: SecurityAttributes) -> bool:
        """Must the VM be re-initialised before decoding this file?"""
        if self.policy is VmReusePolicy.ALWAYS_FRESH:
            return True
        if self.policy is VmReusePolicy.ALWAYS_REUSE:
            return False
        previous = self._last_attributes.get(decoder_offset)
        return previous is not None and not previous.same_domain(attributes)

    # -- decoding --------------------------------------------------------------

    def decode(
        self,
        decoder_offset: int,
        encoded: bytes,
        *,
        attributes: SecurityAttributes | None = None,
        limits: ExecutionLimits | None = None,
        fresh_override: bool | None = None,
    ) -> DecodeResult:
        """Run the archived decoder at ``decoder_offset`` over ``encoded``.

        ``attributes`` are the security attributes of the file being decoded;
        under ``REUSE_SAME_ATTRIBUTES`` a change of protection domain forces
        re-initialisation.  ``fresh_override`` bypasses the policy for legacy
        callers (the deprecated ``fresh_vm`` flag) and should not be used by
        new code.
        """
        attributes = attributes or SecurityAttributes()
        vm = self._vms.get(decoder_offset)
        if vm is None:
            vm = VirtualMachine(
                self._load_image(decoder_offset),
                engine=self._engine,
                limits=self._limits,
            )
            self._vms[decoder_offset] = vm
            # Constructing the VM loads a pristine image, so the first decode
            # never needs another reset regardless of policy.
            fresh = False
            self.stats.vm_initialisations += 1
        elif fresh_override is not None:
            fresh = fresh_override
            self.stats.vm_initialisations += 1 if fresh else 0
            self.stats.vm_reuses += 0 if fresh else 1
        else:
            fresh = self._needs_fresh(decoder_offset, attributes)
            if fresh:
                self.stats.vm_initialisations += 1
            else:
                self.stats.vm_reuses += 1
        self._last_attributes[decoder_offset] = attributes
        self.stats.decodes += 1
        run_limits = limits or self._limits.scaled_for_input(len(encoded))
        return vm.decode(encoded, limits=run_limits, fresh=fresh)

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Drop all VM state (a pristine image is loaded on next use)."""
        self._vms.clear()
        self._last_attributes.clear()

    def close(self) -> None:
        self.reset()

    def __enter__(self) -> "DecoderSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
