"""Decoder VM lifecycle management for one archive read session.

Paper section 2.4: reusing VM state across files that share a decoder
"may improve performance, especially on archives containing many small
files", at the cost of potential cross-file information leakage; the
recommended mitigation is to re-initialise whenever the security attributes
of the files being processed change.  The old core scattered this decision
across ad-hoc ``fresh_vm`` flags; :class:`DecoderSession` is now the single
place that owns decoder VMs, applies the :class:`~repro.core.policy.VmReusePolicy`
against each file's :class:`~repro.core.policy.SecurityAttributes`, and
counts how often state was reused versus re-initialised (the ablation
benchmark reports these counters).

The session also owns one :class:`~repro.vm.code_cache.CodeCache` per
decoder image whenever the policy permits VM reuse at all.  Translated
fragments are derived from the decoder's *code*, never from member data, so
they stay valid (and leak nothing) across the sandbox re-initialisations the
policy forces on protection-domain changes: members sharing a decoder share
its translations for the life of the session.  Under ``ALWAYS_FRESH`` the
caches stay private to each VM and are invalidated on every reset -- the
session's retranslation counters then expose exactly what that safety
posture costs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Callable

from repro.core.policy import SecurityAttributes, VmReusePolicy
from repro.vm.code_cache import CodeCache
from repro.vm.limits import ExecutionLimits
from repro.vm.machine import DecodeResult, ENGINE_TRANSLATOR, VirtualMachine


@dataclass
class SessionStats:
    """Counters for one decoder session (feeds the section 2.4 ablation).

    The code-cache counters aggregate the per-run
    :class:`~repro.vm.limits.ExecutionStats` of every decode performed
    through this session; ``vxunzip --stats`` and
    :class:`~repro.core.archive_reader.IntegrityReport` surface them.
    """

    decodes: int = 0
    vm_initialisations: int = 0     # pristine decoder image (re)loads
    vm_reuses: int = 0              # decodes that kept previous VM state
    fragments_translated: int = 0   # superblock translations performed
    cache_hits: int = 0             # blocks served from the fragment cache
    chained_branches: int = 0       # transitions over back-patched edges
    retranslations: int = 0         # translations of an already-seen entry
    evictions: int = 0              # fragments dropped by the LRU entry cap
    guards_elided: int = 0          # bounds guards dropped on static proofs
    images_verified: int = 0        # decoder images statically analysed
    members_salvaged: int = 0       # members extracted despite media damage
    directory_reconstructed: int = 0  # opens that rebuilt a lost directory
    commit_record_verified: int = 0   # opens whose commit record checked out

    def merge(self, other: "SessionStats") -> None:
        """Accumulate another session's counters (per-worker stats roll-up)."""
        for field in fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))

    def as_dict(self) -> dict:
        """Counters as a plain dict (JSON transport across worker processes)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SessionStats":
        names = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in names})


class DecoderSession:
    """Owns one VM per decoder image and decides reuse vs re-initialise.

    Args:
        load_image: callable mapping a decoder pseudo-file offset to the raw
            decoder ELF bytes (typically ``Archive._load_decoder``).
        policy: the VM reuse policy enforced for every decode.
        engine: VM engine for all decoder runs.
        limits: session-wide resource ceilings (scaled per input).
        superblock_limit: translator trace-length ceiling (``None`` ->
            engine default).
        chain_fragments: enable direct-branch back-patching in the engine.
        code_cache_limit: optional LRU entry cap applied to every
            session-shared :class:`~repro.vm.code_cache.CodeCache`, so a
            long-running service cannot grow translation state without
            bound (``None`` -> unbounded; safe for single archives).
        verify_images: static-analysis admission policy applied to every
            decoder image before it runs (``"off"``/``"warn"``/``"reject"``).
        analysis_elision: let the translator drop statically proved bounds
            guards (ablation flag).
    """

    def __init__(
        self,
        load_image: Callable[[int], bytes],
        *,
        policy: VmReusePolicy = VmReusePolicy.ALWAYS_FRESH,
        engine: str = ENGINE_TRANSLATOR,
        limits: ExecutionLimits | None = None,
        superblock_limit: int | None = None,
        chain_fragments: bool = True,
        code_cache_limit: int | None = None,
        verify_images: str = "off",
        analysis_elision: bool = True,
    ):
        self._load_image = load_image
        self.policy = policy
        self._engine = engine
        self._limits = limits or ExecutionLimits()
        self._superblock_limit = superblock_limit
        self._chain_fragments = chain_fragments
        self._code_cache_limit = code_cache_limit
        self._verify_images = verify_images
        self._analysis_elision = analysis_elision
        self._vms: dict[int, VirtualMachine] = {}
        self._code_caches: dict[int, CodeCache] = {}
        self._last_attributes: dict[int, SecurityAttributes] = {}
        self.stats = SessionStats()

    # -- policy ----------------------------------------------------------------

    def _needs_fresh(self, decoder_offset: int,
                     attributes: SecurityAttributes) -> bool:
        """Must the VM be re-initialised before decoding this file?"""
        if self.policy is VmReusePolicy.ALWAYS_FRESH:
            return True
        if self.policy is VmReusePolicy.ALWAYS_REUSE:
            return False
        previous = self._last_attributes.get(decoder_offset)
        return previous is not None and not previous.same_domain(attributes)

    def _code_cache_for(self, decoder_offset: int) -> CodeCache | None:
        """The session-shared code cache for one decoder, when permitted.

        Translation sharing rides on the reuse policy's consent: when the
        policy never reuses VM state (``ALWAYS_FRESH``) each VM keeps a
        private cache that resets with it, preserving pristine-sandbox
        semantics bit for bit.  Any reuse-permitting policy shares one
        cache per decoder image across resets and members.
        """
        if self.policy is VmReusePolicy.ALWAYS_FRESH:
            return None
        cache = self._code_caches.get(decoder_offset)
        if cache is None:
            cache = CodeCache(shared=True, limit=self._code_cache_limit)
            self._code_caches[decoder_offset] = cache
        return cache

    # -- decoding --------------------------------------------------------------

    def decode(
        self,
        decoder_offset: int,
        encoded: bytes,
        *,
        attributes: SecurityAttributes | None = None,
        limits: ExecutionLimits | None = None,
        fresh_override: bool | None = None,
        fault_syscall: int | None = None,
    ) -> DecodeResult:
        """Run the archived decoder at ``decoder_offset`` over ``encoded``.

        ``attributes`` are the security attributes of the file being decoded;
        under ``REUSE_SAME_ATTRIBUTES`` a change of protection domain forces
        re-initialisation.  ``fresh_override`` bypasses the policy for legacy
        callers (the deprecated ``fresh_vm`` flag) and should not be used by
        new code.  ``fault_syscall`` is the fault-injection hook: fail the
        run at the guest's Nth virtual system call (``None`` in production).
        """
        attributes = attributes or SecurityAttributes()
        vm = self._vms.get(decoder_offset)
        if vm is None:
            vm = VirtualMachine(
                self._load_image(decoder_offset),
                engine=self._engine,
                limits=self._limits,
                code_cache=self._code_cache_for(decoder_offset),
                superblock_limit=self._superblock_limit,
                chain_fragments=self._chain_fragments,
                verify_images=self._verify_images,
                analysis_elision=self._analysis_elision,
            )
            self._vms[decoder_offset] = vm
            if vm.analysis_report is not None:
                self.stats.images_verified += 1
            # Constructing the VM loads a pristine image, so the first decode
            # never needs another reset regardless of policy.
            fresh = False
            self.stats.vm_initialisations += 1
        elif fresh_override is not None:
            fresh = fresh_override
            self.stats.vm_initialisations += 1 if fresh else 0
            self.stats.vm_reuses += 0 if fresh else 1
        else:
            fresh = self._needs_fresh(decoder_offset, attributes)
            if fresh:
                self.stats.vm_initialisations += 1
            else:
                self.stats.vm_reuses += 1
        self._last_attributes[decoder_offset] = attributes
        self.stats.decodes += 1
        run_limits = limits or self._limits.scaled_for_input(len(encoded))
        result = vm.decode(encoded, limits=run_limits, fresh=fresh,
                           fault_syscall=fault_syscall)
        run = result.stats
        self.stats.fragments_translated += run.fragments_translated
        self.stats.cache_hits += run.fragment_cache_hits
        self.stats.chained_branches += run.chained_branches
        self.stats.retranslations += run.retranslations
        self.stats.evictions += run.evictions
        self.stats.guards_elided += run.guards_elided
        return result

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Drop all VM state (a pristine image is loaded on next use)."""
        self._vms.clear()
        self._code_caches.clear()
        self._last_attributes.clear()

    def close(self) -> None:
        self.reset()

    def __enter__(self) -> "DecoderSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
