"""``repro.api`` -- the public, streaming, session-oriented archive facade.

This package is the single supported surface for working with vxZIP
archives::

    import repro.api as vxa

    # Build an archive straight onto disk.
    with vxa.create("backup.zip", vxa.WriteOptions(allow_lossy=True)) as builder:
        builder.add("notes.txt", b"hello")

    # Read it back without ever loading the whole file into memory.
    with vxa.open("backup.zip") as archive:
        data = archive.extract("notes.txt").data
        with archive.open_member("notes.txt") as stream:
            first = stream.read(4096)          # chunked streaming decode
        report = archive.check()               # always-run-the-decoder check

Both :func:`open` and :func:`create` accept either a filesystem path or a
seekable binary file object; configuration is carried by the frozen
:class:`ReadOptions` / :class:`WriteOptions` dataclasses, and decoder VM
lifecycle (the paper's section 2.4 reuse-vs-reinitialise trade-off) is
owned by one :class:`DecoderSession` per archive.
"""

from __future__ import annotations

import builtins
import os

from repro.api.archive import (
    Archive,
    ExtractionRecord,
    ExtractionReport,
    MemberFailure,
    MemberInfo,
    MemberPlan,
    safe_extract_path,
)
from repro.api.builder import ArchiveBuilder, ArchivedFileInfo, ArchiveManifest
from repro.api.options import (
    EXECUTOR_AUTO,
    EXECUTOR_PROCESS,
    EXECUTOR_THREAD,
    ON_DAMAGE_REJECT,
    ON_DAMAGE_SALVAGE,
    ON_ERROR_ABORT,
    ON_ERROR_QUARANTINE,
    ON_ERROR_SKIP,
    ReadOptions,
    WriteOptions,
)
from repro.faults import FaultPlan, FaultSpec
from repro.api.session import DecoderSession, SessionStats
from repro.core.archive_reader import (
    ExtractedFile,
    IntegrityReport,
    MODE_AUTO,
    MODE_NATIVE,
    MODE_VXA,
)
from repro.core.policy import SecurityAttributes, VmReusePolicy

__all__ = [
    "open",
    "create",
    "Archive",
    "ArchiveBuilder",
    "ReadOptions",
    "WriteOptions",
    "DecoderSession",
    "SessionStats",
    "ExtractedFile",
    "ExtractionRecord",
    "ExtractionReport",
    "MemberFailure",
    "ArchivedFileInfo",
    "ArchiveManifest",
    "FaultPlan",
    "FaultSpec",
    "IntegrityReport",
    "MemberInfo",
    "MemberPlan",
    "SecurityAttributes",
    "VmReusePolicy",
    "MODE_AUTO",
    "MODE_NATIVE",
    "MODE_VXA",
    "EXECUTOR_AUTO",
    "EXECUTOR_PROCESS",
    "EXECUTOR_THREAD",
    "ON_ERROR_ABORT",
    "ON_ERROR_SKIP",
    "ON_ERROR_QUARANTINE",
    "ON_DAMAGE_REJECT",
    "ON_DAMAGE_SALVAGE",
    "safe_extract_path",
]


def open(source, options: ReadOptions | None = None) -> Archive:
    """Open a vxZIP archive for reading.

    ``source`` may be a filesystem path (opened and owned by the returned
    :class:`Archive`), a seekable binary file object, or -- for convenience
    and the deprecated shims -- in-memory ``bytes``.
    """
    if isinstance(source, (str, os.PathLike)):
        file = builtins.open(source, "rb")
        try:
            return Archive(file, options, owns_file=True, source_path=source)
        except BaseException:
            file.close()
            raise
    return Archive(source, options)


def create(target, options: WriteOptions | None = None) -> ArchiveBuilder:
    """Start building a vxZIP archive.

    ``target`` may be a filesystem path (created and owned by the returned
    :class:`ArchiveBuilder`) or a writable binary file object.  Path targets
    default to the crash-consistent finalize (``WriteOptions.durable``):
    the archive is built in a temp file next to its destination and only
    renamed into place -- fsynced -- once complete, so a crash mid-build
    can never leave a torn archive under the target name.
    """
    options = options or WriteOptions()
    if isinstance(target, (str, os.PathLike)):
        if options.durable:
            final_path = os.fspath(target)
            temp_path = f"{final_path}.vxa-tmp.{os.getpid()}"
            file = builtins.open(temp_path, "wb")
            try:
                return ArchiveBuilder(file, options, owns_file=True,
                                      final_path=final_path, temp_path=temp_path)
            except BaseException:
                file.close()
                os.unlink(temp_path)
                raise
        file = builtins.open(target, "wb")
        try:
            return ArchiveBuilder(file, options, owns_file=True)
        except BaseException:
            file.close()
            raise
    return ArchiveBuilder(target, options)
