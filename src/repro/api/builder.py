"""The streaming archive-building facade (vxZIP's writing side).

:class:`ArchiveBuilder` replaces ``ArchiveWriter().finish() -> bytes``: it
writes members straight through to a caller-supplied (or path-opened)
binary sink as they are added, so building a multi-gigabyte archive never
accumulates the whole output in memory.  Codec selection keeps the paper's
behaviour: recognise already-compressed input and store it untouched with a
decoder attached (the redec path), otherwise encode with a fitting codec
and tag the member with the reserved VXA method.
"""

from __future__ import annotations

import contextlib
import os
import pathlib

from repro.codecs.base import Codec
from repro.codecs.registry import default_registry
from repro.core.archive_writer import ArchivedFileInfo, ArchiveManifest
from repro.core.decoder_store import DecoderStore, StoredDecoder
from repro.core.extension import VxaExtension, pack_unix_extra
from repro.core.fsutil import fsync_directory, fsync_file
from repro.core.policy import SecurityAttributes
from repro.errors import ArchiveError
from repro.faults.media import TornFinalize
from repro.zipformat.crc import crc32
from repro.zipformat.structures import METHOD_STORE, METHOD_VXA
from repro.zipformat.writer import ZipWriter

from repro.api.options import (
    FINALIZE_FAULT_MID_DIRECTORY,
    FINALIZE_FAULT_PRE_FSYNC,
    FINALIZE_FAULT_PRE_RENAME,
    WriteOptions,
)


class ArchiveBuilder:
    """Builds vxZIP archives onto a writable binary sink.

    Use :func:`repro.api.create` rather than constructing directly.  The
    builder is a context manager: leaving the ``with`` block cleanly
    finalises the archive (writes the central directory); leaving it on an
    exception does not, so a half-built archive is never silently passed
    off as complete.
    """

    def __init__(self, file, options: WriteOptions | None = None, *,
                 owns_file: bool = False, final_path=None, temp_path=None):
        self.options = options or WriteOptions()
        self._file = file
        self._owns_file = owns_file
        # Durable path-backed builds write to ``temp_path`` and atomically
        # rename onto ``final_path`` at close; both stay ``None`` for
        # caller-supplied sinks (see :func:`repro.api.create`).
        self._final_path = pathlib.Path(final_path) if final_path is not None else None
        self._temp_path = pathlib.Path(temp_path) if temp_path is not None else None
        self._registry = self.options.registry or default_registry()
        self._zip = ZipWriter(sink=file)
        self._decoders = DecoderStore(self._zip)
        self._manifest = ArchiveManifest()
        self._finished = False
        self._closed = False

    @property
    def temp_path(self):
        """Temp file a durable build is writing to (``None`` otherwise)."""
        return self._temp_path

    # -- adding files ----------------------------------------------------------

    def add(
        self,
        name: str,
        data: bytes,
        *,
        codec: str | None = None,
        allow_lossy: bool | None = None,
        attributes: SecurityAttributes | None = None,
        store_raw: bool = False,
        encode_options: dict | None = None,
    ) -> ArchivedFileInfo:
        """Archive one file.

        Args:
            name: member name inside the archive.
            data: file contents.
            codec: force a specific codec by name (bypasses selection).
            allow_lossy: override the session-level lossy policy for this file.
            attributes: Unix-style security attributes recorded on the member.
            store_raw: store the file uncompressed with no decoder attached.
            encode_options: extra keyword arguments for the codec's encoder.
        """
        if self._finished:
            raise ArchiveError("archive already finalised")
        if not name:
            raise ArchiveError("archived files need a name")
        lossy_ok = (self.options.allow_lossy if allow_lossy is None
                    else allow_lossy)
        attributes = attributes or SecurityAttributes()
        external = (attributes.mode & 0xFFFF) << 16
        # uid/gid ride in a standard Info-ZIP extra field so readers can
        # reconstruct the full protection domain for VM-reuse decisions;
        # omitted for the default 0/0 domain, which readers assume anyway.
        unix_extra = b""
        if attributes.owner or attributes.group:
            unix_extra = pack_unix_extra(attributes.owner, attributes.group)

        if store_raw:
            self._zip.add_member(name, data, method=METHOD_STORE,
                                 extra=unix_extra,
                                 external_attributes=external)
            info = ArchivedFileInfo(name, None, len(data), len(data), False,
                                    METHOD_STORE)
            self._manifest.files.append(info)
            return info

        recognized = self._registry.recognize_compressed(data)
        if codec is not None:
            chosen = self._registry.get(codec)
            if recognized is not None and recognized.name == chosen.name:
                return self._add_precompressed(name, data, chosen, external,
                                               unix_extra)
            return self._add_encoded(name, data, chosen, external, unix_extra,
                                     encode_options)
        if recognized is not None:
            return self._add_precompressed(name, data, recognized, external,
                                           unix_extra)
        chosen = self._registry.select_for_raw(data, allow_lossy=lossy_ok)
        return self._add_encoded(name, data, chosen, external, unix_extra,
                                 encode_options)

    def add_path(self, path, name: str | None = None, **kwargs) -> ArchivedFileInfo:
        """Archive a file from disk (member name defaults to its basename)."""
        path = pathlib.Path(path)
        return self.add(name or path.name, path.read_bytes(), **kwargs)

    def _attach(self, codec: Codec) -> StoredDecoder | None:
        if not self.options.attach_decoders:
            return None
        return self._decoders.store(codec.name, codec.guest_decoder_image())

    def _add_precompressed(self, name: str, data: bytes, codec: Codec,
                           external: int, unix_extra: bytes) -> ArchivedFileInfo:
        """The redec path: store already-compressed data untouched (method 0)."""
        decoder = self._attach(codec)
        decoded = codec.decode(data)
        extra = unix_extra
        if decoder is not None:
            extra += VxaExtension(
                decoder_offset=decoder.offset,
                original_size=len(decoded),
                original_crc32=crc32(decoded),
                codec_name=codec.name,
                precompressed=True,
                lossy=codec.info.lossy,
            ).pack()
        self._zip.add_member(name, data, method=METHOD_STORE, extra=extra,
                             external_attributes=external)
        info = ArchivedFileInfo(name, codec.name, len(data), len(data), True,
                                METHOD_STORE)
        self._manifest.files.append(info)
        return info

    def _add_encoded(self, name: str, data: bytes, codec: Codec, external: int,
                     unix_extra: bytes,
                     encode_options: dict | None) -> ArchivedFileInfo:
        """Compress with a codec's native encoder and tag with the VXA method."""
        encoded = codec.encode(data, **(encode_options or {}))
        decoder = self._attach(codec)
        # For lossy codecs the "original" the decoder reproduces is the decoded
        # output, not the input bytes; record the decoder's actual product so
        # integrity checks are meaningful (paper section 2.3).
        if codec.info.lossy:
            reference = codec.decode(encoded)
        else:
            reference = data
        extra = unix_extra
        if decoder is not None:
            extra += VxaExtension(
                decoder_offset=decoder.offset,
                original_size=len(reference),
                original_crc32=crc32(reference),
                codec_name=codec.name,
                precompressed=False,
                lossy=codec.info.lossy,
            ).pack()
        self._zip.add_member(
            name,
            encoded,
            method=METHOD_VXA,
            uncompressed_size=len(reference),
            crc=crc32(reference),
            extra=extra,
            external_attributes=external,
        )
        info = ArchivedFileInfo(name, codec.name, len(encoded), len(data),
                                False, METHOD_VXA)
        self._manifest.files.append(info)
        return info

    # -- finishing -------------------------------------------------------------

    def finish(self, comment: bytes | None = None) -> ArchiveManifest:
        """Write the central directory and EOCD; return the manifest."""
        if self._finished:
            raise ArchiveError("archive already finalised")
        self._zip.finish(self.options.comment if comment is None else comment,
                         commit=self.options.commit_record)
        self._finished = True
        self._manifest.decoders = self._decoders.stored
        self._manifest.archive_size = self._zip.total_size
        return self._manifest

    @property
    def manifest(self) -> ArchiveManifest:
        return self._manifest

    @property
    def finished(self) -> bool:
        return self._finished

    def close(self) -> None:
        """Finalise (if needed) and release the sink when the builder owns it.

        Durable path-backed builds complete the crash-consistency sequence
        here: flush + fsync the temp file, atomically rename it onto the
        destination, then fsync the parent directory.  A crash anywhere in
        that sequence leaves either the old destination state or the fully
        committed new archive -- never a torn one.
        """
        if self._closed:
            return
        if not self._finished:
            self.finish()
        self._closed = True
        if self._final_path is not None:
            self._durable_finalize()
        elif self._owns_file:
            self._file.close()

    def _durable_finalize(self) -> None:
        fault = self.options.finalize_fault
        file = self._file
        if fault == FINALIZE_FAULT_MID_DIRECTORY:
            # Simulate the writeback stopping halfway through the central
            # directory: members are on disk, the directory is torn and the
            # EOCD never made it.
            file.flush()
            tear_at = self._zip.directory_offset + max(1, self._zip.directory_size // 2)
            file.truncate(tear_at)
            file.close()
            raise TornFinalize("simulated crash mid central-directory write")
        if fault == FINALIZE_FAULT_PRE_FSYNC:
            file.flush()
            file.close()
            raise TornFinalize("simulated crash before output fsync")
        fsync_file(file)
        file.close()
        if fault == FINALIZE_FAULT_PRE_RENAME:
            raise TornFinalize("simulated crash before atomic rename")
        os.replace(self._temp_path, self._final_path)
        fsync_directory(self._final_path.parent)

    def __enter__(self) -> "ArchiveBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
            return
        if self._owns_file:
            with contextlib.suppress(OSError, ValueError):
                self._file.close()
        # An abandoned durable build must not leave its temp file around --
        # except after an injected torn finalize, where the temp *is* the
        # simulated crash state the chaos suite inspects.
        if (self._temp_path is not None and not isinstance(exc, TornFinalize)
                and self._temp_path.exists()):
            with contextlib.suppress(OSError):
                self._temp_path.unlink()
