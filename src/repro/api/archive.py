"""The streaming, session-oriented archive reading facade.

:class:`Archive` replaces the whole-buffer ``ArchiveReader(archive: bytes)``
API: it operates on a seekable file object (the central directory is parsed
from the archive tail, member payloads are fetched by offset in bounded
chunks), so a multi-gigabyte archive is never held in memory.  All
behavioural knobs live in one frozen :class:`~repro.api.options.ReadOptions`
and decoder VM lifecycle is owned by a single
:class:`~repro.api.session.DecoderSession` per archive.
"""

from __future__ import annotations

import io
import os
import pathlib
from dataclasses import dataclass, replace
from typing import Iterator

from repro.codecs.registry import default_registry
from repro.core.archive_reader import (
    ExtractedFile,
    IntegrityReport,
    MODE_AUTO,
    MODE_NATIVE,
    MODE_VXA,
)
from repro.core.extension import VxaExtension, parse_extension, parse_unix_extra
from repro.core.fsutil import fsync_directory, fsync_file
from repro.core.policy import SecurityAttributes, VmReusePolicy
from repro.errors import (
    ArchiveError,
    DecoderMissingError,
    GuestFault,
    IntegrityError,
    PathTraversalError,
    VxaError,
    WorkerCrashed,
)
from repro.vm.limits import ExecutionLimits
from repro.zipformat.crc import crc32
from repro.zipformat.reader import ZipReader
from repro.zipformat.structures import METHOD_STORE, METHOD_VXA, ZipEntry

from repro.api.options import (
    ON_DAMAGE_SALVAGE,
    ON_ERROR_ABORT,
    ON_ERROR_QUARANTINE,
    ReadOptions,
)
from repro.api.session import DecoderSession


@dataclass(frozen=True)
class MemberInfo:
    """Listing metadata for one archive member."""

    name: str
    stored_size: int
    original_size: int
    method: int
    codec_name: str | None
    precompressed: bool
    lossy: bool
    has_decoder: bool
    attributes: SecurityAttributes


@dataclass
class ExtractionRecord:
    """What :meth:`Archive.extract_into` did with one member."""

    name: str
    path: pathlib.Path
    size: int
    used_vxa_decoder: bool
    decoded: bool
    codec_name: str | None


@dataclass
class MemberFailure:
    """One contained member failure, as the salvage policies record it.

    Attributes:
        name: the failing member.
        error_type: exception class name (``"ResourceLimitExceeded"``, ...).
        message: the exception message.
        offset: the member's archived-decoder pseudo-file offset, when it
            has one (identifies *which* decoder image misbehaved).
        instructions: guest fuel consumed when the failure fired, when the
            engine recorded it on the exception.
        worker: shard worker id that hit the failure (``None`` = serial).
        attempts: processing attempts made, counting crash retries.
        quarantined: the member was put beyond use by the ``quarantine``
            policy (every recorded failure under it, including members that
            repeatedly killed their worker).
    """

    name: str
    error_type: str
    message: str
    offset: int | None = None
    instructions: int | None = None
    worker: int | None = None
    attempts: int = 1
    quarantined: bool = False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "error_type": self.error_type,
            "message": self.message,
            "offset": self.offset,
            "instructions": self.instructions,
            "worker": self.worker,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MemberFailure":
        return cls(**{key: data.get(key) for key in
                      ("name", "error_type", "message", "offset",
                       "instructions", "worker")},
                   attempts=data.get("attempts", 1),
                   quarantined=bool(data.get("quarantined", False)))


class ExtractionReport(list):
    """Result of :meth:`Archive.extract_into`: records plus failures.

    A ``list`` subclass holding the successful
    :class:`ExtractionRecord` entries (in the caller's requested order),
    so every caller that treated the return value as a plain record list
    keeps working; the containment layer's extra facts ride on
    attributes:

    * ``failures`` -- :class:`MemberFailure` per contained member failure
      (always empty under ``on_error="abort"``, which raises instead);
    * ``quarantined`` -- names the ``quarantine`` policy put beyond use.
    """

    def __init__(self, records=(), failures=None):
        super().__init__(records)
        self.failures: list[MemberFailure] = list(failures or ())

    @property
    def records(self) -> list[ExtractionRecord]:
        return list(self)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def quarantined(self) -> list[str]:
        return [failure.name for failure in self.failures
                if failure.quarantined]


@dataclass(frozen=True)
class MemberPlan:
    """Scheduling facts about one member extraction.

    ``decoder_offset`` is the archived-decoder pseudo-file offset *when the
    extraction will actually run the archived decoder* under the effective
    mode -- the :mod:`repro.parallel` scheduler groups members by it so each
    worker's :class:`DecoderSession` keeps one warm code cache per decoder
    image.  ``None`` means the member takes a VM-free path (plain ZIP data,
    stored redec bytes, or a native codec).  ``cost`` is the stored size --
    the paper's members are decode-bound, so compressed bytes are a serviceable
    work estimate.  ``domain`` is the canonical protection-domain key used by
    ``REUSE_SAME_ATTRIBUTES`` so a worker can order its members to minimise
    sandbox re-initialisations without ever violating the policy.
    """

    index: int
    name: str
    decoder_offset: int | None
    cost: int
    domain: tuple


class _MemberStream(io.RawIOBase):
    """Read-only raw stream over a member's (decoded) contents."""

    def __init__(self, chunks: Iterator[bytes], name: str):
        self._chunks = chunks
        self._buffer = b""
        self._name = name

    def readable(self) -> bool:
        return True

    def readinto(self, target) -> int:
        while not self._buffer:
            chunk = next(self._chunks, None)
            if chunk is None:
                return 0
            self._buffer = chunk
        count = min(len(target), len(self._buffer))
        target[:count] = self._buffer[:count]
        self._buffer = self._buffer[count:]
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<vxa member stream {self._name!r}>"


def _in_pool_worker() -> bool:
    """Is this code running inside a parallel pool worker (thread/process)?"""
    from repro.parallel.worker import in_worker

    return in_worker()


def safe_extract_path(directory: pathlib.Path, member_name: str) -> pathlib.Path:
    """Resolve ``member_name`` inside ``directory``, refusing zip-slip escapes.

    Raises :class:`~repro.errors.PathTraversalError` for absolute member
    names and for relative names (``../evil``) whose resolution lands
    outside ``directory``.
    """
    if not member_name:
        raise PathTraversalError("archive member has an empty name")
    if member_name.startswith(("/", "\\")) or pathlib.PurePath(member_name).is_absolute():
        raise PathTraversalError(
            f"refusing to extract member with absolute path {member_name!r}"
        )
    base = directory.resolve()
    target = (directory / member_name).resolve()
    if not target.is_relative_to(base):
        raise PathTraversalError(
            f"member name {member_name!r} escapes the extraction directory"
        )
    return directory / member_name


class Archive:
    """A readable vxZIP archive over a seekable file object.

    Use :func:`repro.api.open` rather than constructing directly.  The
    archive is also a context manager; closing it releases the decoder
    session's VMs and (when the facade opened the path itself) the file.
    """

    def __init__(self, file, options: ReadOptions | None = None, *,
                 owns_file: bool = False, source_path=None):
        if isinstance(file, (bytes, bytearray, memoryview)):
            file = io.BytesIO(bytes(file))
        self.options = options or ReadOptions()
        self._file = file
        self._owns_file = owns_file
        #: Filesystem path this archive was opened from, when known.  Worker
        #: processes re-open the archive independently by path; without one
        #: the parallel engine ships the raw bytes instead.
        self._source_path = (pathlib.Path(source_path)
                             if source_path is not None else None)
        # Under on_damage="salvage" a torn or corrupt container is opened
        # anyway: the member directory is reconstructed from local headers
        # and damaged members surface per-member instead of at open.
        self._salvaging = self.options.on_damage == ON_DAMAGE_SALVAGE
        self._zip = ZipReader(file, salvage=self._salvaging)
        self._registry = self.options.registry or default_registry()
        self._limits = self.options.limits or ExecutionLimits()
        if self.options.member_deadline is not None:
            wall = self._limits.max_wall_seconds
            wall = (self.options.member_deadline if wall is None
                    else min(wall, self.options.member_deadline))
            self._limits = replace(self._limits, max_wall_seconds=wall)
        self._decoder_cache: dict[int, bytes] = {}
        self._session = DecoderSession(
            self._load_decoder,
            policy=self.options.reuse,
            engine=self.options.engine,
            limits=self._limits,
            superblock_limit=self.options.superblock_limit,
            chain_fragments=self.options.chain_fragments,
            code_cache_limit=self.options.code_cache_limit,
            verify_images=self.options.verify_images,
            analysis_elision=self.options.analysis_elision,
        )
        if self._zip.directory_reconstructed:
            self._session.stats.directory_reconstructed += 1
        if self._zip.commit_verified:
            self._session.stats.commit_record_verified += 1
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def session(self) -> DecoderSession:
        """The decoder session owning VM lifecycle for this archive."""
        return self._session

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._session.close()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "Archive":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- listing --------------------------------------------------------------

    def names(self) -> list[str]:
        return self._zip.names()

    def __len__(self) -> int:
        return len(self._zip)

    def __contains__(self, name: str) -> bool:
        return name in self._zip

    def entries(self) -> list[ZipEntry]:
        return list(self._zip.entries)

    def extension_for(self, name: str) -> VxaExtension | None:
        return parse_extension(self._zip.find(name).extra)

    def decoder_image_for(self, name: str) -> bytes | None:
        """The raw decoder ELF attached to a member, if any."""
        extension = self.extension_for(name)
        if extension is None:
            return None
        return self._load_decoder(extension.decoder_offset)

    def info(self, name: str) -> MemberInfo:
        entry = self._zip.find(name)
        extension = parse_extension(entry.extra)
        return MemberInfo(
            name=entry.name,
            stored_size=entry.compressed_size,
            original_size=(extension.original_size if extension
                           else entry.uncompressed_size),
            method=entry.method,
            codec_name=extension.codec_name if extension else None,
            precompressed=bool(extension and extension.precompressed),
            lossy=bool(extension and extension.lossy),
            has_decoder=extension is not None,
            attributes=self._attributes_for(entry),
        )

    # -- extraction -----------------------------------------------------------

    def extract(self, name: str, *, mode: str | None = None,
                force_decode: bool | None = None,
                _fresh_vm: bool | None = None) -> ExtractedFile:
        """Extract one member fully into memory.

        Pre-compressed members (the redec path) are returned in their stored,
        still-compressed form unless ``force_decode`` is set, mirroring
        vxUnZIP's default of leaving popular formats compressed on extraction.
        """
        entry = self._zip.find(name)
        chunks, meta = self._member_pipeline(entry, mode, force_decode, _fresh_vm)
        data = b"".join(chunks)
        used_vxa, decoded, codec_name, precompressed = meta
        return ExtractedFile(name, data, used_vxa, codec_name, precompressed,
                             decoded=decoded)

    def extract_all(self, *, mode: str | None = None,
                    force_decode: bool | None = None) -> dict[str, ExtractedFile]:
        """Extract every listed member; returns ``{name: ExtractedFile}``."""
        return {
            name: self.extract(name, mode=mode, force_decode=force_decode)
            for name in self.names()
        }

    def open_member(self, name: str, *, mode: str | None = None,
                    force_decode: bool | None = None) -> io.RawIOBase:
        """A readable raw stream over a member's extracted contents.

        Plain and pre-compressed members stream straight off the archive
        file in bounded chunks; members needing an archived decoder are
        decoded through the session first, then served chunk-wise.
        """
        entry = self._zip.find(name)
        chunks, _ = self._member_pipeline(entry, mode, force_decode, None)
        return _MemberStream(chunks, name)

    def extract_to(self, name: str, writable, *, mode: str | None = None,
                   force_decode: bool | None = None) -> int:
        """Stream one member's extracted contents into ``writable``.

        Returns the number of bytes written.
        """
        entry = self._zip.find(name)
        chunks, _ = self._member_pipeline(entry, mode, force_decode, None)
        written = 0
        for chunk in chunks:
            writable.write(chunk)
            written += len(chunk)
        return written

    def extract_into(self, directory, names: list[str] | None = None, *,
                     mode: str | None = None,
                     force_decode: bool | None = None,
                     jobs: int | None = None) -> ExtractionReport:
        """Extract members under ``directory``, refusing zip-slip escapes.

        Every member name is validated with :func:`safe_extract_path` before
        anything touches the filesystem; a single escaping name aborts the
        whole extraction with :class:`~repro.errors.PathTraversalError`.

        ``jobs`` (default: ``ReadOptions.jobs``) > 1 shards the members by
        decoder image across the :mod:`repro.parallel` worker pool; output
        bytes are identical to the serial path (each worker runs this very
        method over its shard) and the workers' session counters are merged
        into this archive's :attr:`session` stats.

        Returns an :class:`ExtractionReport` -- a list of the successful
        :class:`ExtractionRecord` entries.  Under ``on_error="abort"``
        (default) the first member failure raises, exactly as before.
        Under ``"skip"``/``"quarantine"`` a failing member is recorded in
        ``report.failures`` and every other member still extracts,
        byte-identical to a clean run (each member streams through its own
        temp-and-rename, so a contained failure leaves no partial file).
        """
        directory = pathlib.Path(directory)
        wanted = names if names is not None else self.names()
        directory.mkdir(parents=True, exist_ok=True)
        targets = [(name, safe_extract_path(directory, name)) for name in wanted]
        jobs = self.options.jobs if jobs is None else jobs
        if jobs > 1 and len(wanted) > 1:
            from repro.parallel.engine import parallel_extract_into

            return parallel_extract_into(
                self, directory, wanted, jobs,
                mode=mode, force_decode=force_decode)
        on_error = self.options.on_error
        durable = self.options.durable_output
        report = ExtractionReport()
        for name, target in targets:
            entry = self._zip.find(name)
            try:
                chunks, meta = self._member_pipeline(entry, mode, force_decode,
                                                     None)
                used_vxa, decoded, codec_name, _ = meta
                target.parent.mkdir(parents=True, exist_ok=True)
                # Stream into a temporary sibling and rename on success, so
                # an error mid-member (CRC mismatch, truncation, decoder
                # fault) never leaves a partial file under the final name.
                # ``durable_output`` additionally fsyncs the data before the
                # rename (and the directory after), so a machine crash right
                # after extraction cannot leave a renamed-but-empty file.
                partial = target.with_name(target.name + ".vxa-partial")
                written = 0
                try:
                    with open(partial, "wb") as sink:
                        for chunk in chunks:
                            sink.write(chunk)
                            written += len(chunk)
                        if durable:
                            fsync_file(sink)
                except BaseException:
                    partial.unlink(missing_ok=True)
                    raise
                partial.replace(target)
                if durable:
                    fsync_directory(target.parent)
            except VxaError as error:
                if isinstance(error, WorkerCrashed) and _in_pool_worker():
                    # An injected worker kill must *crash the worker*, not
                    # be contained here -- the pool's crash recovery is the
                    # layer under test.  (A real process kill never reaches
                    # this handler at all.)
                    raise
                if on_error == ON_ERROR_ABORT and not self._salvaging:
                    # Under on_damage="salvage" media damage is contained
                    # per-member even for abort callers: salvaging exists
                    # precisely to get the healthy members out.
                    raise
                report.failures.append(self._member_failure(entry, error))
                continue
            report.append(ExtractionRecord(
                name=name,
                path=target,
                size=written,
                used_vxa_decoder=used_vxa,
                decoded=decoded,
                codec_name=codec_name,
            ))
        if self._salvaging and (self._zip.directory_reconstructed
                                or report.failures):
            # Members extracted out of damaged media: the load-bearing
            # success metric of the salvage path.
            self._session.stats.members_salvaged += len(report)
        return report

    def _member_failure(self, entry: ZipEntry, error: Exception) -> MemberFailure:
        """Record one contained member failure (salvage bookkeeping)."""
        try:
            extension = parse_extension(entry.extra)
        except ArchiveError:
            # Damaged extras must not crash failure bookkeeping itself.
            extension = None
        return MemberFailure(
            name=entry.name,
            error_type=type(error).__name__,
            message=str(error),
            offset=extension.decoder_offset if extension is not None else None,
            instructions=getattr(error, "instructions", None),
            quarantined=self.options.on_error == ON_ERROR_QUARANTINE,
        )

    # -- integrity ------------------------------------------------------------

    def media(self):
        """Media-level damage assessment of this archive's bytes.

        Returns a :class:`~repro.core.integrity.MediaAssessment`: per-member
        ``intact``/``suspect``/``lost`` verdicts from the digest table / CRCs,
        without running any decoders.  ``vxunzip check --deep`` is this.
        """
        from repro.core.integrity import assess_media

        return assess_media(self._file)

    @property
    def directory_reconstructed(self) -> bool:
        """True when this open had to rebuild the directory from local headers."""
        return self._zip.directory_reconstructed

    @property
    def commit_verified(self) -> bool:
        """True when the archive's commit record matched its central directory."""
        return self._zip.commit_verified

    def check(self, *, reuse: VmReusePolicy | None = None,
              jobs: int | None = None,
              names: list[str] | None = None) -> IntegrityReport:
        """Verify every member that carries a VXA decoder.

        Integrity checks "always run the archived VXA decoder" (paper section
        2.3) -- native decoders are never used here, so a bug that only
        affects the archived decoder cannot hide behind the fast path.  The
        check runs through a dedicated :class:`DecoderSession` honouring
        ``reuse`` (default: this archive's configured policy), so per-file
        :class:`SecurityAttributes` gate VM reuse exactly as section 2.4
        prescribes; the report carries the session's reuse/re-init counters.

        ``jobs`` (default: ``ReadOptions.jobs``) > 1 shards the decoder-bearing
        members by decoder image across the :mod:`repro.parallel` worker pool;
        verdicts (checked/passed/failures) are identical to the serial check
        and the report's counters aggregate every worker's session.  ``names``
        restricts the check to those members, in that order (a name missing
        from the archive raises, exactly as extraction would); the shard
        workers use it to check their slice.
        """
        jobs = self.options.jobs if jobs is None else jobs
        if jobs > 1:
            from repro.parallel.engine import parallel_check

            return parallel_check(self, jobs, reuse=reuse, names=names)
        session = DecoderSession(
            self._load_decoder,
            policy=reuse if reuse is not None else self.options.reuse,
            engine=self.options.engine,
            limits=self._limits,
            superblock_limit=self.options.superblock_limit,
            chain_fragments=self.options.chain_fragments,
            code_cache_limit=self.options.code_cache_limit,
            verify_images=self.options.verify_images,
            analysis_elision=self.options.analysis_elision,
        )
        entries = (self._zip.entries if names is None
                   else [self._zip.find(name) for name in names])
        report = IntegrityReport()
        for entry in entries:
            self._check_entry(session, entry, report)
        report.add_counters(session.stats)
        session.close()
        return report

    def _check_entry(self, session: DecoderSession, entry: ZipEntry,
                     report: IntegrityReport) -> None:
        """Run the always-use-the-archived-decoder check for one member."""
        extension = parse_extension(entry.extra)
        if extension is None:
            return
        report.checked += 1
        try:
            plan = self.options.fault_plan
            if plan is not None:
                plan.io_delay(entry.name)
                plan.kill_worker(entry.name)
            encoded = self._encoded_bytes(entry, extension)
            data = self._run_archived_decoder(session, entry, extension, encoded)
        except (GuestFault, ArchiveError) as error:
            report.failures.append(f"{entry.name}: {error}")
            return
        except WorkerCrashed:
            # A simulated worker kill: in a pool worker the shard must
            # crash so recovery reschedules it; serially it is one more
            # contained member failure.
            if _in_pool_worker():
                raise
            report.failures.append(f"{entry.name}: worker crashed")
            return
        if (len(data) != extension.original_size
                or crc32(data) != extension.original_crc32):
            report.failures.append(
                f"{entry.name}: decoded output does not match its checksum")
            return
        report.passed += 1

    # -- parallel scheduling support ------------------------------------------

    def extraction_plan(self, names: list[str] | None = None, *,
                        mode: str | None = None,
                        force_decode: bool | None = None) -> list[MemberPlan]:
        """Scheduling facts for each requested member under the effective mode.

        Mirrors :meth:`_member_pipeline`'s dispatch decisions without reading
        any member data, so the :mod:`repro.parallel` scheduler can shard
        members by decoder image before any work starts.
        """
        mode = self.options.mode if mode is None else mode
        if mode not in (MODE_AUTO, MODE_NATIVE, MODE_VXA):
            raise ArchiveError(f"unknown extraction mode {mode!r}")
        force = self.options.force_decode if force_decode is None else force_decode
        wanted = names if names is not None else self.names()
        plan: list[MemberPlan] = []
        for index, name in enumerate(wanted):
            entry = self._zip.find(name)
            extension = parse_extension(entry.extra)
            decoder_offset: int | None = None
            if extension is not None:
                stored_skip = (entry.method == METHOD_STORE
                               and extension.precompressed and not force)
                native = (extension.codec_name is not None
                          and extension.codec_name in self._registry)
                if not stored_skip and mode != MODE_NATIVE:
                    if mode == MODE_VXA or not native:
                        decoder_offset = extension.decoder_offset
            attributes = self._attributes_for(entry)
            plan.append(MemberPlan(
                index=index,
                name=name,
                decoder_offset=decoder_offset,
                cost=max(entry.compressed_size, 1),
                domain=(attributes.owner, attributes.group,
                        attributes.world_readable),
            ))
        return plan

    def worker_source(self) -> dict:
        """How a worker process/thread should reopen this archive.

        Returns ``{"path": str}`` when the archive is backed by a named
        file (workers open it independently -- concurrent seeks on one
        shared file object would corrupt each other), else ``{"data":
        bytes}`` with the full archive contents.  A path is only trusted
        while it still names the very file this reader holds open (after
        an atomic-rename update the handle and the path are different
        archives, and workers reopening by name would diverge from the
        serial path); otherwise the bytes are shipped.
        """
        for candidate in (self._source_path, getattr(self._file, "name", None)):
            if candidate is not None and isinstance(candidate, (str, pathlib.Path)):
                if self._path_matches_handle(pathlib.Path(candidate)):
                    return {"path": str(candidate)}
        file = self._file
        if isinstance(file, io.BytesIO):
            return {"data": file.getvalue()}
        position = file.tell()
        try:
            file.seek(0)
            data = file.read()
        finally:
            file.seek(position)
        return {"data": data}

    def _path_matches_handle(self, path: pathlib.Path) -> bool:
        """Does ``path`` still name the file this archive holds open?"""
        try:
            path_stat = path.stat()
        except OSError:
            return False
        try:
            handle_stat = os.fstat(self._file.fileno())
        except (OSError, AttributeError, io.UnsupportedOperation):
            # No OS-level handle to compare against (BytesIO and friends
            # never reach here); fall back to the parsed size, the best
            # identity signal the reader recorded.
            parsed_size = getattr(getattr(self._zip, "_source", None), "size", None)
            return parsed_size is not None and path_stat.st_size == parsed_size
        return (path_stat.st_ino == handle_stat.st_ino
                and path_stat.st_dev == handle_stat.st_dev)

    # -- internals ------------------------------------------------------------

    def _attributes_for(self, entry: ZipEntry) -> SecurityAttributes:
        """Per-file security attributes recovered from the member headers.

        Mode bits come from the ZIP external attributes; owner/group from the
        Info-ZIP Unix extra field when present, so ``same_domain`` compares
        the full protection domain the writer recorded.
        """
        mode = (entry.external_attributes >> 16) & 0xFFFF
        unix = parse_unix_extra(entry.extra)
        owner, group = unix if unix is not None else (0, 0)
        return SecurityAttributes(owner=owner, group=group, mode=mode or 0o644)

    def _load_decoder(self, offset: int) -> bytes:
        image = self._decoder_cache.get(offset)
        if image is None:
            _, image = self._zip.read_member_at(offset)
            self._decoder_cache[offset] = image
        return image

    def _encoded_bytes(self, entry: ZipEntry, extension: VxaExtension) -> bytes:
        if entry.method == METHOD_VXA:
            encoded = self._zip.read_stored_bytes(entry)
        else:
            # Pre-compressed member stored with method 0: the member data *is*
            # the encoded stream the decoder understands.
            encoded = self._zip.read_member(entry)
        plan = self.options.fault_plan
        if plan is not None:
            # Chaos hook: a flipped payload byte surfaces exactly as a truly
            # corrupt archive would (codec error or checksum mismatch).
            encoded = plan.corrupt(entry.name, encoded)
        return encoded

    def _run_archived_decoder(self, session: DecoderSession, entry: ZipEntry,
                              extension: VxaExtension, encoded: bytes,
                              fresh_override: bool | None = None) -> bytes:
        limits = None
        fault_syscall = None
        plan = self.options.fault_plan
        if plan is not None:
            fuel = plan.fuel_limit(entry.name)
            if fuel is not None:
                limits = replace(self._limits, max_instructions=fuel)
            fault_syscall = plan.syscall_fault_at(entry.name)
        result = session.decode(
            extension.decoder_offset,
            encoded,
            attributes=self._attributes_for(entry),
            limits=limits,
            fresh_override=fresh_override,
            fault_syscall=fault_syscall,
        )
        if result.exit_code != 0:
            raise IntegrityError(
                f"archived decoder exited with status {result.exit_code}: "
                f"{result.stderr.decode('latin-1', 'replace')!r}"
            )
        return result.output

    def _member_pipeline(self, entry: ZipEntry, mode: str | None,
                         force_decode: bool | None,
                         fresh_override: bool | None):
        """Plan the chunk stream for one member.

        Returns ``(chunks, (used_vxa, decoded, codec_name, precompressed))``.
        Plain and redec members stream lazily off the archive file; decoder
        output is produced in full (it is one member, never the archive) and
        then chunked.
        """
        mode = self.options.mode if mode is None else mode
        if mode not in (MODE_AUTO, MODE_NATIVE, MODE_VXA):
            raise ArchiveError(f"unknown extraction mode {mode!r}")
        force = self.options.force_decode if force_decode is None else force_decode
        chunk_size = self.options.chunk_size
        plan = self.options.fault_plan
        if plan is not None:
            # Chaos hooks that fire *before* the member is read: IO delay
            # and worker kill (process workers exit hard here).
            plan.io_delay(entry.name)
            plan.kill_worker(entry.name)
        extension = parse_extension(entry.extra)

        if extension is None:
            # Plain ZIP member: no VXA decoder involved.
            chunks = self._zip.iter_member_chunks(entry, chunk_size=chunk_size)
            return chunks, (False, True, None, False)

        if entry.method == METHOD_STORE and extension.precompressed and not force:
            # iter_member_chunks on a stored member streams the same bytes as
            # iter_stored_chunks but verifies the member CRC as it goes.
            chunks = self._zip.iter_member_chunks(entry, chunk_size=chunk_size)
            return chunks, (False, False, extension.codec_name, True)

        data, used_vxa = self._decode_member(entry, extension, mode, fresh_override)
        chunks = (data[offset:offset + chunk_size]
                  for offset in range(0, len(data), chunk_size))
        if not data:
            chunks = iter(())
        return chunks, (used_vxa, True, extension.codec_name,
                        extension.precompressed)

    def _decode_member(self, entry: ZipEntry, extension: VxaExtension,
                       mode: str, fresh_override: bool | None) -> tuple[bytes, bool]:
        encoded = self._encoded_bytes(entry, extension)
        codec = None
        if extension.codec_name and extension.codec_name in self._registry:
            codec = self._registry.get(extension.codec_name)
        if mode == MODE_NATIVE:
            if codec is None:
                raise DecoderMissingError(
                    f"no native decoder available for codec {extension.codec_name!r}"
                )
            data, used_vxa = codec.decode(encoded), False
        elif mode == MODE_AUTO and codec is not None:
            data, used_vxa = codec.decode(encoded), False
        else:
            # MODE_VXA, or AUTO with no native decoder: run the archived decoder.
            data = self._run_archived_decoder(
                self._session, entry, extension, encoded,
                fresh_override=fresh_override)
            used_vxa = True
        if (len(data) != extension.original_size
                or crc32(data) != extension.original_crc32):
            raise IntegrityError(
                f"member {entry.name!r} decoded to unexpected contents "
                f"({len(data)} bytes vs {extension.original_size} expected)"
            )
        return data, used_vxa
