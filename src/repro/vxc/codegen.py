"""Code generation: vxc AST -> VXA-32 assembly text.

Model
-----

* all values are 32-bit integers held in memory; expression evaluation uses
  R0 as the accumulator, R1 as the secondary operand and the guest stack for
  intermediates, so no value is ever live in a register across a statement,
* ``/`` and ``%`` are signed (C ``int`` semantics), ``>>`` is a *logical*
  shift (use the ``asr`` builtin for an arithmetic shift, ``udiv``/``umod``
  for unsigned division), comparisons are signed,
* the calling convention pushes arguments right-to-left, so the first
  argument sits at ``[fp+8]``; the return value is in R0; the caller pops
  its arguments,
* globals live in ``.data`` (initialised) or a bss region following it
  (zero-initialised); ``const int`` scalars fold to immediates,
* ``_start`` initialises the runtime heap pointer, calls ``main`` and passes
  its return value to the ``exit`` virtual system call.
"""

from __future__ import annotations

from repro.errors import VxcSemanticError
from repro.vxc import ast_nodes as ast
from repro.vxc.semantics import BUILTINS, GlobalSymbol, LocalSymbol, SemanticInfo

_WORD_BINOPS = {
    "+": ("add", "addi"),
    "-": ("sub", "subi"),
    "*": ("mul", "muli"),
    "&": ("and", "andi"),
    "|": ("or", "ori"),
    "^": ("xor", "xori"),
    "<<": ("shl", "shli"),
    ">>": ("shru", "shrui"),
    "/": ("divs", None),
    "%": ("rems", None),
}

_COMPARE_JUMPS = {
    "==": "je",
    "!=": "jne",
    "<": "jlts",
    "<=": "jles",
    ">": "jgts",
    ">=": "jges",
}

_SYSCALL_NUMBERS = {"exit": 0, "read": 1, "write": 2, "setperm": 3, "done": 4}

_PEEK_INSTRUCTIONS = {
    "peek8": "ld8u",
    "peek8s": "ld8s",
    "peek16": "ld16u",
    "peek16s": "ld16s",
    "peek32": "ld32",
}

_POKE_INSTRUCTIONS = {"poke8": "st8", "poke16": "st16", "poke32": "st32"}


def _mem(base: str, offset: int) -> str:
    if offset >= 0:
        return f"[{base}+{offset}]"
    return f"[{base}-{-offset}]"


class CodeGenerator:
    """Generates assembly for one analysed program."""

    def __init__(self, program: ast.Program, info: SemanticInfo):
        self._program = program
        self._info = info
        self._lines: list[str] = []
        self._label_counter = 0
        self._string_literals: list[bytes] = []
        self._loop_stack: list[tuple[str, str]] = []
        self._current_function: str | None = None
        self._scopes: list[dict[str, object]] = []
        # Global placement: name -> address expression usable as an immediate.
        self._global_address: dict[str, str] = {}
        self._bss_total = 0
        self._place_globals()

    # -- public API ------------------------------------------------------------

    def generate(self) -> str:
        """Return the complete assembly source for the program."""
        for function in self._program.functions:
            self._gen_function(function)
        self._gen_start()
        self._gen_data_section()
        return "\n".join(self._lines) + "\n"

    # -- layout ------------------------------------------------------------------

    def _place_globals(self) -> None:
        bss_offset = 0
        for symbol in self._info.globals.values():
            if symbol.const_value is not None:
                continue
            if symbol.init_bytes is not None:
                self._global_address[symbol.name] = f"g_{symbol.name}"
            else:
                size = (symbol.size_bytes + 3) & ~3
                self._global_address[symbol.name] = f"__bss_start+{bss_offset}"
                bss_offset += size
        self._bss_total = bss_offset

    # -- emission helpers ------------------------------------------------------------

    def _emit(self, line: str) -> None:
        self._lines.append("    " + line)

    def _emit_label(self, label: str) -> None:
        self._lines.append(f"{label}:")

    def _new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f".{hint}{self._label_counter}"

    def _error(self, node, message: str):
        raise VxcSemanticError(f"line {getattr(node, 'line', '?')}: {message}")

    # -- name resolution (scoped) ------------------------------------------------------

    def _lookup(self, name: str):
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return self._info.globals.get(name)

    # -- functions ------------------------------------------------------------------------

    def _gen_function(self, function: ast.FunctionDef) -> None:
        layout = self._info.functions[function.name]
        self._current_function = function.name
        self._epilogue_label = f"fn_{function.name}__end"
        self._emit_label(f"fn_{function.name}")
        self._emit("push fp")
        self._emit("mov fp, sp")
        if layout.frame_size:
            self._emit(f"subi sp, {layout.frame_size}")
        params = {
            name: ("param", 8 + 4 * index) for index, name in enumerate(layout.params)
        }
        self._scopes = [params]
        self._gen_stmt(function.body, layout)
        self._emit("movi r0, 0")  # implicit return value for fall-through
        self._emit_label(self._epilogue_label)
        self._emit("mov sp, fp")
        self._emit("pop fp")
        self._emit("ret")
        self._scopes = []
        self._current_function = None

    def _gen_start(self) -> None:
        self._emit_label("_start")
        heap_base = f"__bss_start+{self._bss_total}"
        for heap_global in ("__heap_ptr", "__heap_base"):
            if heap_global in self._global_address:
                self._emit(f"movi r4, {self._global_address[heap_global]}")
                self._emit(f"movi r0, {heap_base}")
                self._emit("st32 [r4], r0")
        self._emit("call fn_main")
        self._emit("mov r1, r0")
        self._emit("movi r0, 0")
        self._emit("vxcall")

    def _gen_data_section(self) -> None:
        self._lines.append(".data")
        for symbol in self._info.globals.values():
            if symbol.const_value is not None or symbol.init_bytes is None:
                continue
            self._emit_label(f"g_{symbol.name}")
            self._emit_bytes(symbol.init_bytes)
        for index, literal in enumerate(self._string_literals):
            self._emit_label(f"str_{index}")
            self._emit_bytes(literal + b"\x00")
        self._emit(".align 4")
        self._emit_label("__bss_start")
        if self._bss_total:
            self._emit(f".bss {self._bss_total}")

    def _emit_bytes(self, data: bytes) -> None:
        for start in range(0, len(data), 16):
            chunk = data[start : start + 16]
            self._emit(".byte " + ", ".join(f"0x{byte:02x}" for byte in chunk))

    # -- statements ------------------------------------------------------------------------

    def _gen_stmt(self, node: ast.Stmt, layout) -> None:
        if isinstance(node, ast.Block):
            self._scopes.append({})
            for statement in node.statements:
                self._gen_stmt(statement, layout)
            self._scopes.pop()
        elif isinstance(node, ast.VarDecl):
            symbol = layout.locals_by_decl[id(node)]
            self._scopes[-1][node.name] = symbol
            if node.initializer is not None:
                self._gen_expr(node.initializer)
                self._emit(f"st32 {_mem('fp', symbol.offset)}, r0")
        elif isinstance(node, ast.ExprStmt):
            self._gen_expr(node.expr)
        elif isinstance(node, ast.If):
            label_then = self._new_label("then")
            label_else = self._new_label("else")
            label_end = self._new_label("endif")
            self._gen_branch(node.cond, label_then, label_else)
            self._emit_label(label_then)
            self._gen_stmt(node.then, layout)
            if node.otherwise is not None:
                self._emit(f"jmp {label_end}")
            self._emit_label(label_else)
            if node.otherwise is not None:
                self._gen_stmt(node.otherwise, layout)
                self._emit_label(label_end)
        elif isinstance(node, ast.While):
            label_cond = self._new_label("while")
            label_body = self._new_label("body")
            label_end = self._new_label("endwhile")
            self._emit_label(label_cond)
            self._gen_branch(node.cond, label_body, label_end)
            self._emit_label(label_body)
            self._loop_stack.append((label_end, label_cond))
            self._gen_stmt(node.body, layout)
            self._loop_stack.pop()
            self._emit(f"jmp {label_cond}")
            self._emit_label(label_end)
        elif isinstance(node, ast.DoWhile):
            label_body = self._new_label("dobody")
            label_cond = self._new_label("docond")
            label_end = self._new_label("enddo")
            self._emit_label(label_body)
            self._loop_stack.append((label_end, label_cond))
            self._gen_stmt(node.body, layout)
            self._loop_stack.pop()
            self._emit_label(label_cond)
            self._gen_branch(node.cond, label_body, label_end)
            self._emit_label(label_end)
        elif isinstance(node, ast.For):
            label_cond = self._new_label("for")
            label_body = self._new_label("forbody")
            label_step = self._new_label("forstep")
            label_end = self._new_label("endfor")
            self._scopes.append({})
            if node.init is not None:
                self._gen_stmt(node.init, layout)
            self._emit_label(label_cond)
            if node.cond is not None:
                self._gen_branch(node.cond, label_body, label_end)
            self._emit_label(label_body)
            self._loop_stack.append((label_end, label_step))
            self._gen_stmt(node.body, layout)
            self._loop_stack.pop()
            self._emit_label(label_step)
            if node.step is not None:
                self._gen_expr(node.step)
            self._emit(f"jmp {label_cond}")
            self._emit_label(label_end)
            self._scopes.pop()
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._gen_expr(node.value)
            else:
                self._emit("movi r0, 0")
            self._emit(f"jmp {self._epilogue_label}")
        elif isinstance(node, ast.Break):
            self._emit(f"jmp {self._loop_stack[-1][0]}")
        elif isinstance(node, ast.Continue):
            self._emit(f"jmp {self._loop_stack[-1][1]}")
        else:  # pragma: no cover
            self._error(node, f"cannot generate statement {type(node).__name__}")

    # -- branch-context expressions ------------------------------------------------------

    def _gen_branch(self, cond: ast.Expr, label_true: str, label_false: str) -> None:
        """Generate code that jumps to ``label_true`` or ``label_false``."""
        if isinstance(cond, ast.BinaryOp) and cond.op in _COMPARE_JUMPS:
            self._gen_compare_operands(cond)
            self._emit(f"{_COMPARE_JUMPS[cond.op]} {label_true}")
            self._emit(f"jmp {label_false}")
            return
        if isinstance(cond, ast.BinaryOp) and cond.op == "&&":
            label_mid = self._new_label("and")
            self._gen_branch(cond.left, label_mid, label_false)
            self._emit_label(label_mid)
            self._gen_branch(cond.right, label_true, label_false)
            return
        if isinstance(cond, ast.BinaryOp) and cond.op == "||":
            label_mid = self._new_label("or")
            self._gen_branch(cond.left, label_true, label_mid)
            self._emit_label(label_mid)
            self._gen_branch(cond.right, label_true, label_false)
            return
        if isinstance(cond, ast.UnaryOp) and cond.op == "!":
            self._gen_branch(cond.operand, label_false, label_true)
            return
        self._gen_expr(cond)
        self._emit("cmpi r0, 0")
        self._emit(f"jne {label_true}")
        self._emit(f"jmp {label_false}")

    def _gen_compare_operands(self, node: ast.BinaryOp) -> None:
        """Leave comparison operands staged and emit the ``cmp``."""
        if isinstance(node.right, ast.NumberLiteral):
            self._gen_expr(node.left)
            self._emit(f"cmpi r0, {node.right.value & 0xFFFFFFFF}")
            return
        self._gen_expr(node.left)
        self._emit("push r0")
        self._gen_expr(node.right)
        self._emit("mov r1, r0")
        self._emit("pop r0")
        self._emit("cmp r0, r1")

    # -- value-context expressions ---------------------------------------------------------

    def _gen_expr(self, node: ast.Expr) -> None:
        """Generate code leaving the expression value in R0."""
        if isinstance(node, ast.NumberLiteral):
            self._emit(f"movi r0, {node.value & 0xFFFFFFFF}")
        elif isinstance(node, ast.StringLiteral):
            index = len(self._string_literals)
            self._string_literals.append(node.value)
            self._emit(f"movi r0, str_{index}")
        elif isinstance(node, ast.Identifier):
            self._gen_identifier(node)
        elif isinstance(node, ast.UnaryOp):
            self._gen_unary(node)
        elif isinstance(node, ast.BinaryOp):
            self._gen_binary(node)
        elif isinstance(node, ast.Conditional):
            label_then = self._new_label("ctrue")
            label_else = self._new_label("cfalse")
            label_end = self._new_label("cend")
            self._gen_branch(node.cond, label_then, label_else)
            self._emit_label(label_then)
            self._gen_expr(node.then)
            self._emit(f"jmp {label_end}")
            self._emit_label(label_else)
            self._gen_expr(node.otherwise)
            self._emit_label(label_end)
        elif isinstance(node, ast.Assignment):
            self._gen_assignment(node)
        elif isinstance(node, ast.Index):
            symbol = self._index_symbol(node)
            self._gen_element_address(node, symbol)
            load = "ld8u" if symbol.elem_size == 1 else "ld32"
            self._emit(f"{load} r0, [r0]")
        elif isinstance(node, ast.Call):
            self._gen_call(node)
        else:  # pragma: no cover
            self._error(node, f"cannot generate expression {type(node).__name__}")

    def _gen_identifier(self, node: ast.Identifier) -> None:
        symbol = self._lookup(node.name)
        if symbol is None:
            self._error(node, f"undeclared identifier {node.name!r}")
        if isinstance(symbol, tuple) and symbol[0] == "param":
            self._emit(f"ld32 r0, {_mem('fp', symbol[1])}")
        elif isinstance(symbol, LocalSymbol):
            if symbol.is_array:
                self._emit(f"lea r0, {_mem('fp', symbol.offset)}")
            else:
                self._emit(f"ld32 r0, {_mem('fp', symbol.offset)}")
        elif isinstance(symbol, GlobalSymbol):
            if symbol.const_value is not None:
                self._emit(f"movi r0, {symbol.const_value}")
            elif symbol.is_array:
                self._emit(f"movi r0, {self._global_address[symbol.name]}")
            else:
                self._emit(f"movi r4, {self._global_address[symbol.name]}")
                self._emit("ld32 r0, [r4]")
        else:  # pragma: no cover
            self._error(node, f"cannot evaluate {node.name!r}")

    def _gen_unary(self, node: ast.UnaryOp) -> None:
        self._gen_expr(node.operand)
        if node.op == "-":
            self._emit("neg r0, r0")
        elif node.op == "~":
            self._emit("not r0, r0")
        elif node.op == "!":
            label_true = self._new_label("nz")
            label_end = self._new_label("notend")
            self._emit("cmpi r0, 0")
            self._emit(f"jne {label_true}")
            self._emit("movi r0, 1")
            self._emit(f"jmp {label_end}")
            self._emit_label(label_true)
            self._emit("movi r0, 0")
            self._emit_label(label_end)
        else:  # pragma: no cover
            self._error(node, f"unsupported unary operator {node.op!r}")

    def _gen_binary(self, node: ast.BinaryOp) -> None:
        if node.op in ("&&", "||"):
            label_true = self._new_label("btrue")
            label_false = self._new_label("bfalse")
            label_end = self._new_label("bend")
            self._gen_branch(node, label_true, label_false)
            self._emit_label(label_true)
            self._emit("movi r0, 1")
            self._emit(f"jmp {label_end}")
            self._emit_label(label_false)
            self._emit("movi r0, 0")
            self._emit_label(label_end)
            return
        if node.op in _COMPARE_JUMPS:
            label_true = self._new_label("cmpt")
            label_end = self._new_label("cmpe")
            self._gen_compare_operands(node)
            self._emit(f"{_COMPARE_JUMPS[node.op]} {label_true}")
            self._emit("movi r0, 0")
            self._emit(f"jmp {label_end}")
            self._emit_label(label_true)
            self._emit("movi r0, 1")
            self._emit_label(label_end)
            return
        mnemonic, immediate_form = _WORD_BINOPS[node.op]
        if immediate_form is not None and isinstance(node.right, ast.NumberLiteral):
            self._gen_expr(node.left)
            self._emit(f"{immediate_form} r0, {node.right.value & 0xFFFFFFFF}")
            return
        self._gen_expr(node.left)
        self._emit("push r0")
        self._gen_expr(node.right)
        self._emit("mov r1, r0")
        self._emit("pop r0")
        self._emit(f"{mnemonic} r0, r1")

    def _apply_binop_from_stack(self, op: str) -> None:
        """R0 holds the right operand; the left operand is on the stack."""
        self._emit("mov r1, r0")
        self._emit("pop r0")
        mnemonic, _ = _WORD_BINOPS[op]
        self._emit(f"{mnemonic} r0, r1")

    def _gen_assignment(self, node: ast.Assignment) -> None:
        target = node.target
        compound_op = node.op[:-1] if node.op != "=" else None
        if isinstance(target, ast.Identifier):
            symbol = self._lookup(target.name)
            if symbol is None:
                self._error(target, f"undeclared identifier {target.name!r}")
            store = self._scalar_store_line(target, symbol)
            if compound_op is None:
                self._gen_expr(node.value)
            else:
                self._gen_identifier(target)
                self._emit("push r0")
                self._gen_expr(node.value)
                self._apply_binop_from_stack(compound_op)
            self._emit_scalar_store(store)
            return
        # Array element target.
        symbol = self._index_symbol(target)
        store = "st8" if symbol.elem_size == 1 else "st32"
        load = "ld8u" if symbol.elem_size == 1 else "ld32"
        self._gen_element_address(target, symbol)
        self._emit("push r0")                       # [address]
        if compound_op is None:
            self._gen_expr(node.value)
        else:
            self._emit(f"{load} r0, [r0]")
            self._emit("push r0")                   # [address, old]
            self._gen_expr(node.value)
            self._apply_binop_from_stack(compound_op)
        self._emit("pop r1")                        # address
        self._emit(f"{store} [r1], r0")

    def _scalar_store_line(self, node: ast.Identifier, symbol):
        if isinstance(symbol, tuple) and symbol[0] == "param":
            return ("direct", f"st32 {_mem('fp', symbol[1])}, r0")
        if isinstance(symbol, LocalSymbol) and not symbol.is_array:
            return ("direct", f"st32 {_mem('fp', symbol.offset)}, r0")
        if isinstance(symbol, GlobalSymbol) and not symbol.is_array and not symbol.is_const:
            return ("global", self._global_address[symbol.name])
        self._error(node, f"cannot assign to {node.name!r}")

    def _emit_scalar_store(self, store) -> None:
        kind, payload = store
        if kind == "direct":
            self._emit(payload)
        else:
            self._emit(f"movi r4, {payload}")
            self._emit("st32 [r4], r0")

    def _index_symbol(self, node: ast.Index):
        base = node.base
        symbol = self._lookup(base.name)
        if symbol is None or isinstance(symbol, tuple) or not symbol.is_array:
            self._error(node, f"{base.name!r} is not an array")
        return symbol

    def _gen_element_address(self, node: ast.Index, symbol) -> None:
        """Leave the address of ``base[index]`` in R0."""
        if isinstance(node.index, ast.NumberLiteral):
            offset = node.index.value * symbol.elem_size
            if isinstance(symbol, LocalSymbol):
                self._emit(f"lea r0, {_mem('fp', symbol.offset + offset)}")
            else:
                self._emit(f"movi r0, {self._global_address[symbol.name]}")
                if offset:
                    self._emit(f"addi r0, {offset}")
            return
        self._gen_expr(node.index)
        if symbol.elem_size == 4:
            self._emit("shli r0, 2")
        if isinstance(symbol, LocalSymbol):
            self._emit(f"lea r4, {_mem('fp', symbol.offset)}")
        else:
            self._emit(f"movi r4, {self._global_address[symbol.name]}")
        self._emit("add r0, r4")

    # -- calls -----------------------------------------------------------------------------

    def _gen_call(self, node: ast.Call) -> None:
        if node.name in BUILTINS:
            self._gen_builtin(node)
            return
        for argument in reversed(node.args):
            self._gen_expr(argument)
            self._emit("push r0")
        self._emit(f"call fn_{node.name}")
        if node.args:
            self._emit(f"addi sp, {4 * len(node.args)}")

    def _gen_builtin(self, node: ast.Call) -> None:
        name = node.name
        if name in ("read", "write"):
            for argument in node.args:
                self._gen_expr(argument)
                self._emit("push r0")
            self._emit("pop r3")
            self._emit("pop r2")
            self._emit("pop r1")
            self._emit(f"movi r0, {_SYSCALL_NUMBERS[name]}")
            self._emit("vxcall")
            return
        if name in ("exit", "setperm"):
            self._gen_expr(node.args[0])
            self._emit("mov r1, r0")
            self._emit(f"movi r0, {_SYSCALL_NUMBERS[name]}")
            self._emit("vxcall")
            return
        if name == "done":
            self._emit(f"movi r0, {_SYSCALL_NUMBERS[name]}")
            self._emit("vxcall")
            return
        if name in _PEEK_INSTRUCTIONS:
            self._gen_expr(node.args[0])
            self._emit(f"{_PEEK_INSTRUCTIONS[name]} r0, [r0]")
            return
        if name in _POKE_INSTRUCTIONS:
            self._gen_expr(node.args[0])
            self._emit("push r0")
            self._gen_expr(node.args[1])
            self._emit("pop r1")
            self._emit(f"{_POKE_INSTRUCTIONS[name]} [r1], r0")
            return
        if name in ("udiv", "umod", "asr"):
            mnemonic = {"udiv": "divu", "umod": "remu", "asr": "shrs"}[name]
            self._gen_expr(node.args[0])
            self._emit("push r0")
            self._gen_expr(node.args[1])
            self._emit("mov r1, r0")
            self._emit("pop r0")
            self._emit(f"{mnemonic} r0, r1")
            return
        self._error(node, f"unknown builtin {name!r}")  # pragma: no cover


def generate(program: ast.Program, info: SemanticInfo) -> str:
    """Generate assembly text for an analysed program."""
    return CodeGenerator(program, info).generate()
