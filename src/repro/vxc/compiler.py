"""The vxc compiler driver: source text -> VXA-32 ELF executable.

Pipeline: lex/parse each source unit, merge them, semantic analysis, code
generation, peephole optimisation, assembly, ELF packaging.  The driver
tracks which functions came from which *category* of source (``decoder``,
``library`` or ``runtime``) so the resulting executable carries the same
code-size provenance split the paper reports in Table 2.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.elf.builder import build_executable
from repro.errors import VxcSemanticError
from repro.isa.assembler import Assembler
from repro.vxc import ast_nodes as ast
from repro.vxc.codegen import CodeGenerator
from repro.vxc.optimizer import optimize
from repro.vxc.parser import parse
from repro.vxc.runtime import RUNTIME_SOURCE
from repro.vxc.semantics import analyze

CATEGORY_DECODER = "decoder"
CATEGORY_LIBRARY = "library"
CATEGORY_RUNTIME = "runtime"


@dataclass
class SourceUnit:
    """One vxc translation unit with a provenance category."""

    name: str
    text: str
    category: str = CATEGORY_DECODER


@dataclass
class CompileResult:
    """Everything produced by one compilation."""

    elf: bytes
    assembly: str
    symbols: dict[str, int]
    text_size: int
    data_size: int
    bss_size: int
    function_sizes: dict[str, int] = field(default_factory=dict)
    category_sizes: dict[str, int] = field(default_factory=dict)
    note: dict = field(default_factory=dict)

    @property
    def image_size(self) -> int:
        return len(self.elf)

    @property
    def compressed_size(self) -> int:
        """Deflate-compressed image size, as stored inside a vxZIP archive."""
        return len(zlib.compress(self.elf, 9))


def compile_units(
    units: list[SourceUnit],
    *,
    codec_name: str | None = None,
    include_runtime: bool = True,
    optimize_output: bool = True,
    extra_note: dict | None = None,
) -> CompileResult:
    """Compile and link several source units into one decoder executable.

    Args:
        units: decoder and library source units.
        codec_name: recorded in the ELF provenance note.
        include_runtime: prepend the vxc runtime library (almost always wanted).
        optimize_output: run the peephole optimiser.
        extra_note: extra key/value pairs merged into the provenance note.

    Raises:
        VxcError: on any lexical, syntactic or semantic error.
    """
    all_units = list(units)
    if include_runtime:
        all_units.insert(0, SourceUnit("runtime", RUNTIME_SOURCE, CATEGORY_RUNTIME))

    merged = ast.Program()
    function_category: dict[str, str] = {}
    for unit in all_units:
        tree = parse(unit.text)
        merged.globals.extend(tree.globals)
        for function in tree.functions:
            if function.name in function_category:
                raise VxcSemanticError(
                    f"function {function.name!r} defined in both "
                    f"{function_category[function.name]!r} and {unit.category!r} units"
                )
            function_category[function.name] = unit.category
        merged.functions.extend(tree.functions)

    info = analyze(merged)
    assembly = CodeGenerator(merged, info).generate()
    if optimize_output:
        assembly = optimize(assembly)

    program = Assembler().assemble(assembly)
    function_sizes = _function_sizes(program)
    category_sizes = {CATEGORY_DECODER: 0, CATEGORY_LIBRARY: 0, CATEGORY_RUNTIME: 0}
    for name, size in function_sizes.items():
        category = function_category.get(name, CATEGORY_RUNTIME)
        category_sizes[category] = category_sizes.get(category, 0) + size
    # _start and any residual text belongs to the runtime category.
    accounted = sum(function_sizes.values())
    category_sizes[CATEGORY_RUNTIME] += max(0, len(program.text) - accounted)

    note = {
        "codec": codec_name or "unknown",
        "toolchain": "vxc-0.1",
        "text_bytes": len(program.text),
        "data_bytes": len(program.data),
        "bss_bytes": program.bss_size,
        "decoder_code_bytes": category_sizes[CATEGORY_DECODER],
        "library_code_bytes": (
            category_sizes[CATEGORY_LIBRARY] + category_sizes[CATEGORY_RUNTIME]
        ),
    }
    if extra_note:
        note.update(extra_note)

    elf = build_executable(program, note=note)
    return CompileResult(
        elf=elf,
        assembly=assembly,
        symbols=dict(program.symbols),
        text_size=len(program.text),
        data_size=len(program.data),
        bss_size=program.bss_size,
        function_sizes=function_sizes,
        category_sizes=category_sizes,
        note=note,
    )


def compile_source(
    source: str,
    *,
    codec_name: str | None = None,
    library_sources: dict[str, str] | None = None,
    **kwargs,
) -> CompileResult:
    """Compile one decoder source string (plus optional shared library sources)."""
    units = [
        SourceUnit(name, text, CATEGORY_LIBRARY)
        for name, text in (library_sources or {}).items()
    ]
    units.append(SourceUnit(codec_name or "decoder", source, CATEGORY_DECODER))
    return compile_units(units, codec_name=codec_name, **kwargs)


def _function_sizes(program) -> dict[str, int]:
    """Compute per-function text sizes from the ``fn_*`` and ``_start`` symbols."""
    text_end = program.text_base + len(program.text)
    starts = [
        (address, name)
        for name, address in program.symbols.items()
        if (name.startswith("fn_") and not name.endswith("__end")) or name == "_start"
    ]
    if not starts:
        return {}
    starts.sort()
    boundaries = [address for address, _ in starts] + [text_end]
    sizes: dict[str, int] = {}
    for index, (address, name) in enumerate(starts):
        clean = name[3:] if name.startswith("fn_") else name
        sizes[clean] = boundaries[index + 1] - address
    return sizes
