"""Peephole optimisation of generated assembly.

The code generator favours simplicity over cleverness, so it produces a few
easily-removable patterns.  Cleaning them up matters more here than in a
conventional toolchain because every guest instruction is interpreted or
translated by the VM: smaller code is directly visible in the Figure 7
benchmark.  The passes are deliberately conservative -- they never move code
across labels.
"""

from __future__ import annotations


def _is_label(line: str) -> bool:
    stripped = line.strip()
    return stripped.endswith(":") and not stripped.startswith((".byte", ".word"))


def _mnemonic(line: str) -> str:
    return line.split()[0] if line.strip() else ""


def optimize_lines(lines: list[str]) -> list[str]:
    """Apply peephole passes until a fixed point is reached."""
    changed = True
    while changed:
        lines, changed_a = _remove_jump_to_next(lines)
        lines, changed_b = _fuse_push_pop(lines)
        lines, changed_c = _remove_redundant_moves(lines)
        changed = changed_a or changed_b or changed_c
    return lines


def optimize(source: str) -> str:
    """Optimise a whole assembly listing (string in, string out)."""
    return "\n".join(optimize_lines(source.splitlines())) + "\n"


def _remove_jump_to_next(lines: list[str]) -> tuple[list[str], bool]:
    """Delete ``jmp L`` when ``L:`` is the next label and nothing executes between."""
    output: list[str] = []
    changed = False
    for index, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith("jmp "):
            target = stripped.split()[1]
            # Look ahead past labels only.
            lookahead = index + 1
            skip = False
            while lookahead < len(lines):
                next_line = lines[lookahead].strip()
                if not next_line:
                    lookahead += 1
                    continue
                if _is_label(lines[lookahead]):
                    if next_line[:-1] == target:
                        skip = True
                        break
                    lookahead += 1
                    continue
                break
            if skip:
                changed = True
                continue
        output.append(line)
    return output, changed


def _fuse_push_pop(lines: list[str]) -> tuple[list[str], bool]:
    """Rewrite adjacent ``push rX`` / ``pop rY`` into a register move."""
    output: list[str] = []
    changed = False
    index = 0
    while index < len(lines):
        line = lines[index]
        stripped = line.strip()
        if stripped.startswith("push ") and index + 1 < len(lines):
            next_stripped = lines[index + 1].strip()
            if next_stripped.startswith("pop "):
                source = stripped.split()[1]
                destination = next_stripped.split()[1]
                indent = line[: len(line) - len(line.lstrip())]
                if source != destination:
                    output.append(f"{indent}mov {destination}, {source}")
                changed = True
                index += 2
                continue
        output.append(line)
        index += 1
    return output, changed


def _remove_redundant_moves(lines: list[str]) -> tuple[list[str], bool]:
    """Delete ``mov rX, rX``."""
    output: list[str] = []
    changed = False
    for line in lines:
        stripped = line.strip()
        if stripped.startswith("mov "):
            operands = [part.strip() for part in stripped[4:].split(",")]
            if len(operands) == 2 and operands[0] == operands[1]:
                changed = True
                continue
        output.append(line)
    return output, changed
