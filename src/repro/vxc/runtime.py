"""The vxc runtime library linked into every guest decoder.

This plays the role of the statically-linked C library in the paper's
decoders (Table 2 splits each decoder's code size into "decoder" and
"C library" portions; we preserve that split by tagging these functions as
library code).  It provides heap management over the ``setperm`` memory
model, bulk memory operations and buffered stream I/O over the ``read`` /
``write`` virtual system calls.
"""

RUNTIME_SOURCE = r"""
// --- vxc runtime library -------------------------------------------------
// Globals used by the allocator; _start initialises __heap_ptr/__heap_base
// to the first address past the bss section.

int __heap_ptr;
int __heap_base;

// Bump allocator.  Decoders are short-lived filters, so there is no free();
// heap_reset() recycles the whole heap between streams (done() protocol).
int alloc(int n) {
    int p;
    p = __heap_ptr;
    __heap_ptr = p + ((n + 3) & 0xfffffffc);
    if (setperm(__heap_ptr + 65536) < 0) {
        exit(12);   // ENOMEM: cannot grow the sandbox
    }
    return p;
}

int heap_reset() {
    __heap_ptr = __heap_base;
    return 0;
}

int memcopy(int dst, int src, int n) {
    int i;
    i = 0;
    while (i + 4 <= n) {
        poke32(dst + i, peek32(src + i));
        i = i + 4;
    }
    while (i < n) {
        poke8(dst + i, peek8(src + i));
        i = i + 1;
    }
    return dst;
}

int memfill(int dst, int value, int n) {
    int i;
    int word;
    word = value & 255;
    word = word | (word << 8);
    word = word | (word << 16);
    i = 0;
    while (i + 4 <= n) {
        poke32(dst + i, word);
        i = i + 4;
    }
    while (i < n) {
        poke8(dst + i, value);
        i = i + 1;
    }
    return dst;
}

// Read exactly n bytes unless end-of-stream comes first; returns bytes read.
int read_full(int fd, int buf, int n) {
    int total;
    int got;
    total = 0;
    while (total < n) {
        got = read(fd, buf + total, n - total);
        if (got <= 0) {
            return total;
        }
        total = total + got;
    }
    return total;
}

// Write all n bytes; returns n, or exits on an unwritable stream.
int write_full(int fd, int buf, int n) {
    int total;
    int put;
    total = 0;
    while (total < n) {
        put = write(fd, buf + total, n - total);
        if (put <= 0) {
            exit(5);    // EIO: the host refused our output
        }
        total = total + put;
    }
    return n;
}

int min(int a, int b) {
    if (a < b) { return a; }
    return b;
}

int max(int a, int b) {
    if (a > b) { return a; }
    return b;
}

int abs32(int a) {
    if (a < 0) { return 0 - a; }
    return a;
}

// Little-endian scalar accessors for headers in byte buffers.
int load_u16le(int addr) {
    return peek8(addr) | (peek8(addr + 1) << 8);
}

int load_u32le(int addr) {
    return peek8(addr) | (peek8(addr + 1) << 8) | (peek8(addr + 2) << 16)
         | (peek8(addr + 3) << 24);
}

int store_u16le(int addr, int value) {
    poke8(addr, value & 255);
    poke8(addr + 1, (value >> 8) & 255);
    return 2;
}

int store_u32le(int addr, int value) {
    poke8(addr, value & 255);
    poke8(addr + 1, (value >> 8) & 255);
    poke8(addr + 2, (value >> 16) & 255);
    poke8(addr + 3, (value >> 24) & 255);
    return 4;
}

// Diagnostics on the stderr virtual handle (shown by vxUnZIP in verbose mode).
int write_cstr(int fd, int addr) {
    int n;
    n = 0;
    while (peek8(addr + n) != 0) {
        n = n + 1;
    }
    return write(fd, addr, n);
}
"""

#: Function names provided by the runtime (used for Table 2 provenance splits).
RUNTIME_FUNCTIONS = (
    "alloc",
    "heap_reset",
    "memcopy",
    "memfill",
    "read_full",
    "write_full",
    "min",
    "max",
    "abs32",
    "load_u16le",
    "load_u32le",
    "store_u16le",
    "store_u32le",
    "write_cstr",
)
