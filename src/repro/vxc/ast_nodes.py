"""Abstract syntax tree node definitions for the vxc compiler."""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions ---------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class NumberLiteral(Expr):
    value: int = 0


@dataclass
class StringLiteral(Expr):
    value: bytes = b""


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass
class BinaryOp(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? a : b``."""

    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


@dataclass
class Assignment(Expr):
    """``target = value`` or compound ``target op= value``."""

    op: str = "="
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class Index(Expr):
    """Array subscript ``base[index]``."""

    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


# -- statements ----------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class VarDecl(Stmt):
    """Local variable or array declaration."""

    name: str = ""
    elem_kind: str = "int"          # "int" or "byte"
    array_length: int | None = None  # None for scalars
    initializer: Expr | None = None


# -- top-level declarations -----------------------------------------------------

@dataclass
class GlobalDecl:
    name: str
    elem_kind: str                   # "int" or "byte"
    array_length: int | None         # None for scalars
    initializer: list[int] | bytes | int | None
    is_const: bool
    line: int


@dataclass
class Param:
    name: str
    line: int


@dataclass
class FunctionDef:
    name: str
    params: list[Param]
    body: Block
    line: int
    returns_value: bool = True


@dataclass
class Program:
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
