"""Recursive-descent parser for vxc.

Grammar (C subset, integers only):

.. code-block:: text

    program      := (global_decl | function_def)*
    global_decl  := "const"? ("int" | "byte") ident ("[" const_expr? "]")?
                    ("=" initializer)? ";"
    initializer  := const_expr | string | "{" const_expr ("," const_expr)* "}"
    function_def := ("int" | "void") ident "(" params? ")" block
    params       := "int" ident ("," "int" ident)*
    block        := "{" statement* "}"

Expressions follow standard C precedence, with ``?:``, ``&&``/``||``
(short-circuit), bitwise, equality, relational, shift, additive,
multiplicative, unary and postfix (call, index) levels.
"""

from __future__ import annotations

from repro.errors import VxcSyntaxError
from repro.vxc import ast_nodes as ast
from repro.vxc.lexer import Token, tokenize

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """Parses a token stream into a :class:`~repro.vxc.ast_nodes.Program`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers -------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _error(self, message: str):
        token = self._current
        raise VxcSyntaxError(message, line=token.line, column=token.column)

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._position += 1
        return token

    def _check(self, kind: str, value=None) -> bool:
        token = self._current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _accept(self, kind: str, value=None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value=None) -> Token:
        if not self._check(kind, value):
            expectation = value if value is not None else kind
            self._error(f"expected {expectation!r}, found {self._current.value!r}")
        return self._advance()

    # -- program structure ------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._check("eof"):
            is_const = bool(self._accept("keyword", "const"))
            type_token = self._current
            if not (self._check("keyword", "int") or self._check("keyword", "byte")
                    or self._check("keyword", "void")):
                self._error("expected a declaration ('int', 'byte' or 'void')")
            self._advance()
            elem_kind = type_token.value
            name_token = self._expect("ident")
            if self._check("op", "(") and elem_kind != "byte":
                if is_const:
                    self._error("functions cannot be declared const")
                program.functions.append(
                    self._parse_function(name_token, returns_value=elem_kind == "int")
                )
            else:
                if elem_kind == "void":
                    self._error("global variables cannot be void")
                program.globals.append(
                    self._parse_global(name_token, elem_kind, is_const)
                )
        return program

    def _parse_global(self, name_token: Token, elem_kind: str, is_const: bool) -> ast.GlobalDecl:
        array_length: int | None = None
        if self._accept("op", "["):
            if self._check("op", "]"):
                array_length = -1  # inferred from the initializer
            else:
                array_length = self._parse_const_expr()
            self._expect("op", "]")
        initializer = None
        if self._accept("op", "="):
            initializer = self._parse_global_initializer(elem_kind)
        self._expect("op", ";")
        if array_length == -1:
            if initializer is None:
                self._error(f"array {name_token.value!r} needs a length or initializer")
            array_length = len(initializer)
        return ast.GlobalDecl(
            name=name_token.value,
            elem_kind=elem_kind,
            array_length=array_length,
            initializer=initializer,
            is_const=is_const,
            line=name_token.line,
        )

    def _parse_global_initializer(self, elem_kind: str):
        if self._check("string"):
            token = self._advance()
            if elem_kind != "byte":
                self._error("string initializers are only valid for byte arrays")
            return token.value.encode("latin-1") + b"\x00"
        if self._accept("op", "{"):
            values = []
            while not self._check("op", "}"):
                values.append(self._parse_const_expr())
                if not self._accept("op", ","):
                    break
            self._expect("op", "}")
            return values
        return self._parse_const_expr()

    def _parse_const_expr(self) -> int:
        expression = self._parse_conditional()
        value = _fold_constant(expression)
        if value is None:
            self._error("expected a compile-time constant expression")
        return value

    def _parse_function(self, name_token: Token, returns_value: bool) -> ast.FunctionDef:
        self._expect("op", "(")
        params: list[ast.Param] = []
        if not self._check("op", ")"):
            while True:
                if self._accept("keyword", "void") and self._check("op", ")"):
                    break
                self._expect("keyword", "int")
                param_name = self._expect("ident")
                params.append(ast.Param(name=param_name.value, line=param_name.line))
                if not self._accept("op", ","):
                    break
        self._expect("op", ")")
        body = self._parse_block()
        return ast.FunctionDef(
            name=name_token.value,
            params=params,
            body=body,
            line=name_token.line,
            returns_value=returns_value,
        )

    # -- statements ----------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_token = self._expect("op", "{")
        statements: list[ast.Stmt] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                self._error("unterminated block")
            statements.append(self._parse_statement())
        self._expect("op", "}")
        return ast.Block(line=open_token.line, statements=statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self._current
        if self._check("op", "{"):
            return self._parse_block()
        if self._check("keyword", "int") or self._check("keyword", "byte"):
            return self._parse_local_decl()
        if self._accept("keyword", "if"):
            self._expect("op", "(")
            cond = self._parse_expression()
            self._expect("op", ")")
            then = self._parse_statement()
            otherwise = None
            if self._accept("keyword", "else"):
                otherwise = self._parse_statement()
            return ast.If(line=token.line, cond=cond, then=then, otherwise=otherwise)
        if self._accept("keyword", "while"):
            self._expect("op", "(")
            cond = self._parse_expression()
            self._expect("op", ")")
            body = self._parse_statement()
            return ast.While(line=token.line, cond=cond, body=body)
        if self._accept("keyword", "do"):
            body = self._parse_statement()
            self._expect("keyword", "while")
            self._expect("op", "(")
            cond = self._parse_expression()
            self._expect("op", ")")
            self._expect("op", ";")
            return ast.DoWhile(line=token.line, cond=cond, body=body)
        if self._accept("keyword", "for"):
            self._expect("op", "(")
            init = None
            if not self._check("op", ";"):
                if self._check("keyword", "int") or self._check("keyword", "byte"):
                    init = self._parse_local_decl()
                else:
                    init = ast.ExprStmt(line=token.line, expr=self._parse_expression())
                    self._expect("op", ";")
            else:
                self._expect("op", ";")
            cond = None
            if not self._check("op", ";"):
                cond = self._parse_expression()
            self._expect("op", ";")
            step = None
            if not self._check("op", ")"):
                step = self._parse_expression()
            self._expect("op", ")")
            body = self._parse_statement()
            return ast.For(line=token.line, init=init, cond=cond, step=step, body=body)
        if self._accept("keyword", "return"):
            value = None
            if not self._check("op", ";"):
                value = self._parse_expression()
            self._expect("op", ";")
            return ast.Return(line=token.line, value=value)
        if self._accept("keyword", "break"):
            self._expect("op", ";")
            return ast.Break(line=token.line)
        if self._accept("keyword", "continue"):
            self._expect("op", ";")
            return ast.Continue(line=token.line)
        if self._accept("op", ";"):
            return ast.Block(line=token.line, statements=[])
        expression = self._parse_expression()
        self._expect("op", ";")
        return ast.ExprStmt(line=token.line, expr=expression)

    def _parse_local_decl(self) -> ast.Stmt:
        type_token = self._advance()
        elem_kind = type_token.value
        declarations: list[ast.Stmt] = []
        while True:
            name_token = self._expect("ident")
            array_length = None
            if self._accept("op", "["):
                array_length = self._parse_const_expr()
                self._expect("op", "]")
            initializer = None
            if self._accept("op", "="):
                initializer = self._parse_assignment()
            declarations.append(
                ast.VarDecl(
                    line=name_token.line,
                    name=name_token.value,
                    elem_kind=elem_kind,
                    array_length=array_length,
                    initializer=initializer,
                )
            )
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(line=type_token.line, statements=declarations)

    # -- expressions -------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        if self._current.kind == "op" and self._current.value in _ASSIGN_OPS:
            op_token = self._advance()
            value = self._parse_assignment()
            if not isinstance(left, (ast.Identifier, ast.Index)):
                self._error("assignment target must be a variable or array element")
            return ast.Assignment(line=op_token.line, op=op_token.value,
                                  target=left, value=value)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_logical_or()
        if self._accept("op", "?"):
            then = self._parse_assignment()
            self._expect("op", ":")
            otherwise = self._parse_conditional()
            return ast.Conditional(line=cond.line, cond=cond, then=then, otherwise=otherwise)
        return cond

    def _parse_binary_level(self, sub_parser, operators):
        left = sub_parser()
        while self._current.kind == "op" and self._current.value in operators:
            op_token = self._advance()
            right = sub_parser()
            left = ast.BinaryOp(line=op_token.line, op=op_token.value, left=left, right=right)
        return left

    def _parse_logical_or(self):
        return self._parse_binary_level(self._parse_logical_and, ("||",))

    def _parse_logical_and(self):
        return self._parse_binary_level(self._parse_bit_or, ("&&",))

    def _parse_bit_or(self):
        return self._parse_binary_level(self._parse_bit_xor, ("|",))

    def _parse_bit_xor(self):
        return self._parse_binary_level(self._parse_bit_and, ("^",))

    def _parse_bit_and(self):
        return self._parse_binary_level(self._parse_equality, ("&",))

    def _parse_equality(self):
        return self._parse_binary_level(self._parse_relational, ("==", "!="))

    def _parse_relational(self):
        return self._parse_binary_level(self._parse_shift, ("<", "<=", ">", ">="))

    def _parse_shift(self):
        return self._parse_binary_level(self._parse_additive, ("<<", ">>"))

    def _parse_additive(self):
        return self._parse_binary_level(self._parse_multiplicative, ("+", "-"))

    def _parse_multiplicative(self):
        return self._parse_binary_level(self._parse_unary, ("*", "/", "%"))

    def _parse_unary(self) -> ast.Expr:
        token = self._current
        if token.kind == "op" and token.value in ("-", "~", "!", "+"):
            self._advance()
            operand = self._parse_unary()
            if token.value == "+":
                return operand
            return ast.UnaryOp(line=token.line, op=token.value, operand=operand)
        if token.kind == "op" and token.value in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            if not isinstance(operand, (ast.Identifier, ast.Index)):
                self._error("++/-- target must be a variable or array element")
            return ast.Assignment(
                line=token.line,
                op="+=" if token.value == "++" else "-=",
                target=operand,
                value=ast.NumberLiteral(line=token.line, value=1),
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expression = self._parse_primary()
        while True:
            if self._check("op", "["):
                self._advance()
                index = self._parse_expression()
                self._expect("op", "]")
                expression = ast.Index(line=expression.line, base=expression, index=index)
            elif self._check("op", "(") and isinstance(expression, ast.Identifier):
                self._advance()
                args: list[ast.Expr] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept("op", ","):
                            break
                self._expect("op", ")")
                expression = ast.Call(line=expression.line, name=expression.name, args=args)
            else:
                return expression

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind == "number":
            self._advance()
            return ast.NumberLiteral(line=token.line, value=token.value)
        if token.kind == "string":
            self._advance()
            return ast.StringLiteral(line=token.line, value=token.value.encode("latin-1"))
        if token.kind == "ident":
            self._advance()
            return ast.Identifier(line=token.line, name=token.value)
        if self._accept("op", "("):
            expression = self._parse_expression()
            self._expect("op", ")")
            return expression
        self._error(f"unexpected token {token.value!r}")


def _fold_constant(expression: ast.Expr) -> int | None:
    """Evaluate constant expressions at parse time (for sizes and initializers)."""
    if isinstance(expression, ast.NumberLiteral):
        return expression.value
    if isinstance(expression, ast.UnaryOp):
        value = _fold_constant(expression.operand)
        if value is None:
            return None
        if expression.op == "-":
            return -value
        if expression.op == "~":
            return ~value
        if expression.op == "!":
            return 0 if value else 1
    if isinstance(expression, ast.BinaryOp):
        left = _fold_constant(expression.left)
        right = _fold_constant(expression.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: int(left / right) if right else None,
                "%": lambda: left - int(left / right) * right if right else None,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "==": lambda: int(left == right),
                "!=": lambda: int(left != right),
                "<": lambda: int(left < right),
                "<=": lambda: int(left <= right),
                ">": lambda: int(left > right),
                ">=": lambda: int(left >= right),
            }[expression.op]()
        except KeyError:
            return None
    return None


def parse(source: str) -> ast.Program:
    """Parse vxc ``source`` into an AST."""
    return Parser(tokenize(source)).parse_program()
