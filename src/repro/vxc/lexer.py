"""Lexer for vxc, the small C-like language used to write VXA decoders.

The paper's decoders are existing C libraries compiled with a GCC cross
toolchain (section 3.3).  vxc plays that role here: decoders are written in a
familiar, unsafe, integer-only systems language and compiled to VXA-32
executables, rather than hand-written for an archival VM (the paper's
critique of Lorie's UVC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VxcSyntaxError

KEYWORDS = frozenset(
    {
        "int",
        "byte",
        "void",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "const",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<<=",
    ">>=",
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    "?",
    ":",
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str          # "ident", "number", "string", "op", "keyword", "eof"
    value: str | int
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


def tokenize(source: str) -> list[Token]:
    """Convert vxc source text into a list of tokens (ending with ``eof``)."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str):
        raise VxcSyntaxError(message, line=line, column=column)

    while index < length:
        char = source[index]
        # Whitespace
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        # Comments
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end < 0 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                error("unterminated block comment")
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            index = end + 2
            continue
        # Identifiers and keywords
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            word = source[start:index]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, column))
            column += index - start
            continue
        # Numbers
        if char.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    index += 1
                value = int(source[start:index], 16)
            else:
                while index < length and source[index].isdigit():
                    index += 1
                value = int(source[start:index], 10)
            tokens.append(Token("number", value, line, column))
            column += index - start
            continue
        # Character constants
        if char == "'":
            end = index + 1
            while end < length and source[end] != "'":
                if source[end] == "\\":
                    end += 1
                end += 1
            if end >= length:
                error("unterminated character constant")
            body = source[index + 1 : end]
            try:
                decoded = body.encode().decode("unicode_escape")
            except UnicodeDecodeError:
                error(f"bad character constant '{body}'")
            if len(decoded) != 1:
                error(f"character constant must be a single character: '{body}'")
            tokens.append(Token("number", ord(decoded), line, column))
            column += end + 1 - index
            index = end + 1
            continue
        # String literals
        if char == '"':
            end = index + 1
            while end < length and source[end] != '"':
                if source[end] == "\\":
                    end += 1
                end += 1
            if end >= length:
                error("unterminated string literal")
            body = source[index + 1 : end]
            try:
                decoded = body.encode().decode("unicode_escape")
            except UnicodeDecodeError:
                error(f"bad string literal: {body!r}")
            tokens.append(Token("string", decoded, line, column))
            column += end + 1 - index
            index = end + 1
            continue
        # Operators / punctuation
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                tokens.append(Token("op", operator, line, column))
                index += len(operator)
                column += len(operator)
                break
        else:
            error(f"unexpected character {char!r}")
    tokens.append(Token("eof", "", line, column))
    return tokens
