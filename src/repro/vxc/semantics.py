"""Semantic analysis for vxc programs.

Performs the checks and pre-computations the code generator relies on:

* duplicate global / function detection,
* call arity checking (user functions and builtins),
* ``break`` / ``continue`` placement,
* assignment-target validation (no assigning to arrays, constants or
  functions),
* array subscript validation (only declared arrays are indexable; raw
  addresses must use the ``peek``/``poke`` builtins),
* frame layout: every local declaration in a function is assigned a distinct
  frame-pointer-relative slot.

The results are returned as a :class:`SemanticInfo` object consumed by
:mod:`repro.vxc.codegen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VxcSemanticError
from repro.vxc import ast_nodes as ast

#: Builtin functions: name -> (argument count, description).
BUILTINS = {
    # virtual system calls (paper section 4.3)
    "read": 3,
    "write": 3,
    "exit": 1,
    "setperm": 1,
    "done": 0,
    # raw memory access (byte-addressed, for buffers passed by address)
    "peek8": 1,
    "peek8s": 1,
    "peek16": 1,
    "peek16s": 1,
    "peek32": 1,
    "poke8": 2,
    "poke16": 2,
    "poke32": 2,
    # explicit unsigned / arithmetic variants of operators
    "udiv": 2,
    "umod": 2,
    "asr": 2,
}

_ELEM_SIZES = {"int": 4, "byte": 1}


@dataclass
class GlobalSymbol:
    """A global variable placed in the data or bss section."""

    name: str
    elem_kind: str
    elem_size: int
    length: int | None            # None for scalars
    is_const: bool
    init_bytes: bytes | None      # None -> zero-initialised (bss)
    const_value: int | None = None  # set for const scalars folded to immediates

    @property
    def is_array(self) -> bool:
        return self.length is not None

    @property
    def size_bytes(self) -> int:
        count = self.length if self.length is not None else 1
        return count * self.elem_size if self.is_array else 4


@dataclass
class LocalSymbol:
    """A local variable or array with an assigned frame slot."""

    name: str
    elem_kind: str
    elem_size: int
    length: int | None
    offset: int                   # negative offset from the frame pointer

    @property
    def is_array(self) -> bool:
        return self.length is not None


@dataclass
class FunctionInfo:
    """Per-function layout information."""

    name: str
    params: list[str]
    frame_size: int = 0
    locals_by_decl: dict[int, LocalSymbol] = field(default_factory=dict)


@dataclass
class SemanticInfo:
    """Everything the code generator needs beyond the AST itself."""

    globals: dict[str, GlobalSymbol] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)


def analyze(program: ast.Program) -> SemanticInfo:
    """Validate ``program`` and compute layouts.

    Raises:
        VxcSemanticError: on any semantic violation.
    """
    info = SemanticInfo()
    _collect_globals(program, info)
    _collect_functions(program, info)
    for function in program.functions:
        _check_function(function, info)
    if "main" not in info.functions:
        raise VxcSemanticError("program has no 'main' function")
    if info.functions["main"].params:
        raise VxcSemanticError("'main' must take no parameters")
    return info


# -- globals ---------------------------------------------------------------------

def _collect_globals(program: ast.Program, info: SemanticInfo) -> None:
    for declaration in program.globals:
        if declaration.name in info.globals:
            raise VxcSemanticError(
                f"line {declaration.line}: duplicate global {declaration.name!r}"
            )
        elem_size = _ELEM_SIZES[declaration.elem_kind]
        length = declaration.array_length
        if length is not None and length <= 0:
            raise VxcSemanticError(
                f"line {declaration.line}: array {declaration.name!r} must have "
                "a positive length"
            )
        init_bytes = _encode_initializer(declaration, elem_size, length)
        const_value = None
        if (
            declaration.is_const
            and length is None
            and isinstance(declaration.initializer, int)
        ):
            const_value = declaration.initializer & 0xFFFFFFFF
        info.globals[declaration.name] = GlobalSymbol(
            name=declaration.name,
            elem_kind=declaration.elem_kind,
            elem_size=elem_size,
            length=length,
            is_const=declaration.is_const,
            init_bytes=init_bytes,
            const_value=const_value,
        )


def _encode_initializer(declaration: ast.GlobalDecl, elem_size: int,
                        length: int | None) -> bytes | None:
    initializer = declaration.initializer
    if initializer is None:
        return None
    if isinstance(initializer, bytes):
        if length is None:
            raise VxcSemanticError(
                f"line {declaration.line}: string initializer requires an array"
            )
        data = initializer
    elif isinstance(initializer, list):
        if length is None:
            raise VxcSemanticError(
                f"line {declaration.line}: brace initializer requires an array"
            )
        data = b"".join(
            (value & (0xFF if elem_size == 1 else 0xFFFFFFFF)).to_bytes(
                elem_size, "little"
            )
            for value in initializer
        )
    else:  # scalar integer
        if length is not None:
            data = (initializer & 0xFFFFFFFF).to_bytes(4, "little")
        else:
            data = (initializer & 0xFFFFFFFF).to_bytes(4, "little")
    expected = (length if length is not None else 1) * elem_size
    if len(data) > expected:
        raise VxcSemanticError(
            f"line {declaration.line}: initializer for {declaration.name!r} has "
            f"{len(data)} bytes but the array holds {expected}"
        )
    return data + b"\x00" * (expected - len(data))


# -- functions ---------------------------------------------------------------------

def _collect_functions(program: ast.Program, info: SemanticInfo) -> None:
    for function in program.functions:
        if function.name in info.functions:
            raise VxcSemanticError(
                f"line {function.line}: duplicate function {function.name!r}"
            )
        if function.name in BUILTINS:
            raise VxcSemanticError(
                f"line {function.line}: {function.name!r} is a builtin and cannot "
                "be redefined"
            )
        if function.name in info.globals:
            raise VxcSemanticError(
                f"line {function.line}: {function.name!r} already declared as a global"
            )
        seen_params = set()
        for param in function.params:
            if param.name in seen_params:
                raise VxcSemanticError(
                    f"line {param.line}: duplicate parameter {param.name!r}"
                )
            seen_params.add(param.name)
        info.functions[function.name] = FunctionInfo(
            name=function.name,
            params=[param.name for param in function.params],
        )


class _FunctionChecker:
    """Walks one function body: scoping, arity, loop placement, frame layout."""

    def __init__(self, function: ast.FunctionDef, info: SemanticInfo):
        self._function = function
        self._info = info
        self._layout = info.functions[function.name]
        self._scopes: list[dict[str, LocalSymbol | str]] = []
        self._loop_depth = 0
        self._frame_size = 0

    def run(self) -> None:
        self._scopes.append({name: "param" for name in self._layout.params})
        self._check_stmt(self._function.body)
        self._scopes.pop()
        self._layout.frame_size = (self._frame_size + 15) & ~15

    # -- helpers ------------------------------------------------------------------

    def _error(self, node, message: str):
        raise VxcSemanticError(f"line {getattr(node, 'line', '?')}: {message}")

    def _lookup(self, name: str):
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if name in self._info.globals:
            return self._info.globals[name]
        return None

    def _declare_local(self, decl: ast.VarDecl) -> None:
        scope = self._scopes[-1]
        if decl.name in scope:
            self._error(decl, f"duplicate local {decl.name!r}")
        elem_size = _ELEM_SIZES[decl.elem_kind]
        if decl.array_length is not None:
            if decl.array_length <= 0:
                self._error(decl, f"array {decl.name!r} must have a positive length")
            size = (decl.array_length * elem_size + 3) & ~3
        else:
            size = 4
        self._frame_size += size
        symbol = LocalSymbol(
            name=decl.name,
            elem_kind=decl.elem_kind,
            elem_size=elem_size,
            length=decl.array_length,
            offset=-self._frame_size,
        )
        scope[decl.name] = symbol
        self._layout.locals_by_decl[id(decl)] = symbol

    # -- statements ------------------------------------------------------------------

    def _check_stmt(self, node: ast.Stmt) -> None:
        if isinstance(node, ast.Block):
            self._scopes.append({})
            for statement in node.statements:
                self._check_stmt(statement)
            self._scopes.pop()
        elif isinstance(node, ast.VarDecl):
            if node.initializer is not None:
                if node.array_length is not None:
                    self._error(node, "local arrays cannot have initializers")
                self._check_expr(node.initializer)
            self._declare_local(node)
        elif isinstance(node, ast.ExprStmt):
            self._check_expr(node.expr)
        elif isinstance(node, ast.If):
            self._check_expr(node.cond)
            self._check_stmt(node.then)
            if node.otherwise is not None:
                self._check_stmt(node.otherwise)
        elif isinstance(node, (ast.While, ast.DoWhile)):
            self._check_expr(node.cond)
            self._loop_depth += 1
            self._check_stmt(node.body)
            self._loop_depth -= 1
        elif isinstance(node, ast.For):
            self._scopes.append({})
            if node.init is not None:
                self._check_stmt(node.init)
            if node.cond is not None:
                self._check_expr(node.cond)
            if node.step is not None:
                self._check_expr(node.step)
            self._loop_depth += 1
            self._check_stmt(node.body)
            self._loop_depth -= 1
            self._scopes.pop()
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._check_expr(node.value)
            elif self._function.returns_value:
                # allow bare 'return;' in int functions (value is unspecified, like C89)
                pass
        elif isinstance(node, ast.Break):
            if self._loop_depth == 0:
                self._error(node, "'break' outside of a loop")
        elif isinstance(node, ast.Continue):
            if self._loop_depth == 0:
                self._error(node, "'continue' outside of a loop")
        else:  # pragma: no cover - parser produces no other statement kinds
            self._error(node, f"unsupported statement {type(node).__name__}")

    # -- expressions --------------------------------------------------------------------

    def _check_expr(self, node: ast.Expr) -> None:
        if isinstance(node, (ast.NumberLiteral, ast.StringLiteral)):
            return
        if isinstance(node, ast.Identifier):
            symbol = self._lookup(node.name)
            if symbol is None:
                if node.name in self._info.functions or node.name in BUILTINS:
                    self._error(node, f"{node.name!r} is a function, not a value")
                self._error(node, f"undeclared identifier {node.name!r}")
            return
        if isinstance(node, ast.UnaryOp):
            self._check_expr(node.operand)
            return
        if isinstance(node, ast.BinaryOp):
            self._check_expr(node.left)
            self._check_expr(node.right)
            return
        if isinstance(node, ast.Conditional):
            self._check_expr(node.cond)
            self._check_expr(node.then)
            self._check_expr(node.otherwise)
            return
        if isinstance(node, ast.Assignment):
            self._check_assign_target(node.target)
            self._check_expr(node.value)
            return
        if isinstance(node, ast.Index):
            self._check_index(node)
            return
        if isinstance(node, ast.Call):
            self._check_call(node)
            return
        self._error(node, f"unsupported expression {type(node).__name__}")  # pragma: no cover

    def _check_assign_target(self, target: ast.Expr) -> None:
        if isinstance(target, ast.Identifier):
            symbol = self._lookup(target.name)
            if symbol is None:
                self._error(target, f"undeclared identifier {target.name!r}")
            if isinstance(symbol, GlobalSymbol):
                if symbol.is_const:
                    self._error(target, f"cannot assign to const {target.name!r}")
                if symbol.is_array:
                    self._error(target, f"cannot assign to array {target.name!r}")
            if isinstance(symbol, LocalSymbol) and symbol.is_array:
                self._error(target, f"cannot assign to array {target.name!r}")
            return
        if isinstance(target, ast.Index):
            self._check_index(target)
            return
        self._error(target, "assignment target must be a variable or array element")

    def _check_index(self, node: ast.Index) -> None:
        base = node.base
        if not isinstance(base, ast.Identifier):
            self._error(node, "only declared arrays can be subscripted; "
                              "use peek/poke for raw addresses")
        symbol = self._lookup(base.name)
        if symbol is None:
            self._error(base, f"undeclared identifier {base.name!r}")
        if isinstance(symbol, str):  # parameter
            self._error(node, f"{base.name!r} is not an array; "
                              "use peek/poke to dereference addresses")
        if isinstance(symbol, (GlobalSymbol, LocalSymbol)) and not symbol.is_array:
            self._error(node, f"{base.name!r} is not an array")
        self._check_expr(node.index)

    def _check_call(self, node: ast.Call) -> None:
        if node.name in BUILTINS:
            expected = BUILTINS[node.name]
        elif node.name in self._info.functions:
            expected = len(self._info.functions[node.name].params)
        else:
            self._error(node, f"call to undefined function {node.name!r}")
        if len(node.args) != expected:
            self._error(
                node,
                f"{node.name!r} expects {expected} argument(s), got {len(node.args)}",
            )
        for argument in node.args:
            self._check_expr(argument)


def _check_function(function: ast.FunctionDef, info: SemanticInfo) -> None:
    _FunctionChecker(function, info).run()
