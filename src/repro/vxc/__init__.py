"""vxc: the small C-like compiler used to build VXA guest decoders."""

from repro.vxc.compiler import (
    CATEGORY_DECODER,
    CATEGORY_LIBRARY,
    CATEGORY_RUNTIME,
    CompileResult,
    SourceUnit,
    compile_source,
    compile_units,
)
from repro.vxc.lexer import tokenize
from repro.vxc.parser import parse
from repro.vxc.semantics import analyze

__all__ = [
    "CATEGORY_DECODER",
    "CATEGORY_LIBRARY",
    "CATEGORY_RUNTIME",
    "CompileResult",
    "SourceUnit",
    "compile_source",
    "compile_units",
    "tokenize",
    "parse",
    "analyze",
]
