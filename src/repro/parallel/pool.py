"""Worker pool abstraction: OS processes for scaling, threads for cheapness.

``ProcessPoolExecutor`` is the default for real work -- guest decoders are
CPU-bound pure Python, so only separate interpreters scale across cores.
The in-process ``ThreadPoolExecutor`` flavour exists for small archives
(process startup would dominate), for archives only reachable through a
live file object, and for tests; it exercises exactly the same scheduler,
worker bootstrap and stats plumbing, just without the serialization
boundary.  The thread flavour is also why the translator's compiled-source
memo and every ``CodeCache`` mutation path take locks.

``resolve_executor`` centralises the ``"auto"`` policy so the facade, the
CLI and ``vxserve`` agree on it.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from concurrent.futures import (
    BrokenExecutor,
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass

from repro.api.options import EXECUTOR_AUTO, EXECUTOR_PROCESS, EXECUTOR_THREAD
from repro.errors import VxaError, WorkerCrashed

#: Below this much total stored work (bytes), process startup and payload
#: pickling cost more than multi-core buys; ``auto`` stays in-process.
PROCESS_MIN_COST = 4 << 20


def thread_safe_start_method() -> str:
    """The start method safe under a multithreaded parent (never fork)."""
    if "forkserver" in multiprocessing.get_all_start_methods():
        return "forkserver"
    return "spawn"  # pragma: no cover - platform-dependent


def _default_start_method() -> str:
    """Fork while it is safe (single-threaded parent), forkserver after."""
    if hasattr(os, "fork") and threading.active_count() == 1:
        return "fork"
    return thread_safe_start_method()


def resolve_executor(kind: str, jobs: int, *, total_cost: int | None = None,
                     payload=None) -> str:
    """Pick the concrete executor flavour for an ``"auto"`` request.

    Processes are chosen only when they can plausibly win: more than one
    worker requested, more than one core to run them on, enough work to
    amortise startup, and a payload the pickle boundary can actually carry.
    """
    if kind != EXECUTOR_AUTO:
        return kind
    if jobs <= 1 or (os.cpu_count() or 1) <= 1:
        return EXECUTOR_THREAD
    if total_cost is not None and total_cost < PROCESS_MIN_COST:
        return EXECUTOR_THREAD
    if payload is not None:
        try:
            pickle.dumps(payload)
        except Exception:
            return EXECUTOR_THREAD
    return EXECUTOR_PROCESS


@dataclass
class WorkOutcome:
    """What happened to one payload submitted through :meth:`WorkerPool.run_all`.

    Exactly one of ``result``/``error`` is populated.  ``crashed`` marks the
    worker-death flavour of failure (a dead process pool worker, or a
    simulated :class:`~repro.errors.WorkerCrashed` in thread mode): the
    payload's work was lost wholesale, not rejected, and the engine's crash
    recovery may reschedule it.
    """

    payload: dict
    result: dict | None = None
    error: BaseException | None = None
    crashed: bool = False


class WorkerPool:
    """A fixed pool of workers executing shard payloads.

    Args:
        jobs: maximum concurrent workers.
        kind: ``"process"``, ``"thread"`` or ``"auto"`` (resolved with
            :func:`resolve_executor` -- pass ``total_cost``/``payload`` for
            a better decision).
        total_cost: optional total work estimate feeding the auto policy.
        payload: optional representative payload feeding the auto policy's
            picklability probe.

    The pool is long-lived by design: ``vxserve`` keeps one across requests
    so worker-side sessions (and their per-decoder-image code caches) stay
    warm.  It is also a context manager for the one-shot facade path.

    ``start_method`` picks the multiprocessing start method.  The default
    (``None``) forks when the creating process is still single-threaded --
    fork works from any ``__main__`` (stdin scripts, the REPL) and is cheap
    -- but switches to forkserver/spawn when threads already exist, because
    a child forked while another thread holds an internal lock inherits
    that held lock and deadlocks.  ``vxserve`` pins ``"forkserver"``
    explicitly: its socket transport submits from handler threads that do
    not exist yet when the pool is created, and its ``__main__`` is always
    importable so the re-importing start methods are safe there.
    """

    def __init__(self, jobs: int, kind: str = EXECUTOR_AUTO, *,
                 total_cost: int | None = None, payload=None,
                 start_method: str | None = None):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.kind = resolve_executor(kind, jobs, total_cost=total_cost,
                                     payload=payload)
        if self.kind not in (EXECUTOR_PROCESS, EXECUTOR_THREAD):
            raise ValueError(f"unknown executor {kind!r}")
        # Pin the start method at construction so a respawn after a worker
        # crash recreates an identical executor: _default_start_method()
        # keys off threading.active_count(), which will have changed by then.
        self._start_method = (start_method or _default_start_method()
                              if self.kind == EXECUTOR_PROCESS else None)
        self._executor = self._make_executor()
        self.respawns = 0
        self._closed = False

    def _make_executor(self):
        if self.kind == EXECUTOR_PROCESS:
            context = multiprocessing.get_context(self._start_method)
            return ProcessPoolExecutor(max_workers=self.jobs,
                                       mp_context=context)
        return ThreadPoolExecutor(max_workers=self.jobs,
                                  thread_name_prefix="vxa-worker")

    def alive_workers(self) -> int | None:
        """Live OS worker processes, or ``None`` for thread pools.

        Thread workers share this process and cannot die independently, so
        there is nothing to count.  Process counts come from the executor's
        worker table; workers are spawned lazily, so ``0`` before the first
        submission is normal, not a failure.  ``vxserve``'s ``health`` op
        surfaces this as pool liveness.
        """
        if self.kind != EXECUTOR_PROCESS:
            return None
        processes = getattr(self._executor, "_processes", None) or {}
        return sum(1 for process in processes.values() if process.is_alive())

    def respawn(self) -> None:
        """Replace a broken executor with a fresh one of the same shape.

        A dead process-pool worker breaks the whole ``ProcessPoolExecutor``
        (every pending future fails with ``BrokenProcessPool`` and further
        submits are refused), so recovery needs a new executor -- same
        flavour, same worker count, same start method.  Thread executors
        never break, but respawning one is harmless and keeps the recovery
        path uniform.
        """
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = self._make_executor()
        self.respawns += 1

    def run(self, fn, payloads: list) -> list:
        """Run ``fn(payload)`` for every payload; results in payload order.

        Raises the first failure (by payload order) after letting the other
        workers finish or fail -- a deterministic error surface regardless
        of completion timing.
        """
        futures = [self._executor.submit(fn, payload) for payload in payloads]
        wait(futures, return_when=FIRST_EXCEPTION)
        errors = [future.exception() for future in futures]
        for error in errors:
            if error is not None:
                raise error
        return [future.result() for future in futures]

    def run_all(self, fn, payloads: list) -> list:
        """Run every payload to an outcome; never raises for worker failures.

        Returns one :class:`WorkOutcome` per payload, in payload order.  A
        worker death -- real (``BrokenProcessPool``: the OS process died and
        took every pending future with it) or simulated
        (:class:`~repro.errors.WorkerCrashed` from the fault-injection
        hooks in thread mode) -- marks the outcome ``crashed``; any other
        exception is carried in ``error``.  A broken executor is respawned
        before returning, so the caller can resubmit crashed payloads
        immediately.
        """
        outcomes = [WorkOutcome(payload=payload) for payload in payloads]
        futures: dict[int, object] = {}
        broken = False
        for index, payload in enumerate(payloads):
            try:
                futures[index] = self._executor.submit(fn, payload)
            except BrokenExecutor as error:
                # The pool broke under an earlier payload of this batch;
                # nothing was submitted for this one.
                broken = True
                outcomes[index].crashed = True
                outcomes[index].error = error
        wait(list(futures.values()))
        for index, future in futures.items():
            error = future.exception()
            if error is None:
                outcomes[index].result = future.result()
            elif isinstance(error, (BrokenExecutor, WorkerCrashed)):
                broken = broken or isinstance(error, BrokenExecutor)
                outcomes[index].crashed = True
                outcomes[index].error = error
            else:
                outcomes[index].error = error
        if broken:
            self.respawn()
        return outcomes

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self.kind == EXECUTOR_THREAD:
                self._drain_thread_workers()
        finally:
            self._executor.shutdown(wait=True)

    def _drain_thread_workers(self) -> None:
        """Close every thread worker's cached archives before shutdown.

        Worker state lives in ``threading.local``, so each pool thread must
        run the cleanup itself; the barrier forces the executor to fan the
        tasks out one-per-thread (it spawns threads up to ``jobs`` while
        tasks are queued and every task blocks until all have started).
        Process workers need no equivalent -- their handles die with them.

        A broken barrier (a worker thread failed to reach it within the
        timeout -- a wedged or leaked worker) is a real pool failure: some
        worker's cached archives were *not* closed, so their file handles
        outlive the pool.  It used to be swallowed here; now it surfaces.
        """
        from repro.parallel.worker import shutdown_worker

        barrier = threading.Barrier(self.jobs)

        def drain() -> None:
            barrier.wait(timeout=10)
            shutdown_worker()

        futures = [self._executor.submit(drain) for _ in range(self.jobs)]
        wait(futures)
        broken = [future for future in futures
                  if isinstance(future.exception(), threading.BrokenBarrierError)]
        if broken:
            raise VxaError(
                f"thread pool drain failed: {len(broken)} of {self.jobs} "
                "workers never reached the shutdown barrier; their cached "
                "archive handles may have leaked"
            )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
