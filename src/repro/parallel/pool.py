"""Worker pool abstraction: OS processes for scaling, threads for cheapness.

``ProcessPoolExecutor`` is the default for real work -- guest decoders are
CPU-bound pure Python, so only separate interpreters scale across cores.
The in-process ``ThreadPoolExecutor`` flavour exists for small archives
(process startup would dominate), for archives only reachable through a
live file object, and for tests; it exercises exactly the same scheduler,
worker bootstrap and stats plumbing, just without the serialization
boundary.  The thread flavour is also why the translator's compiled-source
memo and every ``CodeCache`` mutation path take locks.

``resolve_executor`` centralises the ``"auto"`` policy so the facade, the
CLI and ``vxserve`` agree on it.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from concurrent.futures import (
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

from repro.api.options import EXECUTOR_AUTO, EXECUTOR_PROCESS, EXECUTOR_THREAD

#: Below this much total stored work (bytes), process startup and payload
#: pickling cost more than multi-core buys; ``auto`` stays in-process.
PROCESS_MIN_COST = 4 << 20


def thread_safe_start_method() -> str:
    """The start method safe under a multithreaded parent (never fork)."""
    if "forkserver" in multiprocessing.get_all_start_methods():
        return "forkserver"
    return "spawn"  # pragma: no cover - platform-dependent


def _default_start_method() -> str:
    """Fork while it is safe (single-threaded parent), forkserver after."""
    if hasattr(os, "fork") and threading.active_count() == 1:
        return "fork"
    return thread_safe_start_method()


def resolve_executor(kind: str, jobs: int, *, total_cost: int | None = None,
                     payload=None) -> str:
    """Pick the concrete executor flavour for an ``"auto"`` request.

    Processes are chosen only when they can plausibly win: more than one
    worker requested, more than one core to run them on, enough work to
    amortise startup, and a payload the pickle boundary can actually carry.
    """
    if kind != EXECUTOR_AUTO:
        return kind
    if jobs <= 1 or (os.cpu_count() or 1) <= 1:
        return EXECUTOR_THREAD
    if total_cost is not None and total_cost < PROCESS_MIN_COST:
        return EXECUTOR_THREAD
    if payload is not None:
        try:
            pickle.dumps(payload)
        except Exception:
            return EXECUTOR_THREAD
    return EXECUTOR_PROCESS


class WorkerPool:
    """A fixed pool of workers executing shard payloads.

    Args:
        jobs: maximum concurrent workers.
        kind: ``"process"``, ``"thread"`` or ``"auto"`` (resolved with
            :func:`resolve_executor` -- pass ``total_cost``/``payload`` for
            a better decision).
        total_cost: optional total work estimate feeding the auto policy.
        payload: optional representative payload feeding the auto policy's
            picklability probe.

    The pool is long-lived by design: ``vxserve`` keeps one across requests
    so worker-side sessions (and their per-decoder-image code caches) stay
    warm.  It is also a context manager for the one-shot facade path.

    ``start_method`` picks the multiprocessing start method.  The default
    (``None``) forks when the creating process is still single-threaded --
    fork works from any ``__main__`` (stdin scripts, the REPL) and is cheap
    -- but switches to forkserver/spawn when threads already exist, because
    a child forked while another thread holds an internal lock inherits
    that held lock and deadlocks.  ``vxserve`` pins ``"forkserver"``
    explicitly: its socket transport submits from handler threads that do
    not exist yet when the pool is created, and its ``__main__`` is always
    importable so the re-importing start methods are safe there.
    """

    def __init__(self, jobs: int, kind: str = EXECUTOR_AUTO, *,
                 total_cost: int | None = None, payload=None,
                 start_method: str | None = None):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.kind = resolve_executor(kind, jobs, total_cost=total_cost,
                                     payload=payload)
        if self.kind == EXECUTOR_PROCESS:
            context = multiprocessing.get_context(
                start_method or _default_start_method())
            self._executor = ProcessPoolExecutor(max_workers=jobs,
                                                 mp_context=context)
        elif self.kind == EXECUTOR_THREAD:
            self._executor = ThreadPoolExecutor(
                max_workers=jobs, thread_name_prefix="vxa-worker")
        else:
            raise ValueError(f"unknown executor {kind!r}")
        self._closed = False

    def run(self, fn, payloads: list) -> list:
        """Run ``fn(payload)`` for every payload; results in payload order.

        Raises the first failure (by payload order) after letting the other
        workers finish or fail -- a deterministic error surface regardless
        of completion timing.
        """
        futures = [self._executor.submit(fn, payload) for payload in payloads]
        wait(futures, return_when=FIRST_EXCEPTION)
        errors = [future.exception() for future in futures]
        for error in errors:
            if error is not None:
                raise error
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.kind == EXECUTOR_THREAD:
            self._drain_thread_workers()
        self._executor.shutdown(wait=True)

    def _drain_thread_workers(self) -> None:
        """Close every thread worker's cached archives before shutdown.

        Worker state lives in ``threading.local``, so each pool thread must
        run the cleanup itself; the barrier forces the executor to fan the
        tasks out one-per-thread (it spawns threads up to ``jobs`` while
        tasks are queued and every task blocks until all have started).
        Process workers need no equivalent -- their handles die with them.
        """
        from repro.parallel.worker import shutdown_worker

        barrier = threading.Barrier(self.jobs)

        def drain() -> None:
            try:
                barrier.wait(timeout=10)
            except threading.BrokenBarrierError:  # pragma: no cover - timeout
                pass
            shutdown_worker()

        futures = [self._executor.submit(drain) for _ in range(self.jobs)]
        wait(futures)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
