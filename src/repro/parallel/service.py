"""``vxserve`` -- a long-running batch extraction/verification service.

The ROADMAP's "archive server" workload: one resident process that accepts
extract/check requests against many archives and multiplexes them onto a
single shared :class:`~repro.parallel.pool.WorkerPool`.  Because the pool
(and therefore each worker's :mod:`~repro.parallel.worker` state) outlives
any one request, a worker that has already served an archive keeps its
:class:`~repro.api.session.DecoderSession` -- and each decoder image's
translated :class:`~repro.vm.code_cache.CodeCache` -- warm for the next
request, while ``ReadOptions.code_cache_limit`` (on by default here) keeps
that state bounded over an unbounded request stream.

The service is overload-safe (see :mod:`repro.parallel.admission`): a
bounded admission gate (``--max-inflight``/``--queue-depth``) queues
briefly under pressure and then *sheds* load with a structured
``overloaded`` error carrying a ``retry_after_seconds`` hint; per-client
quotas (``--client-quota``) and two request priorities
(``interactive``/``batch``) keep any one client or bulk job from starving
the rest; and a per-archive circuit breaker (``--breaker-threshold``/
``--breaker-reset``) refuses requests for an archive that keeps failing
until a half-open probe proves it healthy again.  Rejections are always
structured responses, never dropped connections, and shed requests run no
guest work -- admitted extractions stay byte-identical to a serial run.

Protocol: JSON lines (full specification: ``docs/vxserve-protocol.md``).
One request object per line on stdin (or a unix socket connection with
``--socket``), one response object per line out::

    {"id": 1, "op": "ping"}
    {"id": 2, "op": "list",    "archive": "backup.zip"}
    {"id": 3, "op": "extract", "archive": "backup.zip", "dest": "out",
     "members": ["a.txt"], "mode": "vxa", "jobs": 4,
     "client": "ci-bot", "priority": "batch"}
    {"id": 4, "op": "check",   "archive": "backup.zip",
     "reuse": "reuse-same-attributes"}
    {"id": 5, "op": "health"}
    {"id": 6, "op": "stats"}
    {"id": 7, "op": "shutdown"}

Responses echo the ``id``: ``{"id": 3, "ok": true, "result": {...}}`` on
success, ``{"id": 3, "ok": false, "error": "...", "error_type": "..."}`` on
failure; structured refusals additionally carry ``error_code`` (one of
``overloaded``/``quota_exceeded``/``circuit_open``/``draining``/
``request_too_large``/``bad_json``/``archive_damaged``) and, where retrying
makes sense, a
``retry_after_seconds`` hint that :class:`repro.client.VxServeClient`
honours.  A malformed line yields an error response rather than killing the
service.  Entry point: the ``vxserve`` console script (or ``python -m
repro.parallel.service``); the matching retrying client is the ``vxquery``
console script (:mod:`repro.client`).
"""

from __future__ import annotations

import argparse
import io
import json
import os
import pathlib
import signal
import sys
import threading
import time
from dataclasses import dataclass

import repro.api as vxa
from repro.api.options import EXECUTOR_AUTO
from repro.api.session import SessionStats
from repro.core.policy import VmReusePolicy
from repro.errors import (
    ArchiveDamagedError,
    CodecError,
    IntegrityError,
    ZipFormatError,
)
from repro.faults import FaultPlan
from repro.parallel.admission import (
    ANONYMOUS_CLIENT,
    AdmissionGate,
    CircuitBreakerBoard,
    ClientQuotas,
    DrainingError,
    PRIORITIES,
    PRIORITY_INTERACTIVE,
    RequestTooLargeError,
    ServiceRejection,
)
from repro.parallel.engine import parallel_check, parallel_extract_into
from repro.parallel.pool import WorkerPool, thread_safe_start_method

#: Default LRU cap on translated fragments per decoder image: generous for
#: any single decoder, but a hard bound for a service that never exits.
DEFAULT_CODE_CACHE_LIMIT = 4096

#: Admission defaults: a brief queue in front of the gate, a breaker that
#: trips after a run of consecutive failures and probes half a minute later.
DEFAULT_QUEUE_DEPTH = 16
DEFAULT_QUEUE_TIMEOUT = 0.25
DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_RESET = 30.0

#: Hard cap on one JSON request line; a hostile peer cannot buffer an
#: arbitrarily long line into service memory.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20

#: ReadOptions fields a request may override per call.
_OPTION_FIELDS = ("mode", "force_decode", "engine", "superblock_limit",
                  "chain_fragments", "chunk_size", "code_cache_limit",
                  "verify_images", "analysis_elision", "on_error", "retries",
                  "member_deadline", "on_damage", "durable_output")

#: Ops that are bookkeeping, not archive work: always allowed, even while
#: the service is draining, never counted as in-flight work, and never
#: subject to admission control -- ``ping``/``health`` must answer even
#: (especially) when the service is melting.
_CONTROL_OPS = frozenset({"ping", "health", "stats", "drain", "shutdown"})

#: Ops whose failures charge the target archive's circuit breaker.
_BREAKER_OPS = frozenset({"extract", "check"})


@dataclass
class _Admission:
    """Everything :meth:`BatchService.handle` must undo after one request."""

    token: int
    client: str
    priority: str
    breaker_key: str | None
    started: float


class BatchService:
    """Dispatches JSON requests onto one shared worker pool.

    Args:
        jobs: worker count for the shared pool (default: the machine's CPU
            count) and the default per-request shard fan-out.
        executor: pool flavour (``auto``/``process``/``thread``).
        options: service-wide default :class:`~repro.api.ReadOptions`;
            per-request fields override a copy.  The service default enables
            ``REUSE_SAME_ATTRIBUTES`` (§2.4-safe VM reuse, which also shares
            code caches across members) and a bounded code cache.
        max_inflight: concurrent archive-work requests before the admission
            gate queues and then sheds (``None`` = unbounded, the historic
            behaviour; the ``vxserve`` CLI defaults to ``4 * jobs``).
        queue_depth / queue_timeout: how many requests may briefly wait for
            a slot, and for how long, before being shed as ``overloaded``.
        client_quota: per-client in-flight cap (``None`` disables).
        breaker_threshold: consecutive ``extract``/``check`` failures that
            open an archive's circuit breaker (``0`` disables breakers).
        breaker_reset: seconds an open breaker waits before its half-open
            probe.
        max_request_bytes: cap on one JSON request line (transport layer).
    """

    def __init__(self, *, jobs: int | None = None,
                 executor: str = EXECUTOR_AUTO,
                 options: vxa.ReadOptions | None = None,
                 request_timeout: float | None = None,
                 max_inflight: int | None = None,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
                 client_quota: int | None = None,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_reset: float = DEFAULT_BREAKER_RESET,
                 max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES):
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.options = options or vxa.ReadOptions(
            reuse=VmReusePolicy.REUSE_SAME_ATTRIBUTES,
            code_cache_limit=DEFAULT_CODE_CACHE_LIMIT,
        )
        #: Wall-clock budget for one request's guest work.  It is enforced
        #: where a hang can actually happen -- every member decode gets a
        #: ``member_deadline`` capped to this value, which the VM engines
        #: check inside their fuel accounting -- and audited by the
        #: watchdog thread, which flags requests running past it.
        self.request_timeout = request_timeout
        # Never fork here: socket-mode requests submit from handler threads,
        # and those threads do not exist yet when the pool is created, so
        # the thread-state-based default would wrongly pick fork; vxserve's
        # __main__ is importable, so the re-importing start methods are
        # safe (see WorkerPool).
        self.pool = WorkerPool(self.jobs, executor,
                               start_method=thread_safe_start_method())
        self.gate = AdmissionGate(max_inflight, queue_depth, queue_timeout)
        self.quotas = ClientQuotas(client_quota)
        self.breakers = CircuitBreakerBoard(breaker_threshold, breaker_reset)
        self.max_request_bytes = max_request_bytes
        self.stats = SessionStats()
        self.requests = 0
        self.rejected_draining = 0
        self.oversized_requests = 0
        self.watchdog_overruns = 0
        # Monotonic clock: NTP steps must not corrupt uptime or rate math.
        self.started = time.monotonic()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight: dict[int, tuple[str, float]] = {}
        self._next_token = 0
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._watchdog: threading.Thread | None = None
        if request_timeout is not None:
            self._watchdog = threading.Thread(
                target=self._watch_requests, name="vxserve-watchdog",
                daemon=True)
            self._watchdog.start()

    # -- request handling ------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Process one request object; always returns a response object."""
        response: dict = {}
        if isinstance(request, dict) and "id" in request:
            response["id"] = request["id"]
        with self._lock:
            self.requests += 1
        admission: _Admission | None = None
        try:
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            op = request.get("op")
            handler = getattr(self, f"_op_{op}", None)
            if op is None or handler is None:
                raise ValueError(f"unknown op {op!r}")
            if op not in _CONTROL_OPS:
                admission = self._admit(request, op)
            response["ok"] = True
            response["result"] = handler(request)
            if admission is not None:
                self.breakers.record(admission.breaker_key, ok=True)
        except (KeyboardInterrupt, SystemExit):
            raise
        except ServiceRejection as error:
            response.pop("result", None)
            response["ok"] = False
            response["error"] = str(error)
            response["error_type"] = type(error).__name__
            response["error_code"] = error.code
            if error.retry_after_seconds is not None:
                response["retry_after_seconds"] = error.retry_after_seconds
        except Exception as error:
            if admission is not None:
                self.breakers.record(admission.breaker_key, ok=False)
            response.pop("result", None)
            response["ok"] = False
            response["error"] = str(error)
            response["error_type"] = type(error).__name__
            if isinstance(error, (ArchiveDamagedError, CodecError,
                                  IntegrityError, ZipFormatError)):
                # Media damage is deterministic: the bytes on disk will not
                # get better by retrying, so clients must not treat this
                # like a transient refusal.
                response["error_code"] = "archive_damaged"
        finally:
            if admission is not None:
                self._retire(admission)
        return response

    def _admit(self, request: dict, op: str) -> _Admission:
        """Run one unit of archive work through quota, gate and breaker.

        Returns the :class:`_Admission` ticket the ``finally`` arm of
        :meth:`handle` retires, or raises a structured
        :class:`~repro.parallel.admission.ServiceRejection` -- in which
        case every partially-acquired resource has been released.
        """
        client = str(request.get("client") or ANONYMOUS_CLIENT)
        priority = request.get("priority") or PRIORITY_INTERACTIVE
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r} (expected one of "
                f"{', '.join(PRIORITIES)})")
        with self._idle:
            if self._draining.is_set():
                self.rejected_draining += 1
                raise DrainingError(
                    "service is draining and no longer accepts work")
            token = self._next_token
            self._next_token += 1
            # Registered before the gate so a concurrent drain waits for
            # queued-but-not-yet-admitted work instead of racing past it.
            self._inflight[token] = (op, time.monotonic())
        quota_held = gate_held = False
        try:
            self.quotas.acquire(client)
            quota_held = True
            self.gate.admit(priority)
            gate_held = True
            breaker_key = None
            if op in _BREAKER_OPS:
                breaker_key = self.breakers.check(request.get("archive"))
        except BaseException:
            if gate_held:
                self.gate.release()
            if quota_held:
                self.quotas.release(client)
            self._retire_token(token)
            raise
        return _Admission(token=token, client=client, priority=priority,
                          breaker_key=breaker_key, started=time.monotonic())

    def _retire(self, admission: _Admission) -> None:
        self.gate.release(time.monotonic() - admission.started)
        self.quotas.release(admission.client)
        self._retire_token(admission.token)

    def _retire_token(self, token: int) -> None:
        with self._idle:
            self._inflight.pop(token, None)
            if not self._inflight:
                self._idle.notify_all()

    def _watch_requests(self) -> None:
        """Flag in-flight requests that outlive the request timeout.

        Termination of a wedged *guest* is the member deadline's job (the
        engines check it inside their fuel accounting); the watchdog is the
        audit trail on top -- it counts and reports requests that run past
        the timeout, so an operator can see a misbehaving workload even
        when each individual member stays within its deadline.
        """
        flagged: set[int] = set()
        while not self._stopping.wait(min(1.0, self.request_timeout / 4)):
            now = time.monotonic()
            with self._lock:
                live = set(self._inflight)
                flagged &= live
                for token, (op, started) in self._inflight.items():
                    if token in flagged:
                        continue
                    if now - started > self.request_timeout:
                        flagged.add(token)
                        self.watchdog_overruns += 1
                        print(f"vxserve watchdog: {op!r} request has run "
                              f"{now - started:.1f}s "
                              f"(timeout {self.request_timeout}s)",
                              file=sys.stderr, flush=True)

    def _request_options(self, request: dict) -> vxa.ReadOptions:
        changes = {field: request[field] for field in _OPTION_FIELDS
                   if field in request}
        if "reuse" in request and request["reuse"] is not None:
            changes["reuse"] = VmReusePolicy(request["reuse"])
        if request.get("fault_plan") is not None:
            changes["fault_plan"] = FaultPlan.from_dict(request["fault_plan"])
        if self.request_timeout is not None:
            # The watchdog's enforcement arm: every member decode of this
            # request gets a wall-clock deadline no laxer than the
            # service-wide request timeout.
            deadline = changes.get("member_deadline",
                                   self.options.member_deadline)
            changes["member_deadline"] = (self.request_timeout
                                          if deadline is None
                                          else min(deadline,
                                                   self.request_timeout))
        options = self.options
        return options.with_changes(**changes) if changes else options

    def _request_jobs(self, request: dict) -> int:
        jobs = int(request.get("jobs", self.jobs))
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        return jobs

    def _absorb(self, session_stats: SessionStats) -> None:
        with self._lock:
            self.stats.merge(session_stats)

    # -- operations ------------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return {"pong": True, "pid": os.getpid(),
                "uptime_seconds": time.monotonic() - self.started}

    def _op_health(self, request: dict) -> dict:
        """Liveness + load in one scrape: pool, gate, quotas, breakers.

        A control op on purpose -- it must answer within its timeout even
        when every execution slot is busy, because "is the service melting
        or merely loaded?" is exactly the question asked under overload.
        """
        now = time.monotonic()
        admission = self.gate.snapshot()
        with self._lock:
            inflight = dict(self._inflight)
        oldest = min((started for _, started in inflight.values()),
                     default=None)
        return {
            "ok": True,
            "accepting": not self._draining.is_set(),
            "draining": self._draining.is_set(),
            "stopping": self._stopping.is_set(),
            "uptime_seconds": now - self.started,
            "inflight": len(inflight),
            "oldest_request_seconds": (round(now - oldest, 4)
                                       if oldest is not None else 0.0),
            "queue_depth": admission["queued_now"],
            "admission": admission,
            "quotas": self.quotas.snapshot(),
            "breakers": self.breakers.snapshot(),
            "pool": {
                "jobs": self.jobs,
                "executor": self.pool.kind,
                "respawns": self.pool.respawns,
                "workers_alive": self.pool.alive_workers(),
            },
        }

    def _op_list(self, request: dict) -> dict:
        with vxa.open(request["archive"], self.options) as archive:
            members = []
            for name in archive.names():
                info = archive.info(name)
                members.append({
                    "name": info.name,
                    "stored_size": info.stored_size,
                    "original_size": info.original_size,
                    "codec": info.codec_name,
                    "precompressed": info.precompressed,
                    "has_decoder": info.has_decoder,
                })
        return {"archive": request["archive"], "members": members}

    def _op_extract(self, request: dict) -> dict:
        options = self._request_options(request)
        jobs = self._request_jobs(request)
        directory = pathlib.Path(request["dest"])
        start = time.perf_counter()
        with vxa.open(request["archive"], options) as archive:
            members = request.get("members")
            wanted = members if members is not None else archive.names()
            # Validate every target before any worker touches the disk, as
            # the serial facade does (zip-slip protection, single abort).
            directory.mkdir(parents=True, exist_ok=True)
            for name in wanted:
                vxa.safe_extract_path(directory, name)
            report = parallel_extract_into(
                archive, directory, wanted, jobs, pool=self.pool)
            stats = archive.session.stats
            self._absorb(stats)
            return {
                "archive": request["archive"],
                "records": [
                    {"name": record.name, "path": str(record.path),
                     "size": record.size, "decoded": record.decoded,
                     "used_vxa_decoder": record.used_vxa_decoder,
                     "codec": record.codec_name}
                    for record in report
                ],
                "failures": [failure.as_dict()
                             for failure in report.failures],
                "quarantined": report.quarantined,
                "stats": stats.as_dict(),
                "elapsed_seconds": time.perf_counter() - start,
            }

    def _op_check(self, request: dict) -> dict:
        options = self._request_options(request)
        jobs = self._request_jobs(request)
        reuse = request.get("reuse")
        start = time.perf_counter()
        with vxa.open(request["archive"], options) as archive:
            report = parallel_check(
                archive, jobs,
                reuse=VmReusePolicy(reuse) if reuse is not None else None,
                names=request.get("members"), pool=self.pool)
        self._absorb(SessionStats(decodes=report.checked, **report.counters()))
        return {
            "archive": request["archive"],
            "ok": report.ok,
            "checked": report.checked,
            "passed": report.passed,
            "failures": list(report.failures),
            **report.counters(),
            "elapsed_seconds": time.perf_counter() - start,
        }

    def _op_stats(self, request: dict) -> dict:
        """Point-in-time gauges plus monotonic ``counters`` for scraping.

        Everything under ``counters`` only ever increases for the life of
        the process, so an external scraper can treat the dict as a set of
        Prometheus-style counter series and derive rates by differencing.
        """
        admission = self.gate.snapshot()
        quotas = self.quotas.snapshot()
        breaker_totals = self.breakers.totals()
        with self._lock:
            requests = self.requests
            inflight = len(self._inflight)
            rejected_draining = self.rejected_draining
            oversized = self.oversized_requests
            overruns = self.watchdog_overruns
            session = self.stats.as_dict()
        counters = {
            "requests_total": requests,
            "admitted_total": admission["admitted_total"],
            "completed_total": admission["completed_total"],
            "queued_total": admission["queued_total"],
            "shed_overloaded_total": admission["shed_total"],
            "batch_evictions_total": admission["batch_evictions_total"],
            "quota_rejections_total": quotas["rejections_total"],
            "rejected_draining_total": rejected_draining,
            "oversized_requests_total": oversized,
            "watchdog_overruns_total": overruns,
            "pool_respawns_total": self.pool.respawns,
            **breaker_totals,
            **{f"session_{name}_total": value
               for name, value in session.items()},
        }
        return {
            "requests": requests,
            "jobs": self.jobs,
            "executor": self.pool.kind,
            "uptime_seconds": time.monotonic() - self.started,
            "inflight": inflight,
            "draining": self._draining.is_set(),
            "rejected_draining": rejected_draining,
            "watchdog_overruns": overruns,
            "pool_respawns": self.pool.respawns,
            "admission": admission,
            "quotas": quotas,
            "counters": counters,
            "session": session,
        }

    def _op_drain(self, request: dict) -> dict:
        """Stop accepting work, wait for in-flight requests, flush stats."""
        stats = self.drain(timeout=request.get("timeout"))
        return {"draining": True, **stats}

    def _op_shutdown(self, request: dict) -> dict:
        stats = self.drain(timeout=request.get("timeout"))
        self._stopping.set()
        return {"stopping": True, **stats}

    # -- lifecycle -------------------------------------------------------------

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    def drain(self, timeout: float | None = None) -> dict:
        """Refuse new archive work and wait for in-flight work to finish.

        Control ops (``ping``/``health``/``stats``/``drain``/``shutdown``)
        keep being served.  New archive work is refused with a structured
        ``draining`` error, never a dropped connection.  Returns the final
        stats snapshot -- the flush the caller observes before tearing
        anything down.  Idempotent; concurrent callers all wait on the same
        condition.
        """
        self._draining.set()
        with self._idle:
            self._idle.wait_for(lambda: not self._inflight, timeout=timeout)
            pending = len(self._inflight)
        snapshot = self._op_stats({})
        snapshot["drained"] = pending == 0
        return snapshot

    def close(self) -> None:
        """Graceful teardown: drain in-flight work, then stop the pool.

        The drain is bounded (a wedged in-flight request must not make
        shutdown hang forever); member deadlines terminate wedged guests
        well before the backstop when a request timeout is configured.
        """
        self.drain(timeout=60.0)
        self._stopping.set()
        self.pool.close()

    def serve_stream(self, instream, outstream) -> None:
        """Serve JSON-lines until EOF or a ``shutdown`` request.

        One request line may carry at most ``max_request_bytes``; a longer
        line is discarded in bounded chunks and answered with a structured
        ``request_too_large`` error, so a hostile peer cannot buffer a
        giant line into service memory.
        """
        readline = instream.readline
        limit = self.max_request_bytes
        while True:
            line = readline(limit + 1)
            if not line:
                break
            if isinstance(line, bytes):
                line = line.decode("utf-8", "replace")
            if len(line) > limit and not line.endswith("\n"):
                self._discard_line_tail(readline)
                with self._lock:
                    self.oversized_requests += 1
                error = RequestTooLargeError(
                    f"request line exceeds {limit} bytes")
                response = {"ok": False, "error": str(error),
                            "error_type": type(error).__name__,
                            "error_code": error.code}
            else:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as decode_error:
                    response = {"ok": False,
                                "error": f"bad JSON: {decode_error}",
                                "error_type": "JSONDecodeError",
                                "error_code": "bad_json"}
                else:
                    response = self.handle(request)
            outstream.write(json.dumps(response) + "\n")
            outstream.flush()
            if self.stopping:
                break

    def _discard_line_tail(self, readline) -> None:
        """Swallow the rest of an oversized line in bounded chunks."""
        while True:
            chunk = readline(self.max_request_bytes)
            if not chunk:
                return
            if isinstance(chunk, bytes):
                if chunk.endswith(b"\n"):
                    return
            elif chunk.endswith("\n"):
                return

    def serve_socket(self, socket_path) -> None:
        """Serve connections on a unix socket, one JSON-lines peer each.

        Connections are handled on daemon threads, so several clients can
        shard work onto the one shared pool concurrently -- the batch-server
        multiplexing the ROADMAP asks for.
        """
        import socketserver

        service = self
        socket_path = str(socket_path)
        if os.path.exists(socket_path):
            os.unlink(socket_path)

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                writer = io.TextIOWrapper(self.wfile, encoding="utf-8",
                                          write_through=True)
                service.serve_stream(self.rfile, writer)
                if service.stopping:
                    threading.Thread(target=self.server.shutdown,
                                     daemon=True).start()

        class Server(socketserver.ThreadingMixIn,
                     socketserver.UnixStreamServer):
            daemon_threads = True
            allow_reuse_address = True

        with Server(socket_path, Handler) as server:
            try:
                server.serve_forever(poll_interval=0.1)
            finally:
                if os.path.exists(socket_path):
                    os.unlink(socket_path)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vxserve",
        description="vxZIP batch extraction/verification service (JSON lines)",
    )
    parser.add_argument("--socket", help="serve on a unix socket path "
                                         "(default: stdin/stdout)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker pool size (default: CPU count)")
    parser.add_argument("--executor", default=EXECUTOR_AUTO,
                        choices=("auto", "process", "thread"),
                        help="worker pool flavour")
    parser.add_argument("--reuse", default=VmReusePolicy.REUSE_SAME_ATTRIBUTES.value,
                        choices=[policy.value for policy in VmReusePolicy],
                        help="default VM reuse policy (requests may override)")
    parser.add_argument("--code-cache-limit", type=int,
                        default=DEFAULT_CODE_CACHE_LIMIT,
                        help="LRU cap on translated fragments per decoder "
                             "image (0 disables the cap)")
    parser.add_argument("--request-timeout", type=float, default=None,
                        help="wall-clock seconds of guest work one request "
                             "may use; enforced per member decode via the "
                             "VM deadline and audited by a watchdog thread")
    parser.add_argument("--on-error", default=None,
                        choices=("abort", "skip", "quarantine"),
                        help="default per-member failure policy for "
                             "extract requests (requests may override)")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="concurrent archive-work requests before the "
                             "admission gate queues and sheds (default: "
                             "4 x jobs; 0 removes the bound)")
    parser.add_argument("--queue-depth", type=int,
                        default=DEFAULT_QUEUE_DEPTH,
                        help="requests that may briefly wait for a slot "
                             "before load is shed as 'overloaded'")
    parser.add_argument("--queue-timeout", type=float,
                        default=DEFAULT_QUEUE_TIMEOUT,
                        help="longest a queued request waits for a slot "
                             "before being shed (seconds)")
    parser.add_argument("--client-quota", type=int, default=None,
                        help="per-client in-flight request cap, keyed by "
                             "the request's 'client' id (default: none)")
    parser.add_argument("--breaker-threshold", type=int,
                        default=DEFAULT_BREAKER_THRESHOLD,
                        help="consecutive extract/check failures that open "
                             "an archive's circuit breaker (0 disables)")
    parser.add_argument("--breaker-reset", type=float,
                        default=DEFAULT_BREAKER_RESET,
                        help="seconds an open breaker waits before its "
                             "half-open probe")
    parser.add_argument("--max-request-bytes", type=int,
                        default=DEFAULT_MAX_REQUEST_BYTES,
                        help="cap on one JSON request line; longer lines "
                             "get a structured request_too_large error")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    options = vxa.ReadOptions(
        reuse=VmReusePolicy(args.reuse),
        code_cache_limit=args.code_cache_limit or None,
    )
    if args.on_error is not None:
        options = options.with_changes(on_error=args.on_error)
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if args.max_inflight is None:
        max_inflight: int | None = 4 * jobs
    elif args.max_inflight <= 0:
        max_inflight = None
    else:
        max_inflight = args.max_inflight
    client_quota = (args.client_quota
                    if args.client_quota and args.client_quota > 0 else None)
    service = BatchService(jobs=jobs, executor=args.executor,
                           options=options,
                           request_timeout=args.request_timeout,
                           max_inflight=max_inflight,
                           queue_depth=args.queue_depth,
                           queue_timeout=args.queue_timeout,
                           client_quota=client_quota,
                           breaker_threshold=args.breaker_threshold,
                           breaker_reset=args.breaker_reset,
                           max_request_bytes=args.max_request_bytes)

    def _graceful_exit(signum, frame):
        # SIGTERM: refuse new work immediately; the SystemExit unwinds to
        # the finally below, whose close() finishes in-flight requests and
        # flushes the final stats before the pool goes down.
        service.drain(timeout=0)
        raise SystemExit(0)

    previous = signal.signal(signal.SIGTERM, _graceful_exit)
    try:
        if args.socket:
            service.serve_socket(args.socket)
        else:
            service.serve_stream(sys.stdin, sys.stdout)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        snapshot = service.drain(timeout=60.0)
        print(json.dumps({"event": "drained", **snapshot}),
              file=sys.stderr, flush=True)
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
