"""Admission control for ``vxserve``: backpressure, quotas, circuit breakers.

PR 7 made one member's failure survivable; this module makes a *flood of
requests* survivable -- the same graceful-degradation discipline moved up to
the service boundary.  Three independent mechanisms compose in front of the
shared :class:`~repro.parallel.pool.WorkerPool`:

* :class:`AdmissionGate` -- a bounded concurrency gate.  At most
  ``max_inflight`` archive-work requests execute at once; up to
  ``queue_depth`` more wait briefly (``queue_timeout``) for a slot, and
  everything beyond that is *shed* with a structured
  :class:`OverloadedError` carrying a ``retry_after_seconds`` hint derived
  from the measured mean request duration and the current backlog.  Two
  request priorities exist: ``interactive`` requests are granted queued
  slots first, and under pressure (a full queue) an arriving interactive
  request evicts the newest queued ``batch`` waiter rather than being shed
  itself -- batch work yields, it is never wedged ahead of a person.

* :class:`ClientQuotas` -- a per-client in-flight cap keyed by the
  client-supplied ``client`` id, so one greedy client cannot occupy every
  slot of the gate.  Requests without an id share the ``"anonymous"``
  bucket.

* :class:`CircuitBreaker` (per archive, managed by
  :class:`CircuitBreakerBoard`) -- repeated request failures against one
  archive open its breaker; while open, requests for that archive are
  refused immediately with :class:`CircuitOpenError` (``retry_after_seconds``
  = remaining cool-down) instead of occupying pool workers; after
  ``reset_timeout`` a single half-open probe is let through, and its
  success closes the breaker again.  One hostile archive therefore cannot
  monopolise the pool that PR 7's quarantine protects per-member.

Every refusal is a :class:`ServiceRejection`: a structured error with a
stable wire ``code`` (the protocol's ``error_code`` field -- see
``docs/vxserve-protocol.md``) and an optional retry hint, never a dropped
connection.  Shed or rejected requests run no guest work at all, so every
*admitted* extraction remains byte-identical to a serial run -- extra
concurrency only counts if results stay consistent.

All classes take an injectable ``clock`` (defaulting to
:func:`time.monotonic`) so tests can drive breaker cool-downs and retry
hints deterministically.
"""

from __future__ import annotations

import threading
import time

from repro.errors import VxaError

PRIORITY_INTERACTIVE = "interactive"
PRIORITY_BATCH = "batch"
PRIORITIES = (PRIORITY_INTERACTIVE, PRIORITY_BATCH)

_RANK = {PRIORITY_INTERACTIVE: 0, PRIORITY_BATCH: 1}

#: Clients that send no ``client`` id share one quota bucket.
ANONYMOUS_CLIENT = "anonymous"

#: Seed for the mean-request-duration estimate before any request finished;
#: only shapes the very first ``retry_after_seconds`` hints.
_DEFAULT_DURATION = 0.1

#: EWMA weight for the mean request duration feeding retry hints.
_DURATION_ALPHA = 0.2


# --------------------------------------------------------------------------
# Structured refusals (the service's error taxonomy)
# --------------------------------------------------------------------------

class ServiceRejection(VxaError):
    """The service refused a request without attempting any archive work.

    ``code`` is the stable wire identifier (the JSON response's
    ``error_code``); ``retryable`` says whether the same request may
    succeed later against the same server (the client's retry loop keys
    off the wire code, not this class).  ``retry_after_seconds`` is the
    server's backoff hint, when it has one.
    """

    code = "rejected"
    retryable = True

    def __init__(self, message: str, *,
                 retry_after_seconds: float | None = None):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class OverloadedError(ServiceRejection):
    """Admission gate full and the brief wait queue is exhausted."""

    code = "overloaded"


class QuotaExceededError(ServiceRejection):
    """The client already has its quota of requests in flight."""

    code = "quota_exceeded"


class CircuitOpenError(ServiceRejection):
    """The target archive's circuit breaker is open (or mid-probe)."""

    code = "circuit_open"


class DrainingError(ServiceRejection):
    """The service is draining and accepts no new archive work."""

    code = "draining"
    retryable = False


class RequestTooLargeError(ServiceRejection):
    """A request line exceeded the transport's size cap."""

    code = "request_too_large"
    retryable = False


# --------------------------------------------------------------------------
# Admission gate
# --------------------------------------------------------------------------

class _Waiter:
    """One queued request waiting for an execution slot."""

    WAITING = "waiting"
    ADMITTED = "admitted"
    SHED = "shed"

    __slots__ = ("rank", "seq", "state")

    def __init__(self, rank: int, seq: int):
        self.rank = rank
        self.seq = seq
        self.state = _Waiter.WAITING


class AdmissionGate:
    """Bounded concurrency with a brief priority queue, then load shedding.

    Args:
        max_inflight: concurrent execution slots (``None`` = unbounded --
            the gate still counts, never blocks or sheds).
        queue_depth: how many requests may wait for a slot; ``0`` sheds
            immediately once the slots are full.
        queue_timeout: longest a queued request waits before being shed.
        clock: monotonic time source (injectable for tests).

    Thread-safe; every public method may be called from any handler thread.
    """

    def __init__(self, max_inflight: int | None = None, queue_depth: int = 0,
                 queue_timeout: float = 0.25, *, clock=time.monotonic):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1 (or None)")
        if queue_depth < 0:
            raise ValueError("queue_depth must be non-negative")
        if queue_timeout < 0:
            raise ValueError("queue_timeout must be non-negative")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.queue_timeout = queue_timeout
        self._clock = clock
        self._condition = threading.Condition()
        self._inflight = 0
        self._waiters: list[_Waiter] = []
        self._seq = 0
        self._mean_duration = _DEFAULT_DURATION
        # Monotonic counters (scrape-friendly: they only ever increase).
        self.admitted = 0
        self.completed = 0
        self.queued = 0
        self.shed_total = 0
        self.batch_evictions = 0
        self.peak_inflight = 0
        self.peak_queue = 0

    # -- internals (condition held) ----------------------------------------

    def _take_slot(self) -> None:
        self._inflight += 1
        self.admitted += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)

    def _blocked_by_waiter(self, rank: int) -> bool:
        """Queue fairness: equal-or-higher-priority waiters go first."""
        return any(waiter.rank <= rank for waiter in self._waiters)

    def _grant(self) -> None:
        """Promote queued waiters into freed slots, best priority first."""
        promoted = False
        while (self._waiters and self.max_inflight is not None
               and self._inflight < self.max_inflight):
            waiter = self._waiters.pop(0)
            waiter.state = _Waiter.ADMITTED
            self._take_slot()
            promoted = True
        if promoted:
            self._condition.notify_all()

    def _shed(self, reason: str) -> OverloadedError:
        self.shed_total += 1
        return OverloadedError(
            reason, retry_after_seconds=self.retry_hint())

    # -- public API --------------------------------------------------------

    def retry_hint(self) -> float:
        """Suggested client backoff: backlog over capacity, in mean-request
        units.  Called with or without the condition held (reads only)."""
        backlog = self._inflight + len(self._waiters) + 1
        capacity = self.max_inflight or max(1, self._inflight)
        return round(max(0.05, self._mean_duration * backlog / capacity), 3)

    def admit(self, priority: str = PRIORITY_INTERACTIVE) -> None:
        """Take an execution slot, queueing briefly; sheds when saturated.

        Raises :class:`OverloadedError` (with a retry hint) when the gate
        and its queue are full, when the queue wait times out, or when this
        is a ``batch`` request evicted by an arriving ``interactive`` one.
        """
        try:
            rank = _RANK[priority]
        except KeyError:
            raise ValueError(
                f"unknown priority {priority!r} (expected one of "
                f"{', '.join(PRIORITIES)})") from None
        with self._condition:
            if self.max_inflight is None:
                self._take_slot()
                return
            if (self._inflight < self.max_inflight
                    and not self._blocked_by_waiter(rank)):
                self._take_slot()
                return
            if len(self._waiters) >= self.queue_depth:
                if rank == _RANK[PRIORITY_BATCH]:
                    raise self._shed(
                        f"overloaded: {self._inflight} in flight, "
                        f"{len(self._waiters)} queued (batch sheds first)")
                # Interactive under pressure: the newest queued batch
                # request yields its queue slot rather than this one shed.
                victim = next((waiter for waiter in reversed(self._waiters)
                               if waiter.rank == _RANK[PRIORITY_BATCH]), None)
                if victim is None:
                    raise self._shed(
                        f"overloaded: {self._inflight} in flight, queue of "
                        f"{self.queue_depth} full")
                self._waiters.remove(victim)
                victim.state = _Waiter.SHED
                self.batch_evictions += 1
                self._condition.notify_all()
            waiter = _Waiter(rank, self._seq)
            self._seq += 1
            index = next((i for i, other in enumerate(self._waiters)
                          if (rank, waiter.seq) < (other.rank, other.seq)),
                         len(self._waiters))
            self._waiters.insert(index, waiter)
            self.queued += 1
            self.peak_queue = max(self.peak_queue, len(self._waiters))
            deadline = self._clock() + self.queue_timeout
            self._grant()
            while waiter.state == _Waiter.WAITING:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._condition.wait(remaining)
            if waiter.state == _Waiter.ADMITTED:
                return
            if waiter in self._waiters:
                self._waiters.remove(waiter)
            if waiter.state == _Waiter.SHED:
                raise self._shed(
                    "overloaded: batch request yielded its queue slot to "
                    "interactive work")
            raise self._shed(
                f"overloaded: no execution slot freed within "
                f"{self.queue_timeout}s")

    def release(self, duration: float | None = None) -> None:
        """Return a slot; ``duration`` feeds the retry-hint estimate."""
        with self._condition:
            self._inflight -= 1
            self.completed += 1
            if duration is not None and duration >= 0:
                self._mean_duration += _DURATION_ALPHA * (
                    duration - self._mean_duration)
            self._grant()
            self._condition.notify_all()

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def snapshot(self) -> dict:
        with self._condition:
            return {
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "queue_timeout": self.queue_timeout,
                "inflight": self._inflight,
                "queued_now": len(self._waiters),
                "mean_request_seconds": round(self._mean_duration, 4),
                "admitted_total": self.admitted,
                "completed_total": self.completed,
                "queued_total": self.queued,
                "shed_total": self.shed_total,
                "batch_evictions_total": self.batch_evictions,
                "peak_inflight": self.peak_inflight,
                "peak_queue": self.peak_queue,
            }


# --------------------------------------------------------------------------
# Per-client quotas
# --------------------------------------------------------------------------

class ClientQuotas:
    """Per-client in-flight request cap, keyed by the ``client`` id.

    ``per_client=None`` disables enforcement but keeps the per-client
    gauge, so ``stats``/``health`` can still show who is using the pool.
    """

    def __init__(self, per_client: int | None = None):
        if per_client is not None and per_client < 1:
            raise ValueError("per_client must be at least 1 (or None)")
        self.per_client = per_client
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}
        self.rejections = 0

    def acquire(self, client: str) -> None:
        with self._lock:
            count = self._inflight.get(client, 0)
            if self.per_client is not None and count >= self.per_client:
                self.rejections += 1
                raise QuotaExceededError(
                    f"client {client!r} already has {count} request(s) in "
                    f"flight (quota {self.per_client})",
                    retry_after_seconds=0.1)
            self._inflight[client] = count + 1

    def release(self, client: str) -> None:
        with self._lock:
            count = self._inflight.get(client, 0) - 1
            if count > 0:
                self._inflight[client] = count
            else:
                self._inflight.pop(client, None)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "per_client": self.per_client,
                "inflight_by_client": dict(self._inflight),
                "rejections_total": self.rejections,
            }


# --------------------------------------------------------------------------
# Circuit breakers
# --------------------------------------------------------------------------

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure breaker for one archive: closed -> open -> half-open -> closed.

    Not itself thread-safe -- :class:`CircuitBreakerBoard` serialises all
    access under its lock.  ``threshold`` consecutive failures trip it;
    after ``reset_timeout`` seconds one probe request is admitted, and its
    outcome decides between closing and re-opening.
    """

    def __init__(self, threshold: int = 5, reset_timeout: float = 30.0, *,
                 clock=time.monotonic):
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self.state = STATE_CLOSED
        self.failures = 0
        self.trips = 0
        self.rejections = 0
        self._opened_at: float | None = None
        self._probe_inflight = False

    def check(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` when open.

        A successful return while half-open *claims the probe slot*: the
        caller must follow up with :meth:`record_success` or
        :meth:`record_failure`.
        """
        if self.state == STATE_OPEN:
            elapsed = self._clock() - self._opened_at
            if elapsed < self.reset_timeout:
                self.rejections += 1
                raise CircuitOpenError(
                    f"circuit open after {self.failures} consecutive "
                    f"failure(s); retry when the cool-down ends",
                    retry_after_seconds=round(self.reset_timeout - elapsed,
                                              3))
            self.state = STATE_HALF_OPEN
            self._probe_inflight = False
        if self.state == STATE_HALF_OPEN:
            if self._probe_inflight:
                self.rejections += 1
                raise CircuitOpenError(
                    "circuit half-open with a probe already in flight",
                    retry_after_seconds=0.1)
            self._probe_inflight = True

    def record_success(self) -> None:
        self.state = STATE_CLOSED
        self.failures = 0
        self._opened_at = None
        self._probe_inflight = False

    def record_failure(self) -> None:
        if self.state == STATE_HALF_OPEN:
            self._probe_inflight = False
            self._trip()
            return
        self.failures += 1
        if self.failures >= self.threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = STATE_OPEN
        self._opened_at = self._clock()
        self.trips += 1

    def snapshot(self) -> dict:
        entry = {
            "state": self.state,
            "failures": self.failures,
            "trips_total": self.trips,
            "rejections_total": self.rejections,
        }
        if self.state == STATE_OPEN and self._opened_at is not None:
            remaining = self.reset_timeout - (self._clock() - self._opened_at)
            entry["retry_after_seconds"] = round(max(0.0, remaining), 3)
        return entry


class CircuitBreakerBoard:
    """All per-archive breakers, keyed by the requested archive path.

    ``threshold=0`` (or ``None``) disables breakers entirely -- every
    check passes and nothing is recorded.  Thread-safe.
    """

    def __init__(self, threshold: int | None = 5,
                 reset_timeout: float = 30.0, *, clock=time.monotonic):
        self.threshold = threshold or 0
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def check(self, archive: str | None) -> str | None:
        """Gate a request against ``archive``; returns the breaker key the
        caller must later :meth:`record` an outcome for (``None`` when
        breakers are disabled or the request names no archive)."""
        if not self.enabled or archive is None:
            return None
        key = str(archive)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    self.threshold, self.reset_timeout, clock=self._clock)
            breaker.check()
        return key

    def record(self, key: str | None, *, ok: bool) -> None:
        if key is None or not self.enabled:
            return
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                return
            if ok:
                breaker.record_success()
            else:
                breaker.record_failure()

    def snapshot(self) -> dict:
        with self._lock:
            return {key: breaker.snapshot()
                    for key, breaker in self._breakers.items()}

    def totals(self) -> dict:
        with self._lock:
            return {
                "breaker_trips_total": sum(
                    breaker.trips for breaker in self._breakers.values()),
                "breaker_rejections_total": sum(
                    breaker.rejections
                    for breaker in self._breakers.values()),
                "breakers_open": sum(
                    1 for breaker in self._breakers.values()
                    if breaker.state != STATE_CLOSED),
            }


__all__ = [
    "ANONYMOUS_CLIENT",
    "AdmissionGate",
    "CircuitBreaker",
    "CircuitBreakerBoard",
    "CircuitOpenError",
    "ClientQuotas",
    "DrainingError",
    "OverloadedError",
    "PRIORITIES",
    "PRIORITY_BATCH",
    "PRIORITY_INTERACTIVE",
    "QuotaExceededError",
    "RequestTooLargeError",
    "ServiceRejection",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
]
