"""Worker-side bootstrap: long-lived archives and decoder sessions.

A worker (one OS process of the ``ProcessPoolExecutor``, or one thread of
the in-process pool) keeps a small LRU of open :class:`~repro.api.Archive`
objects keyed by archive identity and options.  Each cached archive owns its
:class:`~repro.api.session.DecoderSession`, which in turn owns one
:class:`~repro.vm.code_cache.CodeCache` per decoder image -- so a decoder's
superblocks are translated once per worker and reused for every member the
scheduler routed there, and (under ``vxserve``) for every later request that
touches the same archive.  Across *different* archives the process-wide
compiled-source memo in :mod:`repro.vm.translator` still short-circuits
recompilation of identical decoder images.

State lives in ``threading.local``: a process-pool worker runs tasks on its
main thread, a thread-pool worker is itself a thread, so the same bootstrap
serves both and no state is ever shared between workers.

The shard runners return plain dicts of primitives -- they must cross a
pickle boundary in process mode and a JSON boundary in ``vxserve``.
"""

from __future__ import annotations

import contextlib
import hashlib
import multiprocessing
import os
import threading
from collections import OrderedDict

#: Open archives kept per worker; beyond this the least-recently-used is
#: closed so a long-running service touching many workers stays bounded.
MAX_CACHED_ARCHIVES = 8

_STATE = threading.local()


def in_worker() -> bool:
    """Is the current thread executing a pool shard right now?

    The flag is set for the duration of :func:`run_extract_shard` /
    :func:`run_check_shard` only.  The containment layer consults it to
    decide whether a simulated worker kill should crash the shard (so pool
    crash recovery handles it) or be recorded as one contained member
    failure (the serial path).
    """
    return getattr(_STATE, "in_worker", False)


def in_process_worker() -> bool:
    """Is this code running in a child process of a process pool?

    Distinguishes the two worker flavours for the kill-worker fault: a
    process worker can die for real (``os._exit``), a thread worker shares
    the caller's process and must simulate the death by raising instead.
    """
    return multiprocessing.current_process().name != "MainProcess"


@contextlib.contextmanager
def _worker_scope():
    """Mark the current thread as running a pool shard."""
    previous = getattr(_STATE, "in_worker", False)
    _STATE.in_worker = True
    try:
        yield
    finally:
        _STATE.in_worker = previous


def _archives() -> OrderedDict:
    cache = getattr(_STATE, "archives", None)
    if cache is None:
        cache = OrderedDict()
        _STATE.archives = cache
    return cache


def _source_key(source: dict):
    if "path" in source:
        # Key on file identity, not just the name: a long-lived pool
        # (vxserve) must not serve a cached Archive whose ZipReader parsed
        # a file that has since been replaced at the same path.
        path = str(source["path"])
        try:
            status = os.stat(path)
            identity = (status.st_ino, status.st_size, status.st_mtime_ns)
        except OSError:
            identity = None
        return ("path", path, identity)
    return ("data", hashlib.sha256(source["data"]).hexdigest())


def _options_key(options):
    # ReadOptions is frozen but not reliably hashable (a custom
    # ExecutionLimits or registry is a mutable object), so key on a
    # primitive projection.  The registry is fingerprinted by its codec
    # names, never object identity: process-mode payloads unpickle a fresh
    # registry object per task, and an identity key would miss the cache
    # (reopening the archive and cold-starting the session) every time.
    registry = options.registry
    registry_key = (tuple(sorted(registry.names()))
                    if registry is not None else None)
    return (options.mode, options.force_decode, options.engine,
            repr(options.limits), options.reuse.value, options.chunk_size,
            options.superblock_limit, options.chain_fragments,
            options.code_cache_limit, options.verify_images,
            options.analysis_elision, options.on_error, options.retries,
            options.member_deadline, options.on_damage,
            options.durable_output, repr(options.fault_plan), registry_key)


def _acquire_archive(source: dict, options):
    """The worker's cached archive for ``(source, options)``, opened on miss."""
    import repro.api as vxa

    source_key = _source_key(source)
    key = (source_key, _options_key(options))
    cache = _archives()
    archive = cache.get(key)
    if archive is not None:
        cache.move_to_end(key)
        return archive
    if "path" in source:
        # The file at this path was replaced (identity changed): close any
        # archives parsed from its previous incarnation right away.
        stale = [existing for existing in cache
                 if existing[0][:2] == source_key[:2] and existing[0] != source_key]
        for existing in stale:
            cache.pop(existing).close()
    target = source["path"] if "path" in source else source["data"]
    # Workers always run the serial path over their shard; the scheduler
    # already decided the parallelism.
    archive = vxa.open(target, options.with_changes(jobs=1))
    cache[key] = archive
    while len(cache) > MAX_CACHED_ARCHIVES:
        _, evicted = cache.popitem(last=False)
        evicted.close()
    return archive


def _evict_archive(source: dict, options) -> None:
    """Drop this worker's cached archive for ``(source, options)``, if any.

    Crash retries run the suspect member against a pristine VM *and* a
    pristine :class:`~repro.api.session.DecoderSession`: evicting the cached
    archive forces :func:`_acquire_archive` to reopen it from scratch, so no
    session state from the crashed attempt can influence the retry.
    """
    key = (_source_key(source), _options_key(options))
    archive = _archives().pop(key, None)
    if archive is not None:
        archive.close()


def shutdown_worker() -> None:
    """Close this worker's cached archives.

    Thread-pool teardown (:meth:`WorkerPool.close`) runs this on every
    worker thread so no file handles outlive the pool; process workers
    release their handles when the process exits.
    """
    cache = getattr(_STATE, "archives", None)
    if cache:
        for archive in cache.values():
            archive.close()
        cache.clear()


def _stats_delta(before: dict, after: dict) -> dict:
    return {key: after[key] - before.get(key, 0) for key in after}


def run_extract_shard(payload: dict) -> dict:
    """Extract one shard's members; returns records plus the stats delta.

    Payload keys: ``source`` (``{"path": ...}`` or ``{"data": ...}``),
    ``options`` (:class:`~repro.api.options.ReadOptions`), ``names`` (the
    shard's members, already in the scheduler's cache-friendly order),
    ``directory``, ``mode``, ``force_decode``; plus the containment
    layer's ``worker`` (shard worker id stamped onto failure records) and
    ``fresh`` (crash retry: reopen the archive so the member runs against
    a pristine VM and session).
    """
    with _worker_scope():
        if payload.get("fresh"):
            _evict_archive(payload["source"], payload["options"])
        archive = _acquire_archive(payload["source"], payload["options"])
        before = archive.session.stats.as_dict()
        report = archive.extract_into(
            payload["directory"],
            names=payload["names"],
            mode=payload.get("mode"),
            force_decode=payload.get("force_decode"),
            jobs=1,
        )
        after = archive.session.stats.as_dict()
    worker = payload.get("worker")
    failures = []
    for failure in report.failures:
        record = failure.as_dict()
        record["worker"] = worker
        failures.append(record)
    return {
        "records": [
            {
                "name": record.name,
                "path": str(record.path),
                "size": record.size,
                "used_vxa_decoder": record.used_vxa_decoder,
                "decoded": record.decoded,
                "codec_name": record.codec_name,
            }
            for record in report
        ],
        "failures": failures,
        "stats": _stats_delta(before, after),
    }


def run_check_shard(payload: dict) -> dict:
    """Check one shard's members; returns verdicts plus session counters.

    The worker's :meth:`Archive.check` runs over the shard's names in the
    scheduler's order with a dedicated session, exactly as the serial check
    does for the whole archive, so per-member verdicts cannot differ.
    """
    from repro.core.policy import VmReusePolicy

    with _worker_scope():
        if payload.get("fresh"):
            _evict_archive(payload["source"], payload["options"])
        archive = _acquire_archive(payload["source"], payload["options"])
        reuse = payload.get("reuse")
        report = archive.check(
            reuse=VmReusePolicy(reuse) if reuse is not None else None,
            names=payload["names"],
            jobs=1,
        )
    return {
        "checked": report.checked,
        "passed": report.passed,
        "failures": list(report.failures),
        **report.counters(),
    }
