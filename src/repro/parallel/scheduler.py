"""Cost-aware, cache-affine sharding of archive members across workers.

Two facts drive the design:

* **Decoder affinity.**  Translating a decoder's superblocks is the dominant
  fixed cost of the VM path (PR 2), and translations live in a per-decoder
  :class:`~repro.vm.code_cache.CodeCache` owned by a worker's session.  If
  members of one decoder image were sprayed round-robin across workers,
  every worker would pay the full translation of every decoder.  Members of
  one decoder image therefore stay together -- up to the point where a
  group alone exceeds a worker's fair share of the total cost.  Such a
  group is split into contiguous chunks (so a single-decoder archive, the
  most common shape, still fans out across all workers): each extra worker
  then pays the decoder's translation once, a small fixed cost against the
  recovered parallelism.

* **Cost balance.**  Decode time scales with input size, so the stored
  (compressed) size is the per-member cost estimate, and placement units
  are packed with the classic LPT (longest-processing-time-first) greedy
  rule: heaviest unit onto the least-loaded worker.  Members that never
  touch a VM (plain ZIP data, stored redec bytes, native codecs) have no
  affinity and are sprinkled individually to even out the remainder.

Within one worker the members of each decoder group are ordered by
protection domain first (then archive order), so a ``REUSE_SAME_ATTRIBUTES``
session re-initialises the sandbox once per domain instead of once per
attribute flip.  This is pure *scheduling*: the policy itself is still
applied decode-by-decode inside the worker's session, and member outputs are
position-independent (each decode is checksummed against the member's
recorded CRC), so results are byte-identical to the serial path.

Everything here is deterministic: ties break on archive order, never on
hashing or timing, so the same archive and ``jobs`` always produce the same
shards (and the determinism tests can rely on it).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Shard:
    """One worker's slice of the archive: ordered members plus bookkeeping."""

    worker: int
    items: list = field(default_factory=list)
    cost: int = 0

    @property
    def names(self) -> list[str]:
        return [item.name for item in self.items]

    def decoder_images(self) -> set:
        return {item.decoder_offset for item in self.items
                if item.decoder_offset is not None}


class Scheduler:
    """Plans how ``jobs`` workers split a list of member extractions.

    The input items are :class:`~repro.api.archive.MemberPlan`-shaped
    objects (``index``, ``name``, ``decoder_offset``, ``cost``, ``domain``);
    the scheduler itself is independent of the archive facade so it can be
    unit-tested on synthetic plans.
    """

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs

    def plan(self, items) -> list[Shard]:
        """Shard ``items`` across up to ``jobs`` workers.

        Returns only non-empty shards, ordered by worker id.  With one job
        (or one item) a single shard preserving archive order is returned,
        which the engine uses as its serial-fallback signal.
        """
        items = list(items)
        if not items:
            return []
        jobs = min(self.jobs, len(items))
        total = sum(item.cost for item in items)
        if jobs == 1:
            return [Shard(worker=0, items=items, cost=total)]

        # Atomic placement units: one per decoder image (cache affinity),
        # split into chunks when a group alone tops a worker's fair share;
        # VM-free members are individually placeable filler.
        grouped: dict = {}
        filler = []
        for item in items:
            if item.decoder_offset is None:
                filler.append(item)
            else:
                grouped.setdefault(item.decoder_offset, []).append(item)
        share = max(1, -(-total // jobs))       # ceil(total / jobs)
        units = []
        for group in grouped.values():
            units.extend(_split_group(group, share, jobs))
        units.extend([item] for item in filler)
        # LPT: heaviest unit first onto the least-loaded worker; every tie
        # breaks on earliest archive position for determinism.
        units.sort(key=lambda unit: (-sum(item.cost for item in unit),
                                     unit[0].index))
        shards = [Shard(worker=index) for index in range(jobs)]
        for unit in units:
            target = min(shards, key=lambda shard: (shard.cost, shard.worker))
            target.items.extend(unit)
            target.cost += sum(item.cost for item in unit)
        for shard in shards:
            shard.items.sort(key=_worker_order)
        return [shard for shard in shards if shard.items]


def _split_group(group: list, share: int, jobs: int) -> list[list]:
    """Split one decoder group into at most ``jobs`` cost-balanced chunks.

    A group at or below the fair share stays whole (full cache affinity).
    Bigger groups are sliced contiguously in domain order, so each chunk
    keeps its protection domains clustered for the reuse policy.
    """
    group_cost = sum(item.cost for item in group)
    pieces = min(len(group), jobs, -(-group_cost // share))
    if pieces <= 1:
        return [group]
    ordered = sorted(group, key=lambda item: (item.domain, item.index))
    target = group_cost / pieces
    chunks: list[list] = []
    chunk: list = []
    accumulated = 0
    for item in ordered:
        chunk.append(item)
        accumulated += item.cost
        if accumulated >= target * (len(chunks) + 1) and len(chunks) < pieces - 1:
            chunks.append(chunk)
            chunk = []
    if chunk:
        chunks.append(chunk)
    return chunks


def _worker_order(item):
    """Execution order inside one worker.

    Decoder groups stay contiguous (ordered by the decoder offset -- any
    stable key works) and are processed domain-by-domain so attribute-gated
    VM reuse survives as long as the policy allows; archive order breaks
    all remaining ties.
    """
    if item.decoder_offset is None:
        # VM-free members run last, in archive order: they are cheap IO and
        # interleave with nothing.
        return (1, 0, (), item.index)
    return (0, item.decoder_offset, item.domain, item.index)
