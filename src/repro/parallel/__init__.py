"""``repro.parallel`` -- the sharded multi-worker extraction engine.

The paper's core observation makes archive reading embarrassingly parallel:
every member carries (a reference to) its own sandboxed decoder, so members
are independent decode jobs with *no* shared mutable state beyond the
archive file itself.  This package exploits that:

* :class:`~repro.parallel.scheduler.Scheduler` groups an archive's members
  by decoder image and cost estimate and shards them across ``N`` workers,
  so each worker's :class:`~repro.api.session.DecoderSession` keeps one warm
  code cache per decoder image (the PR-2 ``CodeCache``) instead of all
  workers cold-starting every decoder,
* :class:`~repro.parallel.pool.WorkerPool` runs the shards on a
  ``ProcessPoolExecutor`` (true multi-core scaling) or an in-process thread
  pool (cheap startup for small archives and tests),
* :mod:`~repro.parallel.worker` is the worker-side bootstrap: each worker
  owns long-lived archives and decoder sessions, reused across shards and
  -- under ``vxserve`` -- across requests, so translations are paid once
  per worker,
* :mod:`~repro.parallel.service` is ``vxserve``: a long-running batch
  service (JSON-lines over stdio or a unix socket) multiplexing
  extract/check requests for many archives onto one shared worker pool,
* :mod:`~repro.parallel.admission` keeps ``vxserve`` overload-safe: a
  bounded admission gate with brief queueing and structured load shedding,
  per-client quotas, interactive/batch priorities, and per-archive circuit
  breakers (protocol spec: ``docs/vxserve-protocol.md``; the matching
  retrying client is :mod:`repro.client` / the ``vxquery`` script).

The facade surfaces all of this as ``Archive.extract_into(..., jobs=N)``,
``Archive.check(jobs=N)`` and ``ReadOptions.jobs`` -- output bytes and check
verdicts are *identical* to the serial path, because each worker runs the
serial code over its shard and the §2.4 ``VmReusePolicy`` /
``SecurityAttributes.same_domain`` decisions are taken per worker session
exactly as a serial session takes them.
"""

from repro.parallel.admission import (
    AdmissionGate,
    CircuitBreaker,
    CircuitBreakerBoard,
    ClientQuotas,
    ServiceRejection,
)
from repro.parallel.engine import parallel_check, parallel_extract_into
from repro.parallel.pool import WorkerPool, resolve_executor
from repro.parallel.scheduler import Scheduler, Shard

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "CircuitBreakerBoard",
    "ClientQuotas",
    "Scheduler",
    "ServiceRejection",
    "Shard",
    "WorkerPool",
    "resolve_executor",
    "parallel_extract_into",
    "parallel_check",
]
