"""Orchestration: plan, shard, dispatch, recover, and merge for parallel reads.

The facade (:meth:`Archive.extract_into` / :meth:`Archive.check` with
``jobs > 1``) calls in here.  The flow is always the same four steps:

1. ask the archive for its :class:`~repro.api.archive.MemberPlan`s,
2. shard them with the cache-affine :class:`~repro.parallel.scheduler.Scheduler`,
3. run the shards on a :class:`~repro.parallel.pool.WorkerPool` (an
   ephemeral one for facade calls; ``vxserve`` passes its own long-lived
   pool so worker caches stay hot across requests),
4. merge results deterministically: extraction records return in the
   caller's requested order, check failures in archive order, and every
   worker session's counters are summed.

Output equality with the serial path is structural, not incidental: each
worker executes the *serial* extraction/check code over its shard, and every
decode is verified against the member's recorded CRC before anything is
surfaced.

This module also owns worker crash recovery.  A shard whose worker died
(``BrokenProcessPool`` in process mode, a simulated
:class:`~repro.errors.WorkerCrashed` in thread mode) loses its results
wholesale; under a salvage policy its members are rescheduled one at a
time against a respawned pool -- extraction is idempotent (each member
streams through a temp-and-rename), so re-running members the crashed
shard had already finished is safe.  Each reschedule counts against the
member's ``ReadOptions.retries`` budget and runs with a pristine VM and
session (``fresh`` payload flag); a member that keeps killing workers is
quarantined instead of retried forever.  Re-running culprit and
collateral members individually is also how the culprit is *identified*:
only it crashes again.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import tempfile

from repro.api.session import SessionStats
from repro.core.archive_reader import IntegrityReport
from repro.parallel.pool import WorkerPool
from repro.parallel.scheduler import Scheduler
from repro.parallel.worker import run_check_shard, run_extract_shard


@contextlib.contextmanager
def _shippable_source(archive):
    """The archive's worker source, spooled to a temp file if data-backed.

    Every shard payload references the same source, and process-mode
    payloads are pickled independently -- shipping a big archive's raw
    bytes once per shard would copy it ``jobs`` times over the IPC pipe.
    A temp file is written once and passed by path instead; workers that
    still hold it open when it is unlinked keep a valid handle (POSIX).
    """
    source = archive.worker_source()
    if "path" in source:
        yield source
        return
    handle, spooled = tempfile.mkstemp(prefix="vxa-archive-", suffix=".zip")
    try:
        with os.fdopen(handle, "wb") as sink:
            sink.write(source["data"])
        yield {"path": spooled}
    finally:
        os.unlink(spooled)


@contextlib.contextmanager
def _pool_for(archive, shards, payloads, jobs, pool):
    """The worker pool to run on: the caller's, or an ephemeral one."""
    if pool is not None:
        yield pool
        return
    total_cost = sum(shard.cost for shard in shards)
    with WorkerPool(min(jobs, len(shards)), archive.options.executor,
                    total_cost=total_cost, payload=payloads[0]) as ephemeral:
        yield ephemeral


def parallel_extract_into(archive, directory, names, jobs, *,
                          mode=None, force_decode=None, pool=None):
    """Sharded :meth:`Archive.extract_into`; see that method for semantics."""
    from repro.api.archive import (ExtractionRecord, ExtractionReport,
                                   MemberFailure)
    from repro.api.options import ON_ERROR_ABORT, ON_ERROR_QUARANTINE

    options = archive.options
    plan = archive.extraction_plan(names, mode=mode, force_decode=force_decode)
    shards = Scheduler(jobs).plan(plan)
    if len(shards) <= 1:
        return archive.extract_into(directory, names, mode=mode,
                                    force_decode=force_decode, jobs=1)
    by_name: dict[str, ExtractionRecord] = {}
    failures: list[MemberFailure] = []
    abort = options.on_error == ON_ERROR_ABORT

    def absorb(result):
        archive.session.stats.merge(SessionStats.from_dict(result["stats"]))
        for record in result["records"]:
            by_name[record["name"]] = ExtractionRecord(
                name=record["name"],
                path=pathlib.Path(record["path"]),
                size=record["size"],
                used_vxa_decoder=record["used_vxa_decoder"],
                decoded=record["decoded"],
                codec_name=record["codec_name"],
            )
        for failure in result["failures"]:
            failures.append(MemberFailure.from_dict(failure))

    with _shippable_source(archive) as source:
        base = {
            "source": source,
            "options": options,
            "directory": str(directory),
            "mode": mode,
            "force_decode": force_decode,
        }
        payloads = [dict(base, names=shard.names, worker=shard.worker)
                    for shard in shards]
        with _pool_for(archive, shards, payloads, jobs, pool) as active:
            attempts: dict[str, int] = {}
            retry: list[str] = []
            for outcome in active.run_all(run_extract_shard, payloads):
                if outcome.crashed and not abort:
                    # The whole shard's results are lost; schedule every
                    # member for an individual re-run (idempotent) and
                    # charge each one attempt -- the culprit is whichever
                    # member crashes again when run alone.
                    for name in outcome.payload["names"]:
                        attempts[name] = attempts.get(name, 0) + 1
                        retry.append(name)
                elif outcome.error is not None:
                    raise outcome.error
                else:
                    absorb(outcome.result)

            while retry:
                rerun = []
                for name in retry:
                    if attempts[name] > options.retries:
                        failures.append(MemberFailure(
                            name=name,
                            error_type="WorkerCrashed",
                            message=(f"member killed its worker "
                                     f"{attempts[name]} time(s); "
                                     f"retry budget ({options.retries}) "
                                     f"exhausted"),
                            attempts=attempts[name],
                            quarantined=(options.on_error
                                         == ON_ERROR_QUARANTINE),
                        ))
                    else:
                        rerun.append(name)
                retry = []
                if not rerun:
                    break
                # Retries run one member at a time: a process-pool break
                # fails every in-flight future, so batching reruns would
                # charge innocent members for the culprit's crash.
                for name in rerun:
                    payload = dict(base, names=[name], worker=None,
                                   fresh=True)
                    [outcome] = active.run_all(run_extract_shard, [payload])
                    if outcome.crashed:
                        attempts[name] += 1
                        retry.append(name)
                    elif outcome.error is not None:
                        raise outcome.error
                    else:
                        absorb(outcome.result)

    order = {name: index for index, name in enumerate(names)}
    failures.sort(key=lambda failure: order.get(failure.name, len(order)))
    return ExtractionReport(
        (by_name[name] for name in names if name in by_name),
        failures,
    )


def parallel_check(archive, jobs, *, reuse=None, names=None, pool=None):
    """Sharded :meth:`Archive.check`; see that method for semantics."""
    from repro.api import MODE_VXA

    wanted = names if names is not None else archive.names()
    # Mode VXA + force_decode mirrors the check's contract: every
    # decoder-bearing member runs its archived decoder, nothing else runs.
    plan = [item for item in archive.extraction_plan(
                wanted, mode=MODE_VXA, force_decode=True)
            if item.decoder_offset is not None]
    order = {item.name: item.index for item in plan}
    shards = Scheduler(jobs).plan(plan)
    if len(shards) <= 1:
        return archive.check(reuse=reuse, names=names, jobs=1)
    report = IntegrityReport()
    failures: list[tuple[int, str]] = []

    def absorb(result):
        report.checked += result["checked"]
        report.passed += result["passed"]
        for failure in result["failures"]:
            failures.append((_failure_order(failure, order), failure))
        report.add_counters(result)

    with _shippable_source(archive) as source:
        base = {
            "source": source,
            "options": archive.options,
            "reuse": reuse.value if reuse is not None else None,
        }
        payloads = [dict(base, names=shard.names) for shard in shards]
        with _pool_for(archive, shards, payloads, jobs, pool) as active:
            attempts: dict[str, int] = {}
            retry: list[str] = []
            # The check's contract is record-everything-raise-nothing, so
            # crash recovery applies regardless of the on_error policy.
            for outcome in active.run_all(run_check_shard, payloads):
                if outcome.crashed:
                    for name in outcome.payload["names"]:
                        attempts[name] = attempts.get(name, 0) + 1
                        retry.append(name)
                elif outcome.error is not None:
                    raise outcome.error
                else:
                    absorb(outcome.result)

            while retry:
                rerun = []
                for name in retry:
                    if attempts[name] > archive.options.retries:
                        report.checked += 1
                        failures.append((
                            order.get(name, len(order)),
                            f"{name}: worker crashed {attempts[name]} "
                            f"time(s); retry budget exhausted",
                        ))
                    else:
                        rerun.append(name)
                retry = []
                if not rerun:
                    break
                # One member at a time, for the same reason as extraction:
                # a pool break must not charge innocent members' budgets.
                for name in rerun:
                    payload = dict(base, names=[name], fresh=True)
                    [outcome] = active.run_all(run_check_shard, [payload])
                    if outcome.crashed:
                        attempts[name] += 1
                        retry.append(name)
                    elif outcome.error is not None:
                        raise outcome.error
                    else:
                        absorb(outcome.result)

    report.failures.extend(failure for _, failure in sorted(failures))
    return report


def _failure_order(failure: str, order: dict) -> int:
    """Archive position of the member a failure string names.

    Failure strings are ``f"{name}: {reason}"`` and member names may
    themselves contain colons, so match against the known names (longest
    match wins) instead of parsing the string.
    """
    best_name = None
    for name in order:
        if failure.startswith(f"{name}:"):
            if best_name is None or len(name) > len(best_name):
                best_name = name
    return order[best_name] if best_name is not None else len(order)
