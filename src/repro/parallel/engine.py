"""Orchestration: plan, shard, dispatch, and merge for parallel reads.

The facade (:meth:`Archive.extract_into` / :meth:`Archive.check` with
``jobs > 1``) calls in here.  The flow is always the same four steps:

1. ask the archive for its :class:`~repro.api.archive.MemberPlan`s,
2. shard them with the cache-affine :class:`~repro.parallel.scheduler.Scheduler`,
3. run the shards on a :class:`~repro.parallel.pool.WorkerPool` (an
   ephemeral one for facade calls; ``vxserve`` passes its own long-lived
   pool so worker caches stay hot across requests),
4. merge results deterministically: extraction records return in the
   caller's requested order, check failures in archive order, and every
   worker session's counters are summed.

Output equality with the serial path is structural, not incidental: each
worker executes the *serial* extraction/check code over its shard, and every
decode is verified against the member's recorded CRC before anything is
surfaced.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import tempfile

from repro.api.session import SessionStats
from repro.core.archive_reader import IntegrityReport
from repro.parallel.pool import WorkerPool
from repro.parallel.scheduler import Scheduler
from repro.parallel.worker import run_check_shard, run_extract_shard


@contextlib.contextmanager
def _shippable_source(archive):
    """The archive's worker source, spooled to a temp file if data-backed.

    Every shard payload references the same source, and process-mode
    payloads are pickled independently -- shipping a big archive's raw
    bytes once per shard would copy it ``jobs`` times over the IPC pipe.
    A temp file is written once and passed by path instead; workers that
    still hold it open when it is unlinked keep a valid handle (POSIX).
    """
    source = archive.worker_source()
    if "path" in source:
        yield source
        return
    handle, spooled = tempfile.mkstemp(prefix="vxa-archive-", suffix=".zip")
    try:
        with os.fdopen(handle, "wb") as sink:
            sink.write(source["data"])
        yield {"path": spooled}
    finally:
        os.unlink(spooled)


def _run_shards(archive, shards, runner, payloads, jobs, pool=None):
    total_cost = sum(shard.cost for shard in shards)
    if pool is not None:
        return pool.run(runner, payloads)
    with WorkerPool(min(jobs, len(shards)), archive.options.executor,
                    total_cost=total_cost, payload=payloads[0]) as ephemeral:
        return ephemeral.run(runner, payloads)


def parallel_extract_into(archive, directory, names, jobs, *,
                          mode=None, force_decode=None, pool=None):
    """Sharded :meth:`Archive.extract_into`; see that method for semantics."""
    from repro.api.archive import ExtractionRecord

    plan = archive.extraction_plan(names, mode=mode, force_decode=force_decode)
    shards = Scheduler(jobs).plan(plan)
    if len(shards) <= 1:
        return archive.extract_into(directory, names, mode=mode,
                                    force_decode=force_decode, jobs=1)
    with _shippable_source(archive) as source:
        payloads = [
            {
                "source": source,
                "options": archive.options,
                "names": shard.names,
                "directory": str(directory),
                "mode": mode,
                "force_decode": force_decode,
            }
            for shard in shards
        ]
        results = _run_shards(archive, shards, run_extract_shard, payloads,
                              jobs, pool=pool)
    by_name = {}
    for result in results:
        archive.session.stats.merge(SessionStats.from_dict(result["stats"]))
        for record in result["records"]:
            by_name[record["name"]] = ExtractionRecord(
                name=record["name"],
                path=pathlib.Path(record["path"]),
                size=record["size"],
                used_vxa_decoder=record["used_vxa_decoder"],
                decoded=record["decoded"],
                codec_name=record["codec_name"],
            )
    return [by_name[name] for name in names]


def parallel_check(archive, jobs, *, reuse=None, names=None, pool=None):
    """Sharded :meth:`Archive.check`; see that method for semantics."""
    from repro.api import MODE_VXA

    wanted = names if names is not None else archive.names()
    # Mode VXA + force_decode mirrors the check's contract: every
    # decoder-bearing member runs its archived decoder, nothing else runs.
    plan = [item for item in archive.extraction_plan(
                wanted, mode=MODE_VXA, force_decode=True)
            if item.decoder_offset is not None]
    order = {item.name: item.index for item in plan}
    shards = Scheduler(jobs).plan(plan)
    if len(shards) <= 1:
        return archive.check(reuse=reuse, names=names, jobs=1)
    with _shippable_source(archive) as source:
        payloads = [
            {
                "source": source,
                "options": archive.options,
                "names": shard.names,
                "reuse": reuse.value if reuse is not None else None,
            }
            for shard in shards
        ]
        results = _run_shards(archive, shards, run_check_shard, payloads,
                              jobs, pool=pool)
    report = IntegrityReport()
    failures: list[tuple[int, str]] = []
    for result in results:
        report.checked += result["checked"]
        report.passed += result["passed"]
        for failure in result["failures"]:
            failures.append((_failure_order(failure, order), failure))
        report.add_counters(result)
    report.failures.extend(failure for _, failure in sorted(failures))
    return report


def _failure_order(failure: str, order: dict) -> int:
    """Archive position of the member a failure string names.

    Failure strings are ``f"{name}: {reason}"`` and member names may
    themselves contain colons, so match against the known names (longest
    match wins) instead of parsing the string.
    """
    best_name = None
    for name in order:
        if failure.startswith(f"{name}:"):
            if best_name is None or len(name) > len(best_name):
                best_name = name
    return order[best_name] if best_name is not None else len(order)
