"""VXA-32 instruction set architecture: opcodes, encoding, assembler, disassembler."""

from repro.isa.assembler import Assembler, AssembledProgram, assemble
from repro.isa.disassembler import disassemble, format_instruction
from repro.isa.encoding import Instruction, decode, decode_all, encode, instruction_length
from repro.isa.opcodes import (
    FD_STDERR,
    FD_STDIN,
    FD_STDOUT,
    NUM_REGISTERS,
    Op,
    OPCODES,
    REG_FP,
    REG_SP,
    REGISTER_NAMES,
    Vxcall,
)

__all__ = [
    "Assembler",
    "AssembledProgram",
    "assemble",
    "disassemble",
    "format_instruction",
    "Instruction",
    "decode",
    "decode_all",
    "encode",
    "instruction_length",
    "FD_STDERR",
    "FD_STDIN",
    "FD_STDOUT",
    "NUM_REGISTERS",
    "Op",
    "OPCODES",
    "REG_FP",
    "REG_SP",
    "REGISTER_NAMES",
    "Vxcall",
]
