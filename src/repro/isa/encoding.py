"""Binary encoding and decoding of VXA-32 instructions.

The encoding is deliberately variable-length (1, 2, 3, 6 or 7 bytes
depending on operand format).  This mirrors the x86 property that makes
load-time code scanning unsound: a byte offset inside a legitimate
instruction can itself decode as a different, possibly unsafe instruction,
so the VM must scan code dynamically along actual execution paths
(paper section 4.2).

Layouts (little endian immediates):

====================  =======================================
format                bytes
====================  =======================================
``NONE``              ``[op]``
``REG``               ``[op][reg]``
``REG_REG``           ``[op][rd<<4 | rs]``
``REG_IMM``           ``[op][reg][imm32]``
``REG_REG_IMM``       ``[op][rd<<4 | rs][imm32]``
``REL``               ``[op][rel32]``
====================  =======================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import InvalidInstructionError
from repro.isa.opcodes import Fmt, Op, OPCODES, NUM_REGISTERS

_U32 = struct.Struct("<I")

#: Maximum encoded instruction length in bytes.
MAX_INSTRUCTION_LENGTH = 7


@dataclass(frozen=True)
class Instruction:
    """A decoded VXA-32 instruction.

    Attributes:
        op: opcode.
        rd: destination register index (or sole register operand).
        rs: source register index.
        imm: immediate / displacement value, always stored as an unsigned
            32-bit integer; relative branch targets are stored signed.
        length: encoded length in bytes.
    """

    op: Op
    rd: int = 0
    rs: int = 0
    imm: int = 0
    length: int = 1

    @property
    def info(self):
        return OPCODES[self.op]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from repro.isa.disassembler import format_instruction

        return format_instruction(self, address=None)


def _check_reg(reg: int) -> int:
    if not 0 <= reg < NUM_REGISTERS:
        raise InvalidInstructionError(f"register index out of range: {reg}")
    return reg


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def encode(op: Op, rd: int = 0, rs: int = 0, imm: int = 0) -> bytes:
    """Encode a single instruction to bytes.

    ``imm`` may be given as a signed or unsigned 32-bit value.
    """
    info = OPCODES.get(op)
    if info is None:
        raise InvalidInstructionError(f"unknown opcode: {op!r}")
    imm32 = imm & 0xFFFFFFFF
    fmt = info.fmt
    if fmt is Fmt.NONE:
        return bytes((op,))
    if fmt is Fmt.REG:
        return bytes((op, _check_reg(rd)))
    if fmt is Fmt.REG_REG:
        return bytes((op, (_check_reg(rd) << 4) | _check_reg(rs)))
    if fmt is Fmt.REG_IMM:
        return bytes((op, _check_reg(rd))) + _U32.pack(imm32)
    if fmt is Fmt.REG_REG_IMM:
        return bytes((op, (_check_reg(rd) << 4) | _check_reg(rs))) + _U32.pack(imm32)
    if fmt is Fmt.REL:
        return bytes((op,)) + _U32.pack(imm32)
    raise InvalidInstructionError(f"unhandled format {fmt!r}")  # pragma: no cover


def instruction_length(op: Op) -> int:
    """Return the encoded length in bytes of instructions with opcode ``op``."""
    fmt = OPCODES[op].fmt
    if fmt is Fmt.NONE:
        return 1
    if fmt is Fmt.REG or fmt is Fmt.REG_REG:
        return 2
    if fmt is Fmt.REL:
        return 5
    return 6


def decode(code: bytes, offset: int = 0) -> Instruction:
    """Decode one instruction from ``code`` at ``offset``.

    Raises:
        InvalidInstructionError: if the bytes do not form a valid instruction.
    """
    if offset >= len(code):
        raise InvalidInstructionError(
            f"decode past end of code at offset {offset}",
            offset=offset, reason="past-end",
        )
    opbyte = code[offset]
    try:
        op = Op(opbyte)
    except ValueError:
        raise InvalidInstructionError(
            f"illegal opcode byte 0x{opbyte:02x} at offset {offset}",
            offset=offset, reason="illegal-opcode",
        ) from None
    info = OPCODES[op]
    fmt = info.fmt
    length = instruction_length(op)
    if offset + length > len(code):
        raise InvalidInstructionError(
            f"truncated instruction {info.mnemonic} at offset {offset}",
            offset=offset, reason="truncated",
        )
    try:
        if fmt is Fmt.NONE:
            return Instruction(op, length=1)
        if fmt is Fmt.REG:
            reg = code[offset + 1]
            _check_reg(reg)
            return Instruction(op, rd=reg, length=2)
        if fmt is Fmt.REG_REG:
            packed = code[offset + 1]
            rd, rs = packed >> 4, packed & 0x0F
            _check_reg(rd)
            _check_reg(rs)
            return Instruction(op, rd=rd, rs=rs, length=2)
    except InvalidInstructionError as error:
        raise InvalidInstructionError(
            f"{error} (instruction {info.mnemonic} at offset {offset})",
            offset=offset, reason="bad-register",
        ) from None
    if fmt is Fmt.REL:
        imm = _signed32(_U32.unpack_from(code, offset + 1)[0])
        return Instruction(op, imm=imm, length=5)
    try:
        if fmt is Fmt.REG_IMM:
            reg = code[offset + 1]
            _check_reg(reg)
            imm = _U32.unpack_from(code, offset + 2)[0]
            return Instruction(op, rd=reg, imm=imm, length=6)
        # REG_REG_IMM
        packed = code[offset + 1]
        rd, rs = packed >> 4, packed & 0x0F
        _check_reg(rd)
        _check_reg(rs)
    except InvalidInstructionError as error:
        raise InvalidInstructionError(
            f"{error} (instruction {info.mnemonic} at offset {offset})",
            offset=offset, reason="bad-register",
        ) from None
    imm = _U32.unpack_from(code, offset + 2)[0]
    return Instruction(op, rd=rd, rs=rs, imm=imm, length=6)


def decode_all(code: bytes, start: int = 0, end: int | None = None):
    """Yield ``(offset, Instruction)`` pairs decoding linearly from ``start``.

    This performs a straight-line sweep and is used by the disassembler and
    by tests; the VM itself never trusts a linear sweep (see module docstring).
    """
    if end is None:
        end = len(code)
    offset = start
    while offset < end:
        insn = decode(code, offset)
        yield offset, insn
        offset += insn.length
