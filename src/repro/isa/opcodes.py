"""Instruction set definition for the VXA-32 virtual architecture.

VXA-32 is the guest architecture used by archived decoders, standing in for
the unprivileged 32-bit x86 subset the paper relies on.  The properties that
matter to the reproduction are preserved:

* variable-length instruction encoding (so safe execution requires dynamic
  code scanning, not a single load-time pass -- see paper section 4.2),
* eight general-purpose registers plus a stack pointer, mirroring the x86
  register-pressure argument against dedicated sandbox registers,
* condition flags set by arithmetic/compare instructions,
* a single software-trap instruction (``VXCALL``) through which all host
  interaction is funnelled, mirroring ``int 0x80`` interception.

The module defines opcode numbers, instruction metadata and register names.
Encoding/decoding lives in :mod:`repro.isa.encoding`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Number of general purpose registers (R0..R7).
NUM_REGISTERS = 8

#: Conventional register roles used by the vxc compiler ABI.
REG_RETURN = 0      # R0: return value / first syscall argument slot
REG_ARG0 = 0
REG_ARG1 = 1
REG_ARG2 = 2
REG_ARG3 = 3
REG_TMP0 = 4
REG_TMP1 = 5
REG_FP = 6          # frame pointer
REG_SP = 7          # stack pointer

REGISTER_NAMES = ("r0", "r1", "r2", "r3", "r4", "r5", "fp", "sp")

#: Mapping from register name (and aliases) to register index.
REGISTER_ALIASES = {
    **{name: index for index, name in enumerate(REGISTER_NAMES)},
    "r6": REG_FP,
    "r7": REG_SP,
}


class Op(enum.IntEnum):
    """Opcode numbers for VXA-32 instructions."""

    # Control / misc
    HALT = 0x00
    NOP = 0x01
    VXCALL = 0x02

    # Data movement
    MOVI = 0x10        # movi  rd, imm32
    MOV = 0x11         # mov   rd, rs
    LD32 = 0x12        # ld32  rd, [rs+imm32]
    LD16U = 0x13       # ld16u rd, [rs+imm32]
    LD8U = 0x14        # ld8u  rd, [rs+imm32]
    ST32 = 0x15        # st32  [rd+imm32], rs
    ST16 = 0x16        # st16  [rd+imm32], rs
    ST8 = 0x17         # st8   [rd+imm32], rs
    PUSH = 0x18        # push  rs
    POP = 0x19         # pop   rd
    LD16S = 0x1A       # ld16s rd, [rs+imm32]
    LD8S = 0x1B        # ld8s  rd, [rs+imm32]
    LEA = 0x1C         # lea   rd, [rs+imm32]

    # ALU, register-register
    ADD = 0x20
    SUB = 0x21
    MUL = 0x22
    DIVU = 0x23
    REMU = 0x24
    DIVS = 0x25
    REMS = 0x26
    AND = 0x27
    OR = 0x28
    XOR = 0x29
    SHL = 0x2A
    SHRU = 0x2B
    SHRS = 0x2C
    CMP = 0x2D
    NOT = 0x2E
    NEG = 0x2F

    # ALU, register-immediate
    ADDI = 0x30
    SUBI = 0x31
    MULI = 0x32
    ANDI = 0x33
    ORI = 0x34
    XORI = 0x35
    SHLI = 0x36
    SHRUI = 0x37
    SHRSI = 0x38
    CMPI = 0x39

    # Control flow
    JMP = 0x40         # jmp   rel32 (relative to next instruction)
    JE = 0x41
    JNE = 0x42
    JLTS = 0x43        # signed <
    JLES = 0x44        # signed <=
    JGTS = 0x45        # signed >
    JGES = 0x46        # signed >=
    JLTU = 0x47        # unsigned <
    JLEU = 0x48        # unsigned <=
    JGTU = 0x49        # unsigned >
    JGEU = 0x4A        # unsigned >=
    CALL = 0x4B        # call  rel32
    RET = 0x4C         # ret
    JMPR = 0x4D        # jmpr  rs       (indirect jump)
    CALLR = 0x4E       # callr rs       (indirect call)


class Fmt(enum.Enum):
    """Operand formats used by the encoder/decoder."""

    NONE = "none"              # opcode only
    REG = "reg"                # opcode, reg
    REG_REG = "reg_reg"        # opcode, packed reg pair
    REG_IMM = "reg_imm"        # opcode, reg, imm32
    REG_REG_IMM = "reg_reg_imm"  # opcode, packed reg pair, imm32
    REL = "rel"                # opcode, rel32


@dataclass(frozen=True)
class OpInfo:
    """Static metadata describing one opcode."""

    op: Op
    mnemonic: str
    fmt: Fmt
    is_branch: bool = False
    is_terminator: bool = False  # ends a basic block for the translator


_OPCODE_TABLE = (
    OpInfo(Op.HALT, "halt", Fmt.NONE, is_terminator=True),
    OpInfo(Op.NOP, "nop", Fmt.NONE),
    OpInfo(Op.VXCALL, "vxcall", Fmt.NONE, is_terminator=True),
    OpInfo(Op.MOVI, "movi", Fmt.REG_IMM),
    OpInfo(Op.MOV, "mov", Fmt.REG_REG),
    OpInfo(Op.LD32, "ld32", Fmt.REG_REG_IMM),
    OpInfo(Op.LD16U, "ld16u", Fmt.REG_REG_IMM),
    OpInfo(Op.LD8U, "ld8u", Fmt.REG_REG_IMM),
    OpInfo(Op.LD16S, "ld16s", Fmt.REG_REG_IMM),
    OpInfo(Op.LD8S, "ld8s", Fmt.REG_REG_IMM),
    OpInfo(Op.ST32, "st32", Fmt.REG_REG_IMM),
    OpInfo(Op.ST16, "st16", Fmt.REG_REG_IMM),
    OpInfo(Op.ST8, "st8", Fmt.REG_REG_IMM),
    OpInfo(Op.LEA, "lea", Fmt.REG_REG_IMM),
    OpInfo(Op.PUSH, "push", Fmt.REG),
    OpInfo(Op.POP, "pop", Fmt.REG),
    OpInfo(Op.ADD, "add", Fmt.REG_REG),
    OpInfo(Op.SUB, "sub", Fmt.REG_REG),
    OpInfo(Op.MUL, "mul", Fmt.REG_REG),
    OpInfo(Op.DIVU, "divu", Fmt.REG_REG),
    OpInfo(Op.REMU, "remu", Fmt.REG_REG),
    OpInfo(Op.DIVS, "divs", Fmt.REG_REG),
    OpInfo(Op.REMS, "rems", Fmt.REG_REG),
    OpInfo(Op.AND, "and", Fmt.REG_REG),
    OpInfo(Op.OR, "or", Fmt.REG_REG),
    OpInfo(Op.XOR, "xor", Fmt.REG_REG),
    OpInfo(Op.SHL, "shl", Fmt.REG_REG),
    OpInfo(Op.SHRU, "shru", Fmt.REG_REG),
    OpInfo(Op.SHRS, "shrs", Fmt.REG_REG),
    OpInfo(Op.CMP, "cmp", Fmt.REG_REG),
    OpInfo(Op.NOT, "not", Fmt.REG_REG),
    OpInfo(Op.NEG, "neg", Fmt.REG_REG),
    OpInfo(Op.ADDI, "addi", Fmt.REG_IMM),
    OpInfo(Op.SUBI, "subi", Fmt.REG_IMM),
    OpInfo(Op.MULI, "muli", Fmt.REG_IMM),
    OpInfo(Op.ANDI, "andi", Fmt.REG_IMM),
    OpInfo(Op.ORI, "ori", Fmt.REG_IMM),
    OpInfo(Op.XORI, "xori", Fmt.REG_IMM),
    OpInfo(Op.SHLI, "shli", Fmt.REG_IMM),
    OpInfo(Op.SHRUI, "shrui", Fmt.REG_IMM),
    OpInfo(Op.SHRSI, "shrsi", Fmt.REG_IMM),
    OpInfo(Op.CMPI, "cmpi", Fmt.REG_IMM),
    OpInfo(Op.JMP, "jmp", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.JE, "je", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.JNE, "jne", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.JLTS, "jlts", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.JLES, "jles", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.JGTS, "jgts", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.JGES, "jges", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.JLTU, "jltu", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.JLEU, "jleu", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.JGTU, "jgtu", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.JGEU, "jgeu", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.CALL, "call", Fmt.REL, is_branch=True, is_terminator=True),
    OpInfo(Op.RET, "ret", Fmt.NONE, is_branch=True, is_terminator=True),
    OpInfo(Op.JMPR, "jmpr", Fmt.REG, is_branch=True, is_terminator=True),
    OpInfo(Op.CALLR, "callr", Fmt.REG, is_branch=True, is_terminator=True),
)

#: Opcode value -> OpInfo
OPCODES = {info.op: info for info in _OPCODE_TABLE}

#: Mnemonic -> OpInfo
MNEMONICS = {info.mnemonic: info for info in _OPCODE_TABLE}

#: Conditional jump opcodes (exclude unconditional JMP/CALL).
CONDITIONAL_JUMPS = frozenset(
    {
        Op.JE,
        Op.JNE,
        Op.JLTS,
        Op.JLES,
        Op.JGTS,
        Op.JGES,
        Op.JLTU,
        Op.JLEU,
        Op.JGTU,
        Op.JGEU,
    }
)


class Vxcall(enum.IntEnum):
    """Virtual system call numbers (paper section 4.3).

    Only these five calls are available to decoders.  The call number is
    passed in R0; arguments in R1..R3; the result is returned in R0.
    """

    EXIT = 0
    READ = 1
    WRITE = 2
    SETPERM = 3
    DONE = 4


#: Virtual file handles available to decoders (paper section 4.3).
FD_STDIN = 0
FD_STDOUT = 1
FD_STDERR = 2
