"""Disassembler for VXA-32 machine code.

Used for debugging guest decoders, for the archive inspection tooling and in
tests to assert round-trip properties of the assembler and vxc compiler.
"""

from __future__ import annotations

from repro.errors import InvalidInstructionError
from repro.isa.encoding import Instruction, decode
from repro.isa.opcodes import Fmt, Op, OPCODES, REGISTER_NAMES


def _reg(index: int) -> str:
    return REGISTER_NAMES[index]


def format_instruction(insn: Instruction, address: int | None = None) -> str:
    """Render one decoded instruction as assembly text.

    If ``address`` is provided, relative branch targets are resolved to
    absolute addresses for readability.
    """
    info = OPCODES[insn.op]
    mnemonic = info.mnemonic
    fmt = info.fmt
    if fmt is Fmt.NONE:
        return mnemonic
    if fmt is Fmt.REG:
        return f"{mnemonic} {_reg(insn.rd)}"
    if fmt is Fmt.REG_REG:
        return f"{mnemonic} {_reg(insn.rd)}, {_reg(insn.rs)}"
    if fmt is Fmt.REG_IMM:
        return f"{mnemonic} {_reg(insn.rd)}, {insn.imm:#x}"
    if fmt is Fmt.REL:
        if address is not None:
            target = address + insn.length + insn.imm
            return f"{mnemonic} {target:#x}"
        return f"{mnemonic} {insn.imm:+#x}"
    # REG_REG_IMM
    displacement = insn.imm
    if displacement >= 0x80000000:
        displacement -= 0x100000000
    sign = "+" if displacement >= 0 else "-"
    mem = f"[{_reg(insn.rs)}{sign}{abs(displacement):#x}]"
    if insn.op in (Op.ST8, Op.ST16, Op.ST32):
        mem = f"[{_reg(insn.rd)}{sign}{abs(displacement):#x}]"
        return f"{mnemonic} {mem}, {_reg(insn.rs)}"
    return f"{mnemonic} {_reg(insn.rd)}, {mem}"


def disassemble(code: bytes, base: int = 0, *, stop_on_error: bool = False) -> list[str]:
    """Disassemble ``code`` linearly, returning one formatted line per instruction.

    Unknown bytes are rendered as ``.byte`` lines unless ``stop_on_error``.
    """
    lines: list[str] = []
    offset = 0
    while offset < len(code):
        address = base + offset
        try:
            insn = decode(code, offset)
        except InvalidInstructionError:
            if stop_on_error:
                raise
            lines.append(f"{address:08x}:  .byte {code[offset]:#04x}")
            offset += 1
            continue
        lines.append(f"{address:08x}:  {format_instruction(insn, address)}")
        offset += insn.length
    return lines
