"""Disassembler for VXA-32 machine code.

Used for debugging guest decoders, for the archive inspection tooling and in
tests to assert round-trip properties of the assembler and vxc compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidInstructionError
from repro.isa.encoding import Instruction, decode
from repro.isa.opcodes import Fmt, Op, OPCODES, REGISTER_NAMES


@dataclass(frozen=True)
class DecodeError:
    """One undecodable location found during a linear scan.

    A structured record (offset + machine-readable reason) rather than a bare
    exception, so CFG recovery and ``AnalysisReport`` can pinpoint ill-formed
    code without parsing message strings.
    """

    offset: int              # byte offset within the scanned code
    reason: str              # "illegal-opcode" | "truncated" | "bad-register" | ...
    message: str             # human-readable description


@dataclass
class ScanResult:
    """Outcome of :func:`scan` -- decoded instructions plus structured errors."""

    instructions: list[tuple[int, Instruction]] = field(default_factory=list)
    errors: list[DecodeError] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def scan(code: bytes, *, start: int = 0, end: int | None = None) -> ScanResult:
    """Linearly decode ``code``, collecting structured errors instead of raising.

    On an undecodable byte the scan records a :class:`DecodeError` and resumes
    at the next byte, so a single bad region cannot hide later ill-formed
    code.  The VM itself never trusts a linear sweep (see
    :mod:`repro.isa.encoding`); this feeds the disassembler and the static
    analyser's CFG recovery.
    """
    if end is None:
        end = len(code)
    result = ScanResult()
    offset = start
    while offset < end:
        try:
            insn = decode(code, offset)
        except InvalidInstructionError as error:
            result.errors.append(DecodeError(
                offset=error.offset if error.offset is not None else offset,
                reason=error.reason,
                message=str(error),
            ))
            offset += 1
            continue
        if offset + insn.length > end:
            result.errors.append(DecodeError(
                offset=offset,
                reason="straddles-end",
                message=f"instruction at offset {offset} straddles the scan end",
            ))
            offset += 1
            continue
        result.instructions.append((offset, insn))
        offset += insn.length
    return result


def _reg(index: int) -> str:
    return REGISTER_NAMES[index]


def format_instruction(insn: Instruction, address: int | None = None) -> str:
    """Render one decoded instruction as assembly text.

    If ``address`` is provided, relative branch targets are resolved to
    absolute addresses for readability.
    """
    info = OPCODES[insn.op]
    mnemonic = info.mnemonic
    fmt = info.fmt
    if fmt is Fmt.NONE:
        return mnemonic
    if fmt is Fmt.REG:
        return f"{mnemonic} {_reg(insn.rd)}"
    if fmt is Fmt.REG_REG:
        return f"{mnemonic} {_reg(insn.rd)}, {_reg(insn.rs)}"
    if fmt is Fmt.REG_IMM:
        return f"{mnemonic} {_reg(insn.rd)}, {insn.imm:#x}"
    if fmt is Fmt.REL:
        if address is not None:
            target = address + insn.length + insn.imm
            return f"{mnemonic} {target:#x}"
        return f"{mnemonic} {insn.imm:+#x}"
    # REG_REG_IMM
    displacement = insn.imm
    if displacement >= 0x80000000:
        displacement -= 0x100000000
    sign = "+" if displacement >= 0 else "-"
    mem = f"[{_reg(insn.rs)}{sign}{abs(displacement):#x}]"
    if insn.op in (Op.ST8, Op.ST16, Op.ST32):
        mem = f"[{_reg(insn.rd)}{sign}{abs(displacement):#x}]"
        return f"{mnemonic} {mem}, {_reg(insn.rs)}"
    return f"{mnemonic} {_reg(insn.rd)}, {mem}"


def disassemble(code: bytes, base: int = 0, *, stop_on_error: bool = False) -> list[str]:
    """Disassemble ``code`` linearly, returning one formatted line per instruction.

    Unknown bytes are rendered as ``.byte`` lines unless ``stop_on_error``.
    """
    lines: list[str] = []
    offset = 0
    while offset < len(code):
        address = base + offset
        try:
            insn = decode(code, offset)
        except InvalidInstructionError:
            if stop_on_error:
                raise
            lines.append(f"{address:08x}:  .byte {code[offset]:#04x}")
            offset += 1
            continue
        lines.append(f"{address:08x}:  {format_instruction(insn, address)}")
        offset += insn.length
    return lines


def disassemble_for_reassembly(code: bytes, base: int = 0) -> tuple[str, ScanResult]:
    """Disassemble ``code`` into assembler-compatible source text.

    Unlike :func:`disassemble` (a human-oriented listing), the returned
    source round-trips: feeding it back through
    :func:`repro.isa.assembler.assemble` with ``text_base=base`` re-encodes
    the exact original bytes.  Branch targets become ``L_<address>`` labels
    (or absolute integers when they land outside the scanned region),
    undecodable bytes become ``.byte`` directives, and the accompanying
    :class:`ScanResult` carries the structured errors for those regions.
    """
    result = scan(code)
    starts = {offset for offset, _ in result.instructions}

    # Collect label sites: every in-region branch target that is a decodable
    # instruction start gets a label; others are rendered as absolute ints.
    targets: set[int] = set()
    for offset, insn in result.instructions:
        if OPCODES[insn.op].fmt is Fmt.REL:
            relative_target = offset + insn.length + insn.imm
            if relative_target in starts:
                targets.add(relative_target)

    lines = [".text"]
    emitted = {offset: _format_for_reassembly(insn, base + offset, base, starts)
               for offset, insn in result.instructions}
    length_at = {offset: insn.length for offset, insn in result.instructions}
    position = 0
    while position < len(code):
        if position in targets:
            lines.append(f"L_{base + position:x}:")
        if position in emitted:
            lines.append("    " + emitted[position])
            position += length_at[position]
        else:
            lines.append(f"    .byte {code[position]:#04x}")
            position += 1
    return "\n".join(lines) + "\n", result


def _format_for_reassembly(insn: Instruction, address: int, base: int,
                           starts: set[int]) -> str:
    """Render one instruction in the exact syntax the assembler accepts."""
    info = OPCODES[insn.op]
    mnemonic = info.mnemonic
    fmt = info.fmt
    if fmt is Fmt.NONE:
        return mnemonic
    if fmt is Fmt.REG:
        return f"{mnemonic} {_reg(insn.rd)}"
    if fmt is Fmt.REG_REG:
        return f"{mnemonic} {_reg(insn.rd)}, {_reg(insn.rs)}"
    if fmt is Fmt.REG_IMM:
        return f"{mnemonic} {_reg(insn.rd)}, {insn.imm:#x}"
    if fmt is Fmt.REL:
        target = address + insn.length + insn.imm
        if (target - base) in starts:
            return f"{mnemonic} L_{target:x}"
        # Out-of-region or mid-instruction target: keep the raw address so
        # re-encoding reproduces the same displacement bytes.
        return f"{mnemonic} {target & 0xFFFFFFFF:#x}"
    # REG_REG_IMM memory form
    displacement = insn.imm
    if displacement >= 0x80000000:
        displacement -= 0x100000000
    sign = "+" if displacement >= 0 else "-"
    if insn.op in (Op.ST8, Op.ST16, Op.ST32):
        mem = f"[{_reg(insn.rd)}{sign}{abs(displacement):#x}]"
        return f"{mnemonic} {mem}, {_reg(insn.rs)}"
    mem = f"[{_reg(insn.rs)}{sign}{abs(displacement):#x}]"
    return f"{mnemonic} {_reg(insn.rd)}, {mem}"
