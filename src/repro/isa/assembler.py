"""Two-pass assembler for VXA-32 assembly source.

The assembler is the lowest layer of the decoder toolchain: the vxc compiler
emits assembly text, this module turns it into machine code, and
:mod:`repro.elf.builder` wraps the result in an ELF executable.  It can also
be used directly to write small guest programs by hand (several tests and the
sandbox example do exactly that).

Syntax
------

* one statement per line; ``;`` or ``#`` starts a comment,
* labels are ``name:`` on their own line or before an instruction,
* instructions are ``mnemonic operand, operand`` with operands being
  registers (``r0``..``r5``, ``fp``, ``sp``), immediates (decimal, ``0x`` hex,
  ``'c'`` character constants), label references, or memory operands
  ``[reg+disp]`` / ``[reg-disp]`` / ``[reg]``,
* directives: ``.text``, ``.data``, ``.byte``, ``.word`` (32-bit),
  ``.ascii "..."``, ``.asciz "..."``, ``.space N``, ``.align N``,
  ``.global name`` (recorded in the symbol table).

Label references in ``movi`` produce absolute addresses; in branch
instructions they produce relative displacements from the end of the
instruction, as the hardware expects.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.isa.encoding import encode, instruction_length
from repro.isa.opcodes import Fmt, MNEMONICS, REGISTER_ALIASES

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


@dataclass
class Section:
    """One output section (``.text`` or ``.data``)."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    base: int = 0

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class AssembledProgram:
    """Result of assembling a program.

    Attributes:
        text: machine code bytes.
        data: initialised data bytes.
        symbols: label name -> absolute address.
        text_base: load address of the text section.
        data_base: load address of the data section.
        bss_size: size of zero-initialised memory following data.
        entry: address of the entry point (symbol ``_start`` if present,
            otherwise the start of ``.text``).
        globals: names declared ``.global``.
    """

    text: bytes
    data: bytes
    symbols: dict[str, int]
    text_base: int
    data_base: int
    bss_size: int
    entry: int
    globals: tuple[str, ...] = ()


@dataclass
class _Statement:
    kind: str                 # "insn", "byte", "word", "ascii", "space", "align"
    line_no: int
    section: str
    mnemonic: str = ""
    operands: tuple[str, ...] = ()
    payload: bytes = b""
    size: int = 0
    offset: int = 0           # offset within its section, filled in pass 1


def _parse_int(token: str, line_no: int) -> int:
    token = token.strip()
    negative = token.startswith("-")
    if negative:
        token = token[1:]
    try:
        if token.startswith("'") and token.endswith("'") and len(token) >= 3:
            body = token[1:-1]
            unescaped = body.encode().decode("unicode_escape")
            if len(unescaped) != 1:
                raise ValueError(token)
            value = ord(unescaped)
        elif token.lower().startswith("0x"):
            value = int(token, 16)
        else:
            value = int(token, 10)
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad integer literal {token!r}") from None
    return -value if negative else value


def _split_operands(rest: str) -> list[str]:
    operands: list[str] = []
    depth = 0
    current = []
    for char in rest:
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
            continue
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return [operand for operand in operands if operand]


_MEM_RE = re.compile(
    r"^\[\s*(?P<reg>[A-Za-z][A-Za-z0-9]*)\s*(?:(?P<sign>[+-])\s*(?P<disp>[^\]]+))?\s*\]$"
)


class Assembler:
    """Two-pass assembler producing an :class:`AssembledProgram`."""

    def __init__(self, text_base: int = 0x1000, data_align: int = 0x1000):
        self._text_base = text_base
        self._data_align = data_align

    # -- public API --------------------------------------------------------

    def assemble(self, source: str) -> AssembledProgram:
        """Assemble ``source`` text into machine code and a symbol table."""
        statements, labels_by_stmt, global_names, bss_size = self._parse(source)
        symbols = self._layout(statements, labels_by_stmt)
        text, data = self._emit(statements, symbols)
        text_base = self._text_base
        data_base = self._data_base
        entry = symbols.get("_start", text_base if text else data_base)
        return AssembledProgram(
            text=bytes(text),
            data=bytes(data),
            symbols=symbols,
            text_base=text_base,
            data_base=data_base,
            bss_size=bss_size,
            entry=entry,
            globals=tuple(global_names),
        )

    # -- pass 0: parse -----------------------------------------------------

    def _parse(self, source: str):
        statements: list[_Statement] = []
        pending_labels: list[tuple[str, int]] = []
        labels_by_stmt: dict[int, list[str]] = {}
        global_names: list[str] = []
        section = ".text"
        bss_size = 0
        seen_labels: set[str] = set()

        def attach_labels():
            if pending_labels:
                labels_by_stmt.setdefault(len(statements), []).extend(
                    name for name, _ in pending_labels
                )
                pending_labels.clear()

        for line_no, raw_line in enumerate(source.splitlines(), start=1):
            line = raw_line.split(";", 1)[0]
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            # Labels (possibly several, possibly followed by an instruction).
            while True:
                match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*(.*)$", line)
                if not match:
                    break
                label, line = match.group(1), match.group(2).strip()
                if label in seen_labels:
                    raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
                seen_labels.add(label)
                pending_labels.append((label, line_no))
            if not line:
                continue
            parts = line.split(None, 1)
            head = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            if head.startswith("."):
                section, bss_size = self._parse_directive(
                    head, rest, line_no, section, bss_size, statements,
                    attach_labels, global_names,
                )
                continue
            info = MNEMONICS.get(head)
            if info is None:
                raise AssemblerError(f"line {line_no}: unknown mnemonic {head!r}")
            attach_labels()
            statements.append(
                _Statement(
                    kind="insn",
                    line_no=line_no,
                    section=section,
                    mnemonic=head,
                    operands=tuple(_split_operands(rest)),
                    size=instruction_length(info.op),
                )
            )
        # Trailing labels attach to a zero-size sentinel so they resolve to
        # the end of the current section.
        if pending_labels:
            attach_labels_index = len(statements)
            labels_by_stmt.setdefault(attach_labels_index, []).extend(
                name for name, _ in pending_labels
            )
            statements.append(
                _Statement(kind="space", line_no=pending_labels[-1][1],
                           section=section, size=0)
            )
            pending_labels.clear()
        return statements, labels_by_stmt, global_names, bss_size

    def _parse_directive(self, head, rest, line_no, section, bss_size,
                         statements, attach_labels, global_names):
        if head in (".text", ".data"):
            return head, bss_size
        if head == ".global":
            global_names.extend(name.strip() for name in rest.split(",") if name.strip())
            return section, bss_size
        if head == ".bss":
            # ".bss N" reserves N zeroed bytes after the data section.
            attach_labels()
            return section, bss_size + _parse_int(rest, line_no)
        attach_labels()
        if head == ".byte":
            payload = bytes(
                _parse_int(token, line_no) & 0xFF for token in rest.split(",")
            )
            statements.append(_Statement("byte", line_no, section,
                                         payload=payload, size=len(payload)))
        elif head == ".word":
            values = [_parse_int(token, line_no) & 0xFFFFFFFF for token in rest.split(",")]
            payload = b"".join(value.to_bytes(4, "little") for value in values)
            statements.append(_Statement("byte", line_no, section,
                                         payload=payload, size=len(payload)))
        elif head in (".ascii", ".asciz"):
            text = rest.strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise AssemblerError(f"line {line_no}: {head} expects a quoted string")
            payload = text[1:-1].encode().decode("unicode_escape").encode("latin-1")
            if head == ".asciz":
                payload += b"\x00"
            statements.append(_Statement("byte", line_no, section,
                                         payload=payload, size=len(payload)))
        elif head == ".space":
            count = _parse_int(rest, line_no)
            if count < 0:
                raise AssemblerError(f"line {line_no}: negative .space")
            statements.append(_Statement("byte", line_no, section,
                                         payload=b"\x00" * count, size=count))
        elif head == ".align":
            alignment = _parse_int(rest, line_no)
            if alignment <= 0 or alignment & (alignment - 1):
                raise AssemblerError(f"line {line_no}: .align expects a power of two")
            statements.append(_Statement("align", line_no, section, size=alignment))
        else:
            raise AssemblerError(f"line {line_no}: unknown directive {head!r}")
        return section, bss_size

    # -- pass 1: layout ----------------------------------------------------

    def _layout(self, statements, labels_by_stmt) -> dict[str, int]:
        offsets = {".text": 0, ".data": 0}
        for statement in statements:
            offset = offsets[statement.section]
            if statement.kind == "align":
                alignment = statement.size
                padded = (offset + alignment - 1) & ~(alignment - 1)
                statement.offset = offset
                statement.size = padded - offset
                offsets[statement.section] = padded
                continue
            statement.offset = offset
            offsets[statement.section] = offset + statement.size
        text_size = offsets[".text"]
        data_base = self._text_base + text_size
        data_base = (data_base + self._data_align - 1) & ~(self._data_align - 1)
        self._data_base = data_base

        bases = {".text": self._text_base, ".data": data_base}
        symbols: dict[str, int] = {}
        section_end = {
            ".text": self._text_base + offsets[".text"],
            ".data": data_base + offsets[".data"],
        }
        for index, labels in labels_by_stmt.items():
            if index < len(statements):
                statement = statements[index]
                address = bases[statement.section] + statement.offset
            else:  # labels at the very end of the program
                address = section_end[statements[-1].section] if statements else self._text_base
            for label in labels:
                symbols[label] = address
        return symbols

    # -- pass 2: emit ------------------------------------------------------

    def _emit(self, statements, symbols):
        sections = {".text": bytearray(), ".data": bytearray()}
        bases = {".text": self._text_base, ".data": self._data_base}
        for statement in statements:
            buffer = sections[statement.section]
            if len(buffer) != statement.offset:
                buffer.extend(b"\x00" * (statement.offset - len(buffer)))
            if statement.kind == "insn":
                buffer.extend(self._encode_statement(statement, symbols, bases))
            elif statement.kind in ("byte",):
                buffer.extend(statement.payload)
            elif statement.kind == "align":
                buffer.extend(b"\x00" * statement.size)
            elif statement.kind == "space":
                buffer.extend(b"\x00" * statement.size)
        return sections[".text"], sections[".data"]

    def _resolve_value(self, token: str, symbols, line_no: int) -> int:
        token = token.strip()
        # label+offset / label-offset arithmetic
        match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*([+-])\s*(.+)$", token)
        if match and match.group(1) in symbols:
            base = symbols[match.group(1)]
            delta = _parse_int(match.group(3), line_no)
            return base + delta if match.group(2) == "+" else base - delta
        if _LABEL_RE.match(token) and token in symbols:
            return symbols[token]
        if _LABEL_RE.match(token) and token not in REGISTER_ALIASES:
            # Looks like a label but is not defined and not a register.
            if not token.lstrip("-").isdigit() and not token.lower().startswith("0x") \
                    and not token.startswith("'"):
                raise AssemblerError(f"line {line_no}: undefined symbol {token!r}")
        return _parse_int(token, line_no)

    def _parse_register(self, token: str, line_no: int) -> int:
        register = REGISTER_ALIASES.get(token.strip().lower())
        if register is None:
            raise AssemblerError(f"line {line_no}: expected register, got {token!r}")
        return register

    def _parse_mem(self, token: str, symbols, line_no: int) -> tuple[int, int]:
        match = _MEM_RE.match(token.strip())
        if not match:
            raise AssemblerError(f"line {line_no}: expected memory operand, got {token!r}")
        register = self._parse_register(match.group("reg"), line_no)
        displacement = 0
        if match.group("disp"):
            displacement = self._resolve_value(match.group("disp"), symbols, line_no)
            if match.group("sign") == "-":
                displacement = -displacement
        return register, displacement

    def _encode_statement(self, statement, symbols, bases) -> bytes:
        info = MNEMONICS[statement.mnemonic]
        operands = statement.operands
        line_no = statement.line_no
        address = bases[statement.section] + statement.offset

        def expect(count):
            if len(operands) != count:
                raise AssemblerError(
                    f"line {line_no}: {statement.mnemonic} expects {count} operand(s), "
                    f"got {len(operands)}"
                )

        fmt = info.fmt
        if fmt is Fmt.NONE:
            expect(0)
            return encode(info.op)
        if fmt is Fmt.REG:
            expect(1)
            return encode(info.op, rd=self._parse_register(operands[0], line_no))
        if fmt is Fmt.REG_REG:
            expect(2)
            return encode(
                info.op,
                rd=self._parse_register(operands[0], line_no),
                rs=self._parse_register(operands[1], line_no),
            )
        if fmt is Fmt.REG_IMM:
            expect(2)
            return encode(
                info.op,
                rd=self._parse_register(operands[0], line_no),
                imm=self._resolve_value(operands[1], symbols, line_no),
            )
        if fmt is Fmt.REL:
            expect(1)
            target = self._resolve_value(operands[0], symbols, line_no)
            relative = target - (address + statement.size)
            return encode(info.op, imm=relative)
        # REG_REG_IMM: loads are "ld rd, [rs+disp]", stores are "st [rd+disp], rs",
        # lea is "lea rd, [rs+disp]".
        expect(2)
        if statement.mnemonic.startswith("st"):
            register, displacement = self._parse_mem(operands[0], symbols, line_no)
            return encode(
                info.op,
                rd=register,
                rs=self._parse_register(operands[1], line_no),
                imm=displacement,
            )
        register, displacement = self._parse_mem(operands[1], symbols, line_no)
        return encode(
            info.op,
            rd=self._parse_register(operands[0], line_no),
            rs=register,
            imm=displacement,
        )


def assemble(source: str, text_base: int = 0x1000) -> AssembledProgram:
    """Convenience wrapper: assemble ``source`` with default settings."""
    return Assembler(text_base=text_base).assemble(source)
