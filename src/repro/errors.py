"""Exception hierarchy for the VXA reproduction.

All library-specific errors derive from :class:`VxaError` so applications can
catch one base class.  Errors raised *on behalf of* a guest decoder (faults,
sandbox violations, resource exhaustion) derive from :class:`GuestFault`;
they indicate that an archived decoder misbehaved, never that the host is in
an inconsistent state -- this is the isolation property of paper section 2.4.
"""

from __future__ import annotations


class VxaError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Toolchain errors (ISA / assembler / ELF / vxc compiler)
# --------------------------------------------------------------------------

class InvalidInstructionError(VxaError):
    """An instruction could not be encoded or decoded.

    Decode failures carry the instruction offset and a machine-readable
    reason so static analysis (:mod:`repro.analysis`) can pinpoint
    ill-formed code in its report instead of parsing exception text.
    """

    def __init__(self, message: str, *, offset: int | None = None,
                 reason: str | None = None):
        super().__init__(message)
        self.offset = offset
        self.reason = reason or "invalid"


class AssemblerError(VxaError):
    """Assembly source was malformed (bad mnemonic, unknown label, ...)."""


class ElfFormatError(VxaError):
    """An ELF image was malformed or not a VXA-32 executable."""


class VxcError(VxaError):
    """Base class for vxc compiler errors."""


class VxcSyntaxError(VxcError):
    """vxc source failed to lex or parse."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class VxcSemanticError(VxcError):
    """vxc source is syntactically valid but semantically wrong."""


# --------------------------------------------------------------------------
# Virtual machine / guest faults
# --------------------------------------------------------------------------

class GuestFault(VxaError):
    """A guest decoder faulted; the host and VM remain consistent."""


class MemoryFault(GuestFault):
    """The guest accessed memory outside its sandbox."""

    def __init__(self, address: int, size: int, kind: str):
        super().__init__(f"guest {kind} fault: address=0x{address:08x} size={size}")
        self.address = address
        self.size = size
        self.kind = kind

    def __reduce__(self):
        # args holds the formatted message, not the constructor arguments, so
        # spell out how to rebuild the fault when it crosses a process
        # boundary (parallel extraction workers return faults by pickle).
        return (MemoryFault, (self.address, self.size, self.kind))


class IllegalInstructionFault(GuestFault):
    """The guest executed an illegal or unsafe instruction."""


class DivisionFault(GuestFault):
    """The guest divided by zero."""


class SyscallFault(GuestFault):
    """The guest made an invalid virtual system call."""


class ResourceLimitExceeded(GuestFault):
    """The guest exceeded an execution resource limit (fuel, output, memory)."""


class StackFault(GuestFault):
    """The guest stack pointer left the sandbox or overflowed."""


# --------------------------------------------------------------------------
# Codec and data format errors
# --------------------------------------------------------------------------

class CodecError(VxaError):
    """Encoded data is corrupt or not in the expected codec format."""


class FormatError(VxaError):
    """An uncompressed container (BMP/WAV/PPM) is malformed."""


# --------------------------------------------------------------------------
# Archive errors
# --------------------------------------------------------------------------

class ZipFormatError(VxaError):
    """A ZIP container is structurally malformed."""


class ArchiveError(VxaError):
    """A vxZIP archive violates the VXA conventions (missing decoder, ...)."""


class IntegrityError(ArchiveError):
    """An archive integrity check failed (CRC mismatch or decode failure)."""


class ImageVerificationError(ArchiveError):
    """A decoder image failed static verification under ``verify_images="reject"``.

    Raised *before* any VM runs the image, so a hostile or malformed decoder
    is refused at admission rather than merely contained at runtime.  Derives
    from :class:`ArchiveError` so integrity checks record the refusal as an
    ordinary member failure.
    """


class DecoderMissingError(ArchiveError):
    """An archived file references a decoder that is not present."""


class PathTraversalError(ArchiveError):
    """A member name would escape the extraction directory (zip-slip)."""
