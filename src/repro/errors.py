"""Exception hierarchy for the VXA reproduction.

All library-specific errors derive from :class:`VxaError` so applications can
catch one base class.  Errors raised *on behalf of* a guest decoder (faults,
sandbox violations, resource exhaustion) derive from :class:`GuestFault`;
they indicate that an archived decoder misbehaved, never that the host is in
an inconsistent state -- this is the isolation property of paper section 2.4.
"""

from __future__ import annotations


class VxaError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Toolchain errors (ISA / assembler / ELF / vxc compiler)
# --------------------------------------------------------------------------

class InvalidInstructionError(VxaError):
    """An instruction could not be encoded or decoded.

    Decode failures carry the instruction offset and a machine-readable
    reason so static analysis (:mod:`repro.analysis`) can pinpoint
    ill-formed code in its report instead of parsing exception text.
    """

    def __init__(self, message: str, *, offset: int | None = None,
                 reason: str | None = None):
        super().__init__(message)
        self.offset = offset
        self.reason = reason or "invalid"

    def __reduce__(self):
        # Rebuild through the constructor so offset/reason survive the
        # pickle boundary regardless of how args were formatted.
        return (_rebuild_invalid_instruction,
                (self.args[0], self.offset, self.reason))


class AssemblerError(VxaError):
    """Assembly source was malformed (bad mnemonic, unknown label, ...)."""


class ElfFormatError(VxaError):
    """An ELF image was malformed or not a VXA-32 executable."""


class VxcError(VxaError):
    """Base class for vxc compiler errors."""


class VxcSyntaxError(VxcError):
    """vxc source failed to lex or parse."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column

    def __reduce__(self):
        # The constructor *appends* the location to the message, so a naive
        # rebuild from the stored (already-formatted) message with the same
        # line/column would duplicate it.  Rebuild from the formatted
        # message with no location and restore line/column as state.
        return (VxcSyntaxError, (self.args[0],),
                {"line": self.line, "column": self.column})


class VxcSemanticError(VxcError):
    """vxc source is syntactically valid but semantically wrong."""


# --------------------------------------------------------------------------
# Virtual machine / guest faults
# --------------------------------------------------------------------------

class GuestFault(VxaError):
    """A guest decoder faulted; the host and VM remain consistent."""


class MemoryFault(GuestFault):
    """The guest accessed memory outside its sandbox."""

    def __init__(self, address: int, size: int, kind: str):
        super().__init__(f"guest {kind} fault: address=0x{address:08x} size={size}")
        self.address = address
        self.size = size
        self.kind = kind

    def __reduce__(self):
        # args holds the formatted message, not the constructor arguments, so
        # spell out how to rebuild the fault when it crosses a process
        # boundary (parallel extraction workers return faults by pickle).
        return (MemoryFault, (self.address, self.size, self.kind))


class IllegalInstructionFault(GuestFault):
    """The guest executed an illegal or unsafe instruction."""


class DivisionFault(GuestFault):
    """The guest divided by zero."""


class SyscallFault(GuestFault):
    """The guest made an invalid virtual system call."""


class ResourceLimitExceeded(GuestFault):
    """The guest exceeded an execution resource limit (fuel, output, memory)."""


class DeadlineExceeded(ResourceLimitExceeded):
    """The guest ran past its wall-clock deadline (``member_deadline``).

    Derives from :class:`ResourceLimitExceeded` so every handler that
    already contains a fuel-exhausted decoder contains a wedged one too.
    ``instructions`` records the guest fuel consumed when the deadline
    fired, when the engine knows it.
    """

    def __init__(self, message: str, *, deadline: float | None = None,
                 instructions: int | None = None):
        super().__init__(message)
        self.deadline = deadline
        self.instructions = instructions

    def __reduce__(self):
        return (_rebuild_deadline_exceeded,
                (self.args[0], self.deadline, self.instructions))


class InjectedFault(GuestFault):
    """A deterministic fault raised by an active :mod:`repro.faults` plan.

    Only ever raised when a :class:`~repro.faults.FaultPlan` is installed
    (tests and chaos drills); production runs never construct one.
    """


class StackFault(GuestFault):
    """The guest stack pointer left the sandbox or overflowed."""


# --------------------------------------------------------------------------
# Codec and data format errors
# --------------------------------------------------------------------------

class CodecError(VxaError):
    """Encoded data is corrupt or not in the expected codec format."""


class FormatError(VxaError):
    """An uncompressed container (BMP/WAV/PPM) is malformed."""


# --------------------------------------------------------------------------
# Archive errors
# --------------------------------------------------------------------------

class ZipFormatError(VxaError):
    """A ZIP container is structurally malformed."""


class ArchiveError(VxaError):
    """A vxZIP archive violates the VXA conventions (missing decoder, ...)."""


class IntegrityError(ArchiveError):
    """An archive integrity check failed (CRC mismatch or decode failure)."""


class ImageVerificationError(ArchiveError):
    """A decoder image failed static verification under ``verify_images="reject"``.

    Raised *before* any VM runs the image, so a hostile or malformed decoder
    is refused at admission rather than merely contained at runtime.  Derives
    from :class:`ArchiveError` so integrity checks record the refusal as an
    ordinary member failure.
    """


class DecoderMissingError(ArchiveError):
    """An archived file references a decoder that is not present."""


class ArchiveDamagedError(ArchiveError):
    """The archive media is damaged beyond what the caller allows.

    Raised when opening a corrupt/torn archive under ``on_damage="reject"``,
    or when repair finds nothing salvageable.  Not retryable: the bytes on
    disk will not get better by asking again.
    """


class PathTraversalError(ArchiveError):
    """A member name would escape the extraction directory (zip-slip)."""


# --------------------------------------------------------------------------
# Parallel execution errors
# --------------------------------------------------------------------------

class WorkerCrashed(VxaError):
    """A pool worker died (or simulated dying) while processing a shard.

    This is a *host-level* event, not a guest fault: the worker process was
    killed (``BrokenProcessPool``), or an injected ``kill-worker`` fault
    fired in a thread/serial worker.  The parallel engine converts it into
    a reschedule of the shard's unfinished members; under
    ``on_error="abort"`` it propagates to the caller.
    """

    def __init__(self, message: str, *, member: str | None = None,
                 worker: int | None = None):
        super().__init__(message)
        self.member = member
        self.worker = worker

    def __reduce__(self):
        return (_rebuild_worker_crashed,
                (self.args[0], self.member, self.worker))


# --------------------------------------------------------------------------
# Pickle rebuild helpers (keyword-only constructors cannot be re-invoked
# from a plain args tuple; workers report structured errors by pickle)
# --------------------------------------------------------------------------

def _rebuild_invalid_instruction(message, offset, reason):
    return InvalidInstructionError(message, offset=offset, reason=reason)


def _rebuild_deadline_exceeded(message, deadline, instructions):
    return DeadlineExceeded(message, deadline=deadline,
                            instructions=instructions)


def _rebuild_worker_crashed(message, member, worker):
    return WorkerCrashed(message, member=member, worker=worker)
