"""Figure 7: performance of virtualised decoders.

The paper measures user-mode CPU time for six decoders running natively and
under the vx32 VMM, normalised to native x86-32 execution; virtualisation
costs 0-11% on x86-32 hosts.  The vorbis decoder initially lost 29% because
of subroutine calls in its inner loop; inlining them cut the gap to 11%.

In this reproduction "native" is the codec's Python decoder running in the
archiver process and "virtualised" is the archived vxc decoder running on
the VXA virtual machine (dynamic-translation engine), with the pure
interpreter shown as the portable-emulation bound of section 5.4.  Absolute
ratios are far larger than the paper's (the VM is hosted on CPython, not on
hardware-assisted x86 sandboxing); the *shape* being reproduced is the
per-decoder ordering, the translator-vs-interpreter gap, and the inlining
anecdote.  See EXPERIMENTS.md.
"""

import pytest
from conftest import emit_report

from repro.bench.harness import measure_workload, time_callable
from repro.bench.reporting import format_ratio, format_table
from repro.vm.machine import ENGINE_TRANSLATOR, VirtualMachine
from repro.vxc.compiler import compile_source

DECODER_ORDER = ("vxz", "vxbwt", "vximg", "vxjp2", "vxflac", "vxsnd")

#: Paper Figure 7 normalised vx32/x86-32 times (native = 1.0), for the
#: side-by-side column in the report.
PAPER_FIGURE7_X86_32 = {
    "vxz": 1.06,     # zlib
    "vxbwt": 1.05,   # bzip2
    "vximg": 0.99,   # jpeg (slightly faster under vx32)
    "vxjp2": 1.08,   # jp2
    "vxflac": 1.05,  # flac
    "vxsnd": 1.11,   # vorbis (after inlining)
}

_timings = {}


def _measure(name, workloads, include_interpreter=False):
    if name not in _timings:
        _timings[name] = measure_workload(
            workloads[name], include_interpreter=include_interpreter
        )
    return _timings[name]


@pytest.mark.parametrize("name", DECODER_ORDER)
def test_figure7_decoder_under_vm(benchmark, name, workloads):
    """Benchmark each archived decoder running inside the VM (translator)."""
    workload = workloads[name]
    image = workload.codec.guest_decoder_image()

    def decode_under_vm():
        vm = VirtualMachine(image, engine=ENGINE_TRANSLATOR)
        result = vm.decode(workload.encoded)
        assert result.exit_code == 0
        return result

    result = benchmark.pedantic(decode_under_vm, rounds=1, iterations=1)
    benchmark.extra_info["decoder"] = name
    benchmark.extra_info["guest_instructions"] = result.stats.instructions
    benchmark.extra_info["output_bytes"] = result.stats.bytes_written


def test_figure7_summary(benchmark, workloads):
    """Regenerate the Figure 7 series: normalised decode time per decoder."""

    def collect():
        rows = []
        for name in DECODER_ORDER:
            include_interp = name in ("vxz", "vxsnd")
            timing = _measure(name, workloads, include_interpreter=include_interp)
            rows.append(timing)
        return rows

    timings = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for timing in timings:
        interp = (
            format_ratio(timing.interpreter_slowdown)
            if timing.interpreter_slowdown is not None
            else "-"
        )
        rows.append(
            [
                timing.decoder,
                f"{timing.native_seconds * 1000:.1f}ms",
                f"{timing.translator_seconds * 1000:.0f}ms",
                format_ratio(timing.translator_slowdown),
                interp,
                f"{PAPER_FIGURE7_X86_32[timing.decoder]:.2f}x",
                f"{timing.guest_instructions:,}",
            ]
        )
    table = format_table(
        [
            "Decoder",
            "Native",
            "VXA VM (translator)",
            "VM/native",
            "Interp/native",
            "Paper vx32/native",
            "Guest instructions",
        ],
        rows,
        title="Figure 7: Performance of Virtualized Decoders (reproduction)",
    )
    emit_report("figure7_decoder_performance", table)

    # Shape assertions: every decoder works under the VM, virtualisation has a
    # cost, and the translator beats the pure interpreter wherever measured.
    for timing in timings:
        assert timing.translator_slowdown > 1.0
        if timing.interpreter_slowdown is not None:
            assert timing.interpreter_slowdown > timing.translator_slowdown


# -- the vorbis inlining anecdote -----------------------------------------------------

_CALL_HEAVY = r"""
int state;
int mix(int a, int b) { return ((a * 31) + b) ^ (a >> 7); }
int step(int value) { state = mix(state, value); return state; }
byte buffer[4096];
int main() {
    int i;
    int n;
    int total;
    state = 12345;
    total = 0;
    while (1) {
        n = read(0, buffer, 4096);
        if (n <= 0) { break; }
        for (i = 0; i < n; i = i + 1) {
            buffer[i] = step(buffer[i]) & 255;      // helper call per sample
        }
        write_full(1, buffer, n);
        total = total + n;
    }
    return 0;
}
"""

_INLINED = r"""
int state;
byte buffer[4096];
int main() {
    int i;
    int n;
    int total;
    state = 12345;
    total = 0;
    while (1) {
        n = read(0, buffer, 4096);
        if (n <= 0) { break; }
        for (i = 0; i < n; i = i + 1) {
            state = ((state * 31) + buffer[i]) ^ (state >> 7);   // inlined
            buffer[i] = state & 255;
        }
        write_full(1, buffer, n);
        total = total + n;
    }
    return 0;
}
"""


def test_figure7_inlining_anecdote(benchmark):
    """Reproduce the vorbis observation: per-sample helper calls in the inner
    loop magnify the VM's flow-control overhead (return-address lookups);
    inlining them narrows the gap."""
    payload = bytes(range(256)) * 256          # 64 KB through the filter

    call_heavy = compile_source(_CALL_HEAVY, codec_name="anecdote-calls")
    inlined = compile_source(_INLINED, codec_name="anecdote-inlined")

    def run(image_bytes):
        vm = VirtualMachine(image_bytes, engine=ENGINE_TRANSLATOR)
        result = vm.decode(payload)
        assert result.exit_code == 0
        return result

    call_seconds = time_callable(lambda: run(call_heavy.elf))
    inlined_result = benchmark.pedantic(lambda: run(inlined.elf), rounds=1, iterations=1)
    inlined_seconds = time_callable(lambda: run(inlined.elf))

    ratio = call_seconds / inlined_seconds
    table = format_table(
        ["Variant", "VM time", "Relative"],
        [
            ["helper call per sample", f"{call_seconds * 1000:.0f}ms", f"{ratio:.2f}x"],
            ["inlined inner loop", f"{inlined_seconds * 1000:.0f}ms", "1.00x"],
        ],
        title="Figure 7 anecdote: inner-loop subroutine calls vs. inlining "
              "(paper: vorbis 29% -> 11% slowdown after inlining)",
    )
    emit_report("figure7_inlining_anecdote", table)

    assert inlined_result.stats.instructions > 0
    assert ratio > 1.1        # calls in the inner loop must cost measurably more
