"""Time the six Figure-7 decoders and write machine-readable ``BENCH_vm.json``.

Stand-alone perf tracker for the VM translation engine (run it from the repo
root)::

    PYTHONPATH=src python benchmarks/bench_vm.py

Each decoder's workload is decoded natively and under the VXA VM's
superblock translator.  Two VM timings are recorded:

* ``vm_cold_seconds`` -- a fresh VM, first decode: includes superblock
  translation and compilation,
* ``vm_warm_seconds`` -- the same VM decoding again with its code cache
  populated: the steady state an archive session reaches after its first
  member, and the closest analogue of the paper's measurement.

Each decoder is additionally timed with analysis-driven guard elision
disabled (``analysis_elision=False``), isolating what the static verifier's
proofs buy at run time; ``elision_speedup_warm`` is the ratio of the two
warm timings (> 1 means elision helps).

The output lands in ``BENCH_vm.json`` at the repository root so successive
PRs can track the VM/native trajectory; the headline ``geomean`` ratios are
the ones the ROADMAP's "VM performance" section quotes.
"""

from __future__ import annotations

import json
import math
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import standard_workloads, time_callable  # noqa: E402
from repro.vm.code_cache import CodeCache                          # noqa: E402
from repro.vm.machine import ENGINE_TRANSLATOR, VirtualMachine     # noqa: E402

DECODER_ORDER = ("vxz", "vxbwt", "vximg", "vxjp2", "vxflac", "vxsnd")


def _geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(value) for value in values) / len(values))


def _time_vm(image: bytes, encoded: bytes, *, analysis_elision: bool,
             warm_repeats: int = 3):
    cache = CodeCache(shared=True)
    vm = VirtualMachine(image, engine=ENGINE_TRANSLATOR, code_cache=cache,
                        analysis_elision=analysis_elision)
    start = time.perf_counter()
    cold = vm.decode(encoded)
    cold_seconds = time.perf_counter() - start
    # Best-of-N warm runs: the minimum is the least noise-contaminated
    # estimate of the steady state on a busy box.
    warm_seconds = float("inf")
    for _ in range(warm_repeats):
        start = time.perf_counter()
        warm = vm.decode(encoded)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    return cold, warm, cold_seconds, warm_seconds


def bench_decoder(workload) -> dict:
    codec = workload.codec
    encoded = workload.encoded
    native_seconds = time_callable(lambda: codec.decode(encoded), repeats=3)

    image = codec.guest_decoder_image()
    cold, warm, vm_cold_seconds, vm_warm_seconds = _time_vm(
        image, encoded, analysis_elision=True)
    if cold.exit_code != 0:
        raise RuntimeError(f"guest decoder {codec.name} failed: {cold.stderr!r}")
    if warm.output != cold.output:
        raise RuntimeError(f"warm decode diverged for {codec.name}")

    # Elision ablation: identical VM with every dynamic bounds guard kept.
    plain_cold, plain_warm, _, plain_warm_seconds = _time_vm(
        image, encoded, analysis_elision=False)
    if plain_warm.output != cold.output:
        raise RuntimeError(f"no-elision decode diverged for {codec.name}")
    if plain_cold.stats.guards_elided != 0:
        raise RuntimeError(f"ablation leaked elision for {codec.name}")

    stats = cold.stats
    return {
        "native_seconds": round(native_seconds, 6),
        "vm_cold_seconds": round(vm_cold_seconds, 6),
        "vm_warm_seconds": round(vm_warm_seconds, 6),
        "vm_warm_seconds_no_elision": round(plain_warm_seconds, 6),
        "vm_native_ratio_cold": round(vm_cold_seconds / native_seconds, 2),
        "vm_native_ratio_warm": round(vm_warm_seconds / native_seconds, 2),
        "elision_speedup_warm": round(plain_warm_seconds / vm_warm_seconds, 3),
        "guards_elided": stats.guards_elided,
        "guest_instructions": stats.instructions,
        "fragments_translated": stats.fragments_translated,
        "chained_branches": stats.chained_branches,
        "output_bytes": stats.bytes_written,
    }


def main() -> int:
    workloads = standard_workloads()
    decoders = {}
    for name in DECODER_ORDER:
        decoders[name] = bench_decoder(workloads[name])
        row = decoders[name]
        print(f"{name:7s} native {row['native_seconds'] * 1000:7.1f}ms  "
              f"vm cold {row['vm_cold_seconds'] * 1000:7.1f}ms "
              f"({row['vm_native_ratio_cold']:.1f}x)  "
              f"warm {row['vm_warm_seconds'] * 1000:7.1f}ms "
              f"({row['vm_native_ratio_warm']:.1f}x)  "
              f"elision {row['elision_speedup_warm']:.2f}x "
              f"({row['guards_elided']} guard(s))")

    payload = {
        "schema": "vxa-bench-vm/1",
        "generated_unix_time": round(time.time(), 1),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "engine": ENGINE_TRANSLATOR,
        "decoders": decoders,
        "geomean_vm_native_ratio_cold": round(_geomean(
            row["vm_native_ratio_cold"] for row in decoders.values()), 2),
        "geomean_vm_native_ratio_warm": round(_geomean(
            row["vm_native_ratio_warm"] for row in decoders.values()), 2),
        "geomean_elision_speedup_warm": round(_geomean(
            row["elision_speedup_warm"] for row in decoders.values()), 3),
    }
    target = REPO_ROOT / "BENCH_vm.json"
    target.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"geomean VM/native: cold {payload['geomean_vm_native_ratio_cold']}x, "
          f"warm {payload['geomean_vm_native_ratio_warm']}x, "
          f"elision speedup {payload['geomean_elision_speedup_warm']}x  -> {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
