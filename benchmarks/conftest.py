"""Shared fixtures and reporting plumbing for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows.  Reports bypass pytest's output capture (so they are
visible in ``pytest benchmarks/ --benchmark-only`` runs and in the tee'd
bench_output.txt) and are also appended to ``benchmarks/reports/`` for later
inspection; EXPERIMENTS.md summarises them.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

from repro.bench.harness import standard_workloads
from repro.codecs.registry import default_registry

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def emit_report(name: str, text: str) -> None:
    """Print a benchmark report past pytest capture and persist it to disk."""
    stream = sys.__stdout__ or sys.stdout
    stream.write("\n" + text + "\n")
    stream.flush()
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def workloads(registry):
    """The six Figure 7 decoder workloads (built once per session)."""
    return standard_workloads(registry=registry)
