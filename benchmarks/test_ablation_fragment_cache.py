"""Ablation: the translated-fragment cache and the translator itself.

vx32's viability rests on caching translated code fragments and reusing them
whenever the decoder jumps to the same entry point again (paper section 4.2).
This ablation measures the vxz guest decoder under three configurations:

* dynamic translation with the fragment cache (the vx32 model),
* dynamic translation with the cache disabled (every block re-translated),
* the pure instruction-at-a-time interpreter (the portable-emulation bound
  discussed in section 5.4).
"""

from conftest import emit_report

from repro.bench.reporting import format_ratio, format_table
from repro.vm.machine import ENGINE_INTERPRETER, ENGINE_TRANSLATOR, VirtualMachine
from repro.bench.harness import time_callable


def _run(image, encoded, *, engine, use_cache=True):
    vm = VirtualMachine(image, engine=engine, use_fragment_cache=use_cache)
    result = vm.decode(encoded)
    assert result.exit_code == 0
    return result


def test_ablation_fragment_cache(benchmark, workloads):
    workload = workloads["vxz"]
    # Use a small slice of the workload for the no-cache run: re-translating
    # every executed block is extremely slow, which is precisely the point.
    small_encoded = workload.codec.encode(
        workload.codec.decode(workload.encoded)[: workload.original_size // 8]
    )
    image = workload.codec.guest_decoder_image()

    cached_result = benchmark.pedantic(
        lambda: _run(image, workload.encoded, engine=ENGINE_TRANSLATOR),
        rounds=1, iterations=1,
    )
    cached_seconds = time_callable(
        lambda: _run(image, workload.encoded, engine=ENGINE_TRANSLATOR)
    )
    interpreter_seconds = time_callable(
        lambda: _run(image, workload.encoded, engine=ENGINE_INTERPRETER)
    )
    cached_small = time_callable(
        lambda: _run(image, small_encoded, engine=ENGINE_TRANSLATOR)
    )
    uncached_small = time_callable(
        lambda: _run(image, small_encoded, engine=ENGINE_TRANSLATOR, use_cache=False)
    )

    stats = cached_result.stats
    hit_rate = stats.fragment_cache_hits / max(
        1, stats.fragment_cache_hits + stats.fragment_cache_misses
    )
    rows = [
        ["translator + fragment cache", f"{cached_seconds * 1000:.0f}ms", "1.00x",
         f"cache hit rate {hit_rate * 100:.2f}%"],
        ["interpreter (no translation)", f"{interpreter_seconds * 1000:.0f}ms",
         format_ratio(interpreter_seconds / cached_seconds), "portable-emulation bound"],
        ["translator, cache disabled (quarter workload)", f"{uncached_small * 1000:.0f}ms",
         format_ratio(uncached_small / cached_small),
         "every block re-scanned and re-translated"],
    ]
    table = format_table(
        ["Configuration", "Decode time", "Relative to cached translator", "Notes"],
        rows,
        title="Ablation: fragment cache and dynamic translation (vxz decoder)",
    )
    emit_report("ablation_fragment_cache", table)

    # The cache must be doing nearly all the work, and removing either the
    # cache or translation must cost at least 2x.
    assert hit_rate > 0.95
    assert interpreter_seconds > 2 * cached_seconds
    assert uncached_small > 2 * cached_small
