"""vxserve under concurrent clients; writes ``BENCH_serve.json``.

Stand-alone perf tracker for the overload-safe service layer (run from the
repo root)::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]

Three scenarios against a real :class:`BatchService` on a unix socket
(thread executor -- the in-process flavour CI can afford):

* **throughput** -- closed-loop ``check`` requests from 1..N concurrent
  clients; records req/s and p50/p99 latency per client count.
* **overload** -- more clients than execution slots against a small gate,
  once with a one-shot client (counting structured sheds) and once with
  the retrying client (which must complete every request).
* **gate overhead** -- serial request latency with the admission gate
  effectively off (unbounded) vs on (bounded + queue), to price the
  admission bookkeeping on the uncontended path; the target is <5%.

Decoder VMs are CPU-bound pure Python, so on a single-core box concurrent
clients mostly interleave rather than overlap -- the JSON says so instead
of inventing scaling numbers.  ``--smoke`` is the CI entry point: tiny
archive, few requests, hard correctness assertions.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import shutil
import sys
import tempfile
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import repro.api as vxa                                            # noqa: E402
from repro.api.options import EXECUTOR_THREAD                      # noqa: E402
from repro.client import VxServeClient, VxServeError               # noqa: E402
from repro.parallel.service import BatchService                    # noqa: E402
from repro.workloads import synthetic_log_bytes                    # noqa: E402

OUTPUT_PATH = REPO_ROOT / "BENCH_serve.json"


def build_archive(path: pathlib.Path, *, smoke: bool) -> dict:
    members = 3 if smoke else 5
    size = 600 if smoke else 1_500
    with vxa.create(path) as builder:
        for index in range(members):
            builder.add(f"serve{index}.txt",
                        synthetic_log_bytes(size + 37 * index, seed=index),
                        codec="vxz")
    return {"members": members, "archive_bytes": path.stat().st_size}


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class Served:
    """One BatchService on a fresh unix socket, torn down on close()."""

    def __init__(self, work_dir: pathlib.Path, tag: str, **service_kwargs):
        service_kwargs.setdefault("jobs", 2)
        service_kwargs.setdefault("executor", EXECUTOR_THREAD)
        self.service = BatchService(**service_kwargs)
        self.socket_path = str(work_dir / f"{tag}.sock")
        self._thread = threading.Thread(
            target=self.service.serve_socket, args=(self.socket_path,),
            daemon=True)
        self._thread.start()
        deadline = time.monotonic() + 10
        while not os.path.exists(self.socket_path):
            if time.monotonic() > deadline:
                raise SystemExit("FATAL: vxserve socket never appeared")
            time.sleep(0.01)

    def close(self) -> None:
        self.service._stopping.set()
        self.service.close()
        self._thread.join(timeout=2)


def closed_loop(socket_path: str, archive: str, clients: int,
                requests_each: int, *, retries: int = 8) -> dict:
    """``clients`` threads each issue ``requests_each`` check requests."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []

    def worker(index: int) -> None:
        with VxServeClient(socket_path, client_id=f"bench{index}",
                           retries=retries, base_delay=0.01, max_delay=0.2,
                           timeout=120) as client:
            for _ in range(requests_each):
                start = time.perf_counter()
                try:
                    result = client.check(archive)
                except VxServeError as error:
                    errors.append(repr(error))
                    return
                latencies[index].append(time.perf_counter() - start)
                if not result["ok"]:
                    errors.append(f"check reported failure: {result}")
                    return

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise SystemExit(f"FATAL: bench client failed: {errors[0]}")
    flat = [sample for series in latencies for sample in series]
    return {
        "clients": clients,
        "requests": len(flat),
        "elapsed_seconds": round(elapsed, 4),
        "requests_per_second": round(len(flat) / elapsed, 2),
        "p50_seconds": round(percentile(flat, 0.50), 4),
        "p99_seconds": round(percentile(flat, 0.99), 4),
    }


def bench_throughput(work_dir: pathlib.Path, archive: str, *,
                     smoke: bool) -> list[dict]:
    client_counts = [1, 2] if smoke else [1, 4]
    requests_each = 4 if smoke else 20
    served = Served(work_dir, "throughput", max_inflight=8, queue_depth=16)
    try:
        # Warm the pool's decoder sessions out of the measurements.
        closed_loop(served.socket_path, archive, 1, 2)
        return [closed_loop(served.socket_path, archive, clients,
                            requests_each)
                for clients in client_counts]
    finally:
        served.close()


def bench_overload(work_dir: pathlib.Path, archive: str, *,
                   smoke: bool) -> dict:
    clients = 4 if smoke else 6
    requests_each = 3 if smoke else 8
    served = Served(work_dir, "overload", max_inflight=2, queue_depth=1,
                    queue_timeout=0.05)
    try:
        # One-shot clients: everything past the gate+queue is shed, and
        # every shed is a structured response, never a dropped connection.
        shed = completed = 0
        lock = threading.Lock()

        def one_shot_worker(index: int) -> None:
            nonlocal shed, completed
            with VxServeClient(served.socket_path, retries=0,
                               client_id=f"oneshot{index}",
                               timeout=120) as client:
                for _ in range(requests_each):
                    try:
                        client.check(archive)
                        with lock:
                            completed += 1
                    except VxServeError as error:
                        if error.code != "overloaded":
                            raise SystemExit(
                                f"FATAL: unexpected rejection {error!r}")
                        with lock:
                            shed += 1

        threads = [threading.Thread(target=one_shot_worker, args=(index,))
                   for index in range(clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        one_shot_elapsed = time.perf_counter() - started
        total = clients * requests_each
        if shed + completed != total:
            raise SystemExit("FATAL: lost responses under overload")

        # The retrying client rides out the same overload and completes
        # every request.
        retry_run = closed_loop(served.socket_path, archive, clients,
                                requests_each, retries=20)
        stats = served.service.handle({"op": "stats"})["result"]
        return {
            "max_inflight": 2,
            "queue_depth": 1,
            "clients": clients,
            "requests_per_client": requests_each,
            "one_shot": {
                "completed": completed,
                "shed_overloaded": shed,
                "elapsed_seconds": round(one_shot_elapsed, 4),
            },
            "retrying": retry_run,
            "service_counters": {
                name: stats["counters"][name]
                for name in ("shed_overloaded_total", "queued_total",
                             "admitted_total", "completed_total")
            },
        }
    finally:
        served.close()


def bench_gate_overhead(work_dir: pathlib.Path, archive: str, *,
                        smoke: bool) -> dict:
    requests = 10 if smoke else 40
    means = {}
    for tag, kwargs in (("gate_off", {"max_inflight": None}),
                        ("gate_on", {"max_inflight": 8, "queue_depth": 16})):
        served = Served(work_dir, tag, **kwargs)
        try:
            closed_loop(served.socket_path, archive, 1, 2)  # warm-up
            run = closed_loop(served.socket_path, archive, 1, requests)
            means[tag] = run["elapsed_seconds"] / run["requests"]
        finally:
            served.close()
    overhead = (means["gate_on"] - means["gate_off"]) / means["gate_off"]
    return {
        "requests": requests,
        "mean_seconds_gate_off": round(means["gate_off"], 5),
        "mean_seconds_gate_on": round(means["gate_on"], 5),
        "overhead_fraction": round(overhead, 4),
        "target": "under 0.05 on the uncontended path",
    }


def run_benchmark(*, smoke: bool) -> dict:
    cpu_count = os.cpu_count() or 1
    work_dir = pathlib.Path(tempfile.mkdtemp(prefix="bench-serve-"))
    try:
        archive_path = work_dir / "serve-bench.zip"
        archive_info = build_archive(archive_path, smoke=smoke)
        archive = str(archive_path)
        report = {
            "benchmark": "vxserve under concurrent clients (repro.client)",
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "smoke": smoke,
            "platform": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cpu_count": cpu_count,
            },
            "executor": EXECUTOR_THREAD,
            "archive": archive_info,
            "throughput": bench_throughput(work_dir, archive, smoke=smoke),
            "overload": bench_overload(work_dir, archive, smoke=smoke),
            "gate_overhead": bench_gate_overhead(work_dir, archive,
                                                 smoke=smoke),
        }
        if cpu_count < 2:
            report["note"] = (
                f"{cpu_count} core(s): decoder work is CPU-bound pure "
                f"Python, so concurrent clients interleave rather than "
                f"overlap; req/s figures measure the service and admission "
                f"path, not hardware scaling")
        return report
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload + hard assertions (CI)")
    parser.add_argument("--output", default=str(OUTPUT_PATH),
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = run_benchmark(smoke=args.smoke)
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")

    for run in report["throughput"]:
        print(f"clients={run['clients']}: {run['requests_per_second']} req/s "
              f"p50 {run['p50_seconds']}s p99 {run['p99_seconds']}s")
    overload = report["overload"]
    print(f"overload one-shot: {overload['one_shot']['completed']} completed, "
          f"{overload['one_shot']['shed_overloaded']} shed (structured)")
    print(f"overload retrying: {overload['retrying']['requests']} requests, "
          f"all completed")
    gate = report["gate_overhead"]
    print(f"gate overhead: {gate['overhead_fraction'] * 100:.1f}% "
          f"({gate['mean_seconds_gate_off']}s -> "
          f"{gate['mean_seconds_gate_on']}s per request)")
    if "note" in report:
        print(f"note: {report['note']}")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
