"""Table 2: code size of virtualised decoders.

Paper Table 2 reports, for each decoder: total code size, the split between
the decoder proper and the statically-linked C library, and the
deflate-compressed size in which the decoder is actually stored inside a
vxZIP archive (46-233 KB total, 26-130 KB compressed; the library accounts
for 10-30% of each image).

Here the decoders are vxc programs linked against the vxc runtime and shared
guest libraries; the compiler records the same provenance split, and the
compressed size uses the same fixed deflate algorithm vxZIP embeds decoders
with.  Absolute sizes are smaller than the paper's (our codecs are leaner
than libjpeg/JasPer/libvorbis); the shape preserved is the ordering (image
and audio decoders larger than the general-purpose ones), the library share,
and the roughly 2x deflate saving.
"""

from conftest import emit_report

from repro.bench.harness import decoder_size_rows
from repro.bench.reporting import format_kb, format_percent, format_table

#: Paper Table 2 (total KB, compressed KB) for the side-by-side column.
PAPER_TABLE2 = {
    "vxz": (46.0, 26.2),       # zlib
    "vxbwt": (71.1, 29.9),     # bzip2
    "vximg": (103.3, 48.6),    # jpeg
    "vxjp2": (220.2, 105.9),   # jp2
    "vxflac": (102.5, 47.6),   # flac
    "vxsnd": (233.4, 129.7),   # vorbis
}


def test_table2_decoder_sizes(benchmark, registry):
    rows_raw = benchmark.pedantic(
        lambda: decoder_size_rows(registry=registry), rounds=1, iterations=1
    )

    rows = []
    for row in rows_raw:
        paper_total, paper_compressed = PAPER_TABLE2[row["decoder"]]
        rows.append(
            [
                row["decoder"],
                format_kb(row["total_bytes"]),
                f"{format_kb(row['decoder_bytes'])} ({format_percent(row['decoder_share'])})",
                f"{format_kb(row['library_bytes'])} ({format_percent(row['library_share'])})",
                format_kb(row["compressed_bytes"]),
                f"{paper_total:.0f}KB / {paper_compressed:.0f}KB",
            ]
        )
    table = format_table(
        ["Decoder", "Total", "Decoder", "Runtime library", "Compressed (deflate)",
         "Paper total/compressed"],
        rows,
        title="Table 2: Code Size of Virtualized Decoders (reproduction)",
    )
    emit_report("table2_decoder_sizes", table)

    by_name = {row["decoder"]: row for row in rows_raw}
    # Shape assertions mirroring the paper's table:
    # 1. every decoder carries both decoder code and library code;
    for row in rows_raw:
        assert row["decoder_bytes"] > 0
        assert row["library_bytes"] > 0
        # 2. deflate shrinks each decoder image substantially (paper: ~2x).
        assert row["compressed_bytes"] < row["image_bytes"] * 0.8
    # 3. media decoders are bigger than the general-purpose pair, with the
    #    wavelet (jp2-class) decoder among the largest, as in the paper.
    general_max = max(by_name["vxz"]["total_bytes"], by_name["vxbwt"]["total_bytes"])
    assert by_name["vxjp2"]["total_bytes"] > general_max
    assert by_name["vximg"]["total_bytes"] > general_max
