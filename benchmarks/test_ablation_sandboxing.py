"""Ablation: data-sandboxing policy (full vs. write-only vs. none).

Paper section 6.3 discusses RISC software-fault-isolation numbers: full
sandboxing of loads and stores costs 15-20%, sandboxing writes only costs
about 4%, but the weaker model is not acceptable for VXA because a malicious
decoder could *read* secrets out of the archive reader's address space and
leak them into its public output stream.

The VXA VM's memory sandbox has the same three policy points.  This ablation
measures the vxz guest decoder under each policy to show where the checking
cost sits in this implementation, while the accompanying tests
(tests/test_vm_execution.py) show that only the full policy blocks wild reads.
"""

from conftest import emit_report

from repro.bench.harness import time_callable
from repro.bench.reporting import format_ratio, format_table
from repro.vm.machine import ENGINE_TRANSLATOR, VirtualMachine
from repro.vm.memory import CHECK_FULL, CHECK_NONE, CHECK_WRITE_ONLY


def _run(image, encoded, policy):
    vm = VirtualMachine(image, engine=ENGINE_TRANSLATOR, check_policy=policy)
    result = vm.decode(encoded)
    assert result.exit_code == 0
    return result


def test_ablation_sandboxing_policy(benchmark, workloads):
    workload = workloads["vxz"]
    image = workload.codec.guest_decoder_image()

    benchmark.pedantic(
        lambda: _run(image, workload.encoded, CHECK_FULL), rounds=1, iterations=1
    )
    # Best-of-3 per policy: the superblock engine's policy deltas (guards are
    # elided, not method calls swapped) are a few percent, so single-shot
    # timings would be dominated by scheduler noise.
    timings = {
        policy: time_callable(lambda p=policy: _run(image, workload.encoded, p),
                              repeats=3)
        for policy in (CHECK_FULL, CHECK_WRITE_ONLY, CHECK_NONE)
    }

    notes = {
        CHECK_FULL: "required for VXA: blocks read snooping and write corruption",
        CHECK_WRITE_ONLY: "RISC-SFI cheap mode (~4% there); leaks reads",
        CHECK_NONE: "no isolation; lower bound on checking cost",
    }
    baseline = timings[CHECK_NONE]
    rows = [
        [policy, f"{seconds * 1000:.0f}ms", format_ratio(seconds / baseline), notes[policy]]
        for policy, seconds in timings.items()
    ]
    table = format_table(
        ["Check policy", "Decode time", "Relative to unchecked", "Notes"],
        rows,
        title="Ablation: memory sandbox policy (paper section 6.3 discussion)",
    )
    emit_report("ablation_sandboxing", table)

    # Full checking can never be cheaper than unchecked execution, and the
    # write-only policy sits between the two (allowing measurement noise).
    assert timings[CHECK_FULL] >= timings[CHECK_NONE] * 0.9
    assert timings[CHECK_WRITE_ONLY] <= timings[CHECK_FULL] * 1.1
