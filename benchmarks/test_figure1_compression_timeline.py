"""Figure 1: timeline of data compression formats.

The figure's argument is that popular compression formats change every few
years, with the lossy-multimedia explosion of the 1990s accelerating the
churn.  This benchmark regenerates the timeline series and the per-decade
churn statistics derived from it.
"""

from conftest import emit_report

from repro.bench.reporting import format_table
from repro.bench.timelines import COMPRESSION_FORMATS, events_per_decade, format_churn_summary


def test_figure1_compression_timeline(benchmark):
    summary = benchmark(format_churn_summary)

    rows = [[event.year, event.name, event.category] for event in COMPRESSION_FORMATS]
    table = format_table(
        ["Year", "Format", "Category"],
        rows,
        title="Figure 1: Timeline of Data Compression Formats (reproduction)",
    )
    per_decade = events_per_decade(COMPRESSION_FORMATS)
    decade_rows = [[decade, count] for decade, count in per_decade.items()]
    table += "\n\n" + format_table(
        ["Decade", "New formats introduced"], decade_rows,
        title="Format churn per decade",
    )
    table += (
        f"\n\nNew compression formats per year (1977-2005): "
        f"{summary['formats_per_year']}"
    )
    emit_report("figure1_compression_timeline", table)

    # Shape assertions: the timeline spans the PC era, covers all four content
    # categories, and the 1990s/2000s show the multimedia acceleration the
    # paper describes (more new formats than the preceding decades combined).
    years = [event.year for event in COMPRESSION_FORMATS]
    assert min(years) <= 1980 and max(years) >= 2003
    categories = {event.category for event in COMPRESSION_FORMATS}
    assert categories == {"general", "image", "audio", "video"}
    early = sum(count for decade, count in per_decade.items() if decade in ("1970s", "1980s"))
    late = sum(count for decade, count in per_decade.items() if decade in ("1990s", "2000s"))
    assert late > early
    assert summary["compression_formats_total"] >= 15
