"""Figure 2: timeline of processor architectures.

The counterpart to Figure 1: across the same decades the dominant x86
architecture absorbed only a few backward-compatible changes (32-bit in
1985, vector extensions from 1996, 64-bit in 2003), and no competing
architecture displaced it.  Instruction encodings are therefore historically
more durable than data encodings -- the observation VXA is built on.
"""

from conftest import emit_report

from repro.bench.reporting import format_table
from repro.bench.timelines import (
    COMPRESSION_FORMATS,
    PROCESSOR_ARCHITECTURES,
    format_churn_summary,
)


def test_figure2_architecture_timeline(benchmark):
    summary = benchmark(format_churn_summary)

    rows = [[event.year, event.name, event.category] for event in PROCESSOR_ARCHITECTURES]
    table = format_table(
        ["Year", "Milestone", "Category"],
        rows,
        title="Figure 2: Timeline of Processor Architectures (reproduction)",
    )
    table += (
        "\n\nHeadline comparison (the durability argument of section 1):\n"
        f"  new compression formats 1977-2005   : {summary['compression_formats_total']}\n"
        f"  x86 architectural changes 1978-2005 : {summary['x86_architectural_changes_total']}\n"
        f"  churn ratio (formats per x86 change): {summary['churn_ratio']}"
    )
    emit_report("figure2_architecture_timeline", table)

    x86_changes = [e for e in PROCESSOR_ARCHITECTURES if e.category == "x86-change"]
    other = [e for e in PROCESSOR_ARCHITECTURES if e.category == "other"]
    # Shape assertions: only a handful of x86 changes (the paper names three
    # classes: 32-bit, vector extensions, 64-bit), several non-x86 contenders,
    # and format churn far exceeding architecture churn.
    assert 3 <= len(x86_changes) <= 6
    assert any("32-bit" in e.name for e in x86_changes)
    assert any("64" in e.name for e in x86_changes)
    assert any("MMX" in e.name or "SSE" in e.name for e in x86_changes)
    assert len(other) >= 4
    assert len(COMPRESSION_FORMATS) > 2 * len(x86_changes)
    assert summary["churn_ratio"] >= 2.0
