"""Ablation: VM reuse vs. re-initialisation across many small files.

Paper section 2.4: when an archive contains many files sharing one decoder,
the reader may either re-initialise the VM with a pristine decoder image per
file (safe default) or keep the VM state alive and feed it file after file
through the ``done`` protocol, which "may improve performance, especially on
archives containing many small files" at the cost of potential cross-file
information leakage -- hence the recommendation to re-initialise whenever
security attributes change.
"""

import io

from conftest import emit_report

import repro.api as vxa
from repro.bench.harness import time_callable
from repro.bench.reporting import format_ratio, format_table
from repro.core.policy import SecurityAttributes, VmReusePolicy, reuse_groups
from repro.vm.machine import ENGINE_TRANSLATOR, VirtualMachine
from repro.workloads.text import synthetic_source_file

NUM_FILES = 20
FILE_SIZE = 600


def test_ablation_vm_reuse(benchmark, registry):
    codec = registry.get("vxz")
    files = [
        synthetic_source_file(FILE_SIZE, seed=200 + index).encode()
        for index in range(NUM_FILES)
    ]
    encoded_files = [codec.encode(data) for data in files]
    image = codec.guest_decoder_image()

    def decode_fresh_each_time():
        vm = VirtualMachine(image, engine=ENGINE_TRANSLATOR)
        outputs = []
        for encoded in encoded_files:
            outputs.append(vm.decode(encoded, fresh=True).output)
        return outputs

    def decode_with_reuse():
        vm = VirtualMachine(image, engine=ENGINE_TRANSLATOR)
        return [result.output for result in vm.decode_many(encoded_files)]

    reuse_outputs = benchmark.pedantic(decode_with_reuse, rounds=1, iterations=1)
    fresh_seconds = time_callable(decode_fresh_each_time)
    reuse_seconds = time_callable(decode_with_reuse)
    fresh_outputs = decode_fresh_each_time()

    assert reuse_outputs == fresh_outputs == files      # same data either way

    speedup = fresh_seconds / reuse_seconds
    rows = [
        ["re-initialise per file (safe default)", f"{fresh_seconds * 1000:.0f}ms", "1.00x"],
        ["reuse VM via done protocol", f"{reuse_seconds * 1000:.0f}ms",
         format_ratio(speedup) + " faster"],
    ]
    table = format_table(
        ["Policy", f"Time for {NUM_FILES} small files", "Relative"],
        rows,
        title="Ablation: VM reuse vs re-initialisation (paper section 2.4)",
    )

    # Also show how the attribute-aware policy groups a mixed archive.
    mixed = [(f"file{i}", SecurityAttributes(mode=0o644 if i % 4 else 0o600))
             for i in range(8)]
    groups = reuse_groups(mixed, VmReusePolicy.REUSE_SAME_ATTRIBUTES)
    table += (
        "\n\nreuse-same-attributes grouping of a mixed archive "
        f"(8 files, every 4th private): {len(groups)} VM initialisations"
    )

    # End-to-end through the facade: the DecoderSession enforces the policy
    # against each member's recorded security attributes during a whole-
    # archive integrity check, and counts reuse vs re-initialisation.
    buffer = io.BytesIO()
    with vxa.create(buffer) as builder:
        for index in range(8):
            attributes = SecurityAttributes(mode=0o644 if index % 4 else 0o600)
            builder.add(f"batch/file{index}.txt",
                        synthetic_source_file(FILE_SIZE, seed=300 + index).encode(),
                        attributes=attributes)
    session_rows = []
    for policy in VmReusePolicy:
        buffer.seek(0)
        with vxa.open(buffer) as archive:
            report = archive.check(reuse=policy)
        assert report.ok
        session_rows.append([policy.value, report.vm_initialisations,
                             report.vm_reuses])
    table += "\n\n" + format_table(
        ["DecoderSession policy", "VM initialisations", "VM state reuses"],
        session_rows,
        title="Facade integrity check over 8 mixed-attribute files, one shared decoder",
    )
    emit_report("ablation_vm_reuse", table)

    # Reuse must help on many-small-file archives (translation and image load
    # are amortised); require a measurable improvement.
    assert speedup > 1.15
    assert 1 < len(groups) < 8

    by_policy = {row[0]: row for row in session_rows}
    # Safe default: a pristine image per file, nothing reused.
    assert by_policy["always-fresh"][1:] == [8, 0]
    # Full reuse: one initialisation, every other decode rides the warm VM.
    assert by_policy["always-reuse"][1:] == [1, 7]
    # Attribute-aware: re-initialise exactly when the protection domain flips
    # (every 4th file is 0o600), reuse inside each run of equal attributes.
    fresh, reused = by_policy["reuse-same-attributes"][1:]
    assert fresh + reused == 8
    assert 1 < fresh < 8
