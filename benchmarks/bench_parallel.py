"""Serial vs N-worker extraction wall clock; writes ``BENCH_parallel.json``.

Stand-alone perf tracker for the :mod:`repro.parallel` engine (run it from
the repo root)::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke] [--jobs 2,4]

The workload is a multi-member, mixed-decoder archive (every Figure-7
decoder contributes several members), extracted in ``vxa`` mode so every
member runs its archived decoder -- the embarrassingly parallel work the
paper's architecture promises.  Each parallel configuration is verified
byte-identical against the serial output before its timing is recorded.

Decoder VMs are CPU-bound pure Python, so wall-clock speedup is bounded by
physical cores: on a multi-core machine the process executor approaches
``min(jobs, cores)``x (cache-affine sharding keeps workers from paying each
other's translations); on a single-core machine the run records ~1x and
says so in the JSON rather than inventing a number.  ``--smoke`` is the CI
entry point: a small archive, ``jobs=2``, and a hard correctness check so
concurrency regressions fail fast even where timing is meaningless.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import repro.api as vxa                                            # noqa: E402
from repro.api.options import EXECUTOR_PROCESS, EXECUTOR_THREAD    # noqa: E402
from repro.core.policy import SecurityAttributes, VmReusePolicy    # noqa: E402
from repro.formats.ppm import write_ppm                            # noqa: E402
from repro.formats.wav import write_wav                            # noqa: E402
from repro.workloads import (                                      # noqa: E402
    synthetic_music,
    synthetic_photo,
    synthetic_source_tree_bytes,
)

OUTPUT_PATH = REPO_ROOT / "BENCH_parallel.json"


def build_archive(path: pathlib.Path, *, smoke: bool) -> dict:
    """A mixed-decoder archive with enough members to shard meaningfully."""
    text = synthetic_source_tree_bytes(6_000 if smoke else 40_000, seed=11)
    photo = synthetic_photo(*(24, 16) if smoke else (72, 48), seed=12)
    music = synthetic_music(seconds=0.05 if smoke else 0.4,
                            sample_rate=8_000, channels=1, seed=13)
    ppm = write_ppm(photo)
    wav = write_wav(music)
    text_members = 4 if smoke else 8
    media_members = 0 if smoke else 4

    per_decoder: dict[str, int] = {}
    with vxa.create(path) as builder:
        def add(name: str, data: bytes, codec: str, index: int) -> None:
            # Alternate protection domains so reuse policies make real
            # decisions, exactly as a multi-user archive would.
            attributes = SecurityAttributes(owner=index % 2, group=0, mode=0o644)
            builder.add(name, data, codec=codec, attributes=attributes)
            per_decoder[codec] = per_decoder.get(codec, 0) + 1

        for index in range(text_members):
            start = (index * 977) % max(1, len(text) - 4_096)
            slice_ = text[start:start + (2_048 if smoke else 12_288)]
            add(f"tree{index}.txt", slice_, "vxz", index)
            add(f"tree{index}.bwt.txt", slice_, "vxbwt", index)
        for index in range(media_members):
            add(f"photo{index}.ppm", ppm, "vximg", index)
            add(f"photo{index}.jp2.ppm", ppm, "vxjp2", index)
            add(f"clip{index}.wav", wav, "vxflac", index)
            add(f"clip{index}.snd.wav", wav, "vxsnd", index)
    return {
        "members": sum(per_decoder.values()),
        "per_decoder": per_decoder,
        "archive_bytes": path.stat().st_size,
    }


def _matches(reference: pathlib.Path, candidate: pathlib.Path) -> bool:
    for path in reference.iterdir():
        other = candidate / path.name
        if not other.is_file() or other.read_bytes() != path.read_bytes():
            return False
    return True


def run_benchmark(jobs_list: list[int], *, smoke: bool,
                  executor: str | None = None) -> dict:
    cpu_count = os.cpu_count() or 1
    if executor is None:
        executor = EXECUTOR_PROCESS if cpu_count > 1 else EXECUTOR_THREAD
    work_dir = pathlib.Path(tempfile.mkdtemp(prefix="bench-parallel-"))
    try:
        archive_path = work_dir / "bench.zip"
        archive_info = build_archive(archive_path, smoke=smoke)
        options = vxa.ReadOptions(
            mode=vxa.MODE_VXA,
            reuse=VmReusePolicy.REUSE_SAME_ATTRIBUTES,
            executor=executor,
        )

        def timed_extract(jobs: int, out: pathlib.Path) -> tuple[float, dict]:
            with vxa.open(archive_path, options.with_changes(jobs=jobs)) as archive:
                start = time.perf_counter()
                archive.extract_into(out)
                elapsed = time.perf_counter() - start
                return elapsed, archive.session.stats.as_dict()

        serial_dir = work_dir / "serial"
        # Warm the OS page cache / imports out of the first measurement.
        timed_extract(1, work_dir / "warmup")
        serial_seconds, serial_stats = timed_extract(1, serial_dir)

        runs = []
        for jobs in jobs_list:
            out = work_dir / f"jobs{jobs}"
            seconds, stats = timed_extract(jobs, out)
            identical = _matches(serial_dir, out)
            if not identical:
                raise SystemExit(
                    f"FATAL: jobs={jobs} output diverged from serial")
            runs.append({
                "jobs": jobs,
                "seconds": round(seconds, 4),
                "speedup_vs_serial": round(serial_seconds / seconds, 3),
                "identical_to_serial": identical,
                "stats": stats,
            })

        best = max((run["speedup_vs_serial"] for run in runs), default=0.0)
        report = {
            "benchmark": "parallel extraction (repro.parallel)",
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "smoke": smoke,
            "platform": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cpu_count": cpu_count,
            },
            "executor": executor,
            "options": {"mode": "vxa",
                        "reuse": VmReusePolicy.REUSE_SAME_ATTRIBUTES.value},
            "archive": archive_info,
            "serial_seconds": round(serial_seconds, 4),
            "serial_stats": serial_stats,
            "runs": runs,
            "best_speedup": best,
        }
        if cpu_count < max(jobs_list, default=1):
            report["note"] = (
                f"wall-clock speedup is bounded by the {cpu_count} available "
                f"core(s): decoder VMs are CPU-bound, so N workers cannot "
                f"beat min(N, cores)x; rerun on a multi-core host for the "
                f"scaling figure")
        return report
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small archive + jobs=2 correctness gate (CI)")
    parser.add_argument("--jobs", default=None,
                        help="comma-separated worker counts (default: 2,4)")
    parser.add_argument("--executor", default=None,
                        choices=("process", "thread"),
                        help="pool flavour (default: process on multi-core)")
    parser.add_argument("--output", default=str(OUTPUT_PATH),
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    if args.jobs:
        jobs_list = [int(value) for value in args.jobs.split(",")]
    else:
        jobs_list = [2] if args.smoke else [2, 4]
    report = run_benchmark(jobs_list, smoke=args.smoke, executor=args.executor)

    output = pathlib.Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"serial: {report['serial_seconds']:.3f}s "
          f"({report['archive']['members']} members, "
          f"{len(report['archive']['per_decoder'])} decoder images)")
    for run in report["runs"]:
        print(f"jobs={run['jobs']}: {run['seconds']:.3f}s "
              f"speedup {run['speedup_vs_serial']:.2f}x "
              f"identical={run['identical_to_serial']}")
    if "note" in report:
        print(f"note: {report['note']}")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
