"""Table 1: decoders implemented in the vxZIP/vxUnZIP prototype.

Paper Table 1 lists six decoders (two general-purpose, two still-image, two
audio), where each comes from, and the uncompressed format its decoder
produces.  This benchmark regenerates the same rows from the live codec
registry and times a full registry + guest-decoder build.
"""

from conftest import emit_report

from repro.bench.reporting import format_table
from repro.codecs.registry import CodecRegistry


def test_table1_decoder_inventory(benchmark, registry):
    def build_inventory():
        # Rebuild a registry from scratch so the benchmark measures the cost
        # of assembling the codec plug-in set the archiver starts from.
        fresh = CodecRegistry()
        return fresh.inventory()

    rows_raw = benchmark(build_inventory)

    category_titles = {
        "general": "General-Purpose Codecs",
        "image": "Still Image Codecs",
        "audio": "Audio Codecs",
    }
    rows = []
    for category in ("general", "image", "audio"):
        rows.append([f"-- {category_titles[category]} --", "", "", ""])
        for row in rows_raw:
            if row["category"] != category:
                continue
            rows.append(
                [
                    row["decoder"],
                    row["description"],
                    row["availability"],
                    row["output_format"],
                ]
            )
    table = format_table(
        ["Decoder", "Description", "Availability", "Output Format"],
        rows,
        title="Table 1: Decoders Implemented in the vxZIP/vxUnZIP Prototype (reproduction)",
    )
    emit_report("table1_decoder_inventory", table)

    # The paper's shape: six decoders, 2 general / 2 image / 2 audio, and the
    # three uncompressed output formats (raw data, BMP, WAV).
    assert len(rows_raw) == 6
    categories = [row["category"] for row in rows_raw]
    assert categories.count("general") == 2
    assert categories.count("image") == 2
    assert categories.count("audio") == 2
    assert {row["output_format"] for row in rows_raw} == {
        "raw data",
        "BMP image",
        "WAV audio",
    }
