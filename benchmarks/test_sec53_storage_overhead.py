"""Section 5.3: decoder storage overhead and its amortisation.

The paper's worked example: a 2.5-minute song compressed with the lossy Ogg
codec occupies 2.2 MB, so the 130 KB archived Vorbis decoder is a 6% space
overhead for a single-song archive, 0.6% for a ten-song album, and the FLAC
decoder against a 24 MB lossless file is a negligible 0.2%.

This benchmark rebuilds that table with the reproduction's codecs: archives
holding 1 and 10 synthetic songs, lossy (vxsnd) and lossless (vxflac), and
reports decoder-bytes / archive-bytes.  The absolute sizes differ (shorter
songs, leaner decoders) but the amortisation shape -- overhead falling
roughly as 1/N and the lossless case being far below the lossy one -- is the
reproduced result.
"""

import io

from conftest import emit_report

import repro.api as vxa
from repro.bench.reporting import format_kb, format_percent, format_table
from repro.formats.wav import write_wav
from repro.workloads.audio import synthetic_music

SONG_SECONDS = 1.5
SAMPLE_RATE = 22050


def _songs(count: int) -> dict[str, bytes]:
    return {
        f"album/track{index:02d}.wav": write_wav(
            synthetic_music(seconds=SONG_SECONDS, sample_rate=SAMPLE_RATE,
                            channels=2, seed=100 + index)
        )
        for index in range(count)
    }


def _build_archive(files: dict[str, bytes], *, lossy: bool):
    buffer = io.BytesIO()
    with vxa.create(buffer, vxa.WriteOptions(allow_lossy=lossy)) as builder:
        for name, data in files.items():
            builder.add(name, data, codec="vxsnd" if lossy else "vxflac")
        manifest = builder.finish()
    return buffer.getvalue(), manifest


def test_sec53_storage_overhead(benchmark):
    one_song = _songs(1)
    ten_songs = _songs(10)

    def build_all():
        return {
            ("lossy", 1): _build_archive(one_song, lossy=True),
            ("lossy", 10): _build_archive(ten_songs, lossy=True),
            ("lossless", 1): _build_archive(one_song, lossy=False),
            ("lossless", 10): _build_archive(ten_songs, lossy=False),
        }

    archives = benchmark.pedantic(build_all, rounds=1, iterations=1)

    paper_reference = {
        ("lossy", 1): "6% (130KB Ogg decoder vs 2.2MB song)",
        ("lossy", 10): "0.6% (ten-song album)",
        ("lossless", 1): "0.2% (48KB FLAC decoder vs 24MB file)",
        ("lossless", 10): "(not reported)",
    }
    rows = []
    overheads = {}
    for (kind, count), (archive, manifest) in archives.items():
        overhead = manifest.decoder_overhead_fraction
        overheads[(kind, count)] = overhead
        rows.append(
            [
                kind,
                count,
                format_kb(len(archive)),
                format_kb(manifest.decoder_overhead_bytes),
                format_percent(overhead),
                paper_reference[(kind, count)],
            ]
        )
    table = format_table(
        ["Codec class", "Songs", "Archive size", "Decoder bytes", "Decoder overhead",
         "Paper reference point"],
        rows,
        title="Section 5.3: Decoder Storage Overhead (reproduction)",
    )
    emit_report("sec53_storage_overhead", table)

    # Shape assertions: overhead is modest for a single file, amortises by
    # roughly the number of files sharing the decoder, and the lossless
    # archive (much larger payload per decoder byte) sits well below the
    # lossy one.
    assert overheads[("lossy", 1)] < 0.5
    assert overheads[("lossy", 10)] < overheads[("lossy", 1)] / 4
    assert overheads[("lossless", 1)] < overheads[("lossy", 1)]
    assert overheads[("lossless", 10)] < overheads[("lossless", 1)]
