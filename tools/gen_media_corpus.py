#!/usr/bin/env python3
"""Regenerate the corrupted-archive corpus for the media-chaos CI job.

No corrupted binaries are committed to the repository: this tool rebuilds
the whole corpus deterministically from synthetic seed archives, so the
fixtures can never rot out of sync with the writer.  Each corpus case is a
seed archive plus one media fault from :mod:`repro.faults.media`
(``truncate-tail``, ``flip-bytes`` at structurally interesting offsets,
``torn-finalize``), paired with the classification ``vxunzip check --deep``
must assign it.

``--verify`` additionally runs the acceptance drill over the generated
corpus: every salvageable case must repair into a clean archive whose
surviving members re-extract byte-identically to the seed's.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import repro.api as vxa
from repro.api.options import EXECUTOR_THREAD
from repro.faults.media import TornFinalize, flip_bytes, truncate_tail
from repro.repair import deep_check, repair_archive
from repro.workloads import synthetic_log_bytes
from repro.zipformat.reader import ZipReader


def seed_members() -> dict[str, bytes]:
    members = {f"log{index}.txt": synthetic_log_bytes(1200 + 90 * index,
                                                      seed=index)
               for index in range(4)}
    members["raw.bin"] = bytes(range(256)) * 16
    return members


def build_seed(path: pathlib.Path, members: dict[str, bytes]) -> bytes:
    with vxa.create(path) as builder:
        for name, data in members.items():
            if name.endswith(".bin"):
                builder.add(name, data, store_raw=True)
            else:
                builder.add(name, data, codec="vxz")
    return path.read_bytes()


def generate(corpus: pathlib.Path) -> list[dict]:
    """Write every corpus case under ``corpus``; returns the manifest."""
    corpus.mkdir(parents=True, exist_ok=True)
    members = seed_members()
    seed_path = corpus / "seed.vxa"
    seed = build_seed(seed_path, members)
    reader = ZipReader(seed)
    victim = next(entry for entry in reader.entries
                  if entry.name == "log1.txt")
    victim_start, victim_size = reader.member_extent(victim)
    decoder_offset = min(row.offset for row in reader.digest_table.extents
                         if not row.name)

    cases = [
        {"name": "clean", "expect": "clean", "lost": [],
         "data": seed},
        {"name": "truncate-tail-directory", "expect": "salvageable",
         "lost": [],
         "data": truncate_tail(
             seed, len(seed) - (reader.directory_offset
                                + reader.directory_size // 2))},
        {"name": "flip-payload", "expect": "salvageable",
         "lost": ["log1.txt"],
         "data": flip_bytes(seed, victim_start + victim_size - 24, 8,
                            seed=101)},
        {"name": "flip-central-directory", "expect": "salvageable",
         "lost": [],
         "data": flip_bytes(seed, reader.directory_offset + 16, 6, seed=102)},
        {"name": "flip-decoder-extent", "expect": "salvageable",
         "lost": [name for name in members if name != "raw.bin"],
         "data": flip_bytes(seed, decoder_offset + 48, 4, seed=103)},
    ]

    torn_target = corpus / "never-finalized.vxa"
    try:
        with vxa.create(torn_target,
                        vxa.WriteOptions(finalize_fault="mid-directory")
                        ) as builder:
            for name, data in members.items():
                builder.add(name, data, codec=None if name.endswith(".bin")
                            else "vxz", store_raw=name.endswith(".bin"))
    except TornFinalize:
        pass
    [torn_temp] = list(corpus.glob("never-finalized.vxa.vxa-tmp.*"))
    cases.append({"name": "torn-finalize", "expect": "salvageable",
                  "lost": [], "data": torn_temp.read_bytes()})
    torn_temp.unlink()

    manifest = []
    for case in cases:
        path = corpus / f"{case['name']}.vxa"
        path.write_bytes(case["data"])
        manifest.append({"name": case["name"], "path": str(path),
                         "expect": case["expect"], "lost": case["lost"]})
    (corpus / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return manifest


def verify(corpus: pathlib.Path, manifest: list[dict], jobs: int) -> int:
    """The acceptance drill: classification, repair, byte-identity."""
    members = seed_members()
    failures = 0
    for case in manifest:
        path = pathlib.Path(case["path"])
        assessment = deep_check(path)
        got = assessment.classification()
        if got != case["expect"]:
            print(f"FAIL {case['name']}: classified {got}, "
                  f"expected {case['expect']}")
            failures += 1
            continue
        if got == "unrecoverable":
            continue
        repaired = path.with_suffix(".repaired.vxa")
        result = repair_archive(path, repaired)
        if set(result.dropped) != set(case["lost"]):
            print(f"FAIL {case['name']}: dropped {sorted(result.dropped)}, "
                  f"expected {sorted(case['lost'])}")
            failures += 1
            continue
        if deep_check(repaired).classification() != "clean":
            print(f"FAIL {case['name']}: repaired archive is not clean")
            failures += 1
            continue
        out = path.with_suffix(".out")
        options = vxa.ReadOptions(mode=vxa.MODE_VXA, jobs=jobs,
                                  executor=EXECUTOR_THREAD)
        with vxa.open(repaired, options) as archive:
            report = archive.extract_into(out)
        if report.failures:
            print(f"FAIL {case['name']}: repaired members failed to extract")
            failures += 1
            continue
        survivors = set(members) - set(case["lost"])
        mismatched = [name for name in survivors
                      if (out / name).read_bytes() != members[name]]
        if mismatched:
            print(f"FAIL {case['name']}: bytes differ for {mismatched}")
            failures += 1
            continue
        print(f"ok {case['name']}: {got}, {len(survivors)} member(s) "
              f"recovered byte-identically (jobs={jobs})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="media-corpus",
                        help="corpus directory (default: ./media-corpus)")
    parser.add_argument("--verify", action="store_true",
                        help="run the repair acceptance drill on the corpus")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker count for the verification extracts")
    args = parser.parse_args(argv)
    corpus = pathlib.Path(args.output)
    manifest = generate(corpus)
    print(f"generated {len(manifest)} corpus case(s) under {corpus}")
    if not args.verify:
        return 0
    failures = verify(corpus, manifest, args.jobs)
    if failures:
        print(f"{failures} corpus case(s) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
