#!/usr/bin/env python3
"""AST lint: translated-code caches are only mutated under their locks.

Two concurrency invariants keep the in-process worker pool sound, and both
are easy to break silently when refactoring:

1. every mutation of :class:`repro.vm.code_cache.CodeCache` state
   (``fragments``/``instructions``/``known``/``analysis`` and the counters)
   happens inside a ``with self.lock:`` block -- plain *reads* are
   deliberately lock-free (an atomic dict read with a tolerated racy miss),
   so only mutations are checked;
2. every access (read or write) to the process-wide compile memo
   ``_CODE_MEMO`` in :mod:`repro.vm.translator` happens inside a
   ``with _CODE_MEMO_LOCK:`` block.

This checker parses the source with :mod:`ast` -- no imports, no runtime
monkey-patching -- so it runs anywhere Python runs and is wired into CI and
``tests/test_lint_locks.py``.  Exit status 0 means clean; 1 means violations
(printed one per line as ``file:line: message``).
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: CodeCache attributes that constitute lock-protected state.
CACHE_STATE = {
    "fragments", "instructions", "known", "analysis",
    "hits", "misses", "chained_branches", "retranslations", "evictions",
}

#: Method names that mutate the container they are called on.
MUTATING_METHODS = {
    "clear", "add", "pop", "popitem", "update", "setdefault",
    "append", "extend", "remove", "discard", "insert",
}

#: Methods that may touch cache state without the lock (run before the
#: object can be shared).
EXEMPT_METHODS = {"__init__"}


class _LockTracker(ast.NodeVisitor):
    """Base visitor tracking nesting inside ``with <lock>:`` blocks."""

    def __init__(self, path: pathlib.Path):
        self.path = path
        self.lock_depth = 0
        self.violations: list[tuple[pathlib.Path, int, str]] = []

    def _is_lock_expr(self, node: ast.expr) -> bool:
        raise NotImplementedError

    def visit_With(self, node: ast.With) -> None:
        held = any(self._is_lock_expr(item.context_expr)
                   for item in node.items)
        if held:
            self.lock_depth += 1
        self.generic_visit(node)
        if held:
            self.lock_depth -= 1

    def _report(self, node: ast.AST, message: str) -> None:
        self.violations.append((self.path, node.lineno, message))


class _CacheMethodChecker(_LockTracker):
    """Checks one CodeCache method body for unlocked state mutations."""

    def __init__(self, path: pathlib.Path, method: str):
        super().__init__(path)
        self.method = method
        #: Local names aliasing ``self.<state attr>`` (e.g. the
        #: ``fragments = self.fragments`` idiom in ``store``).
        self.aliases: dict[str, str] = {}

    def _is_lock_expr(self, node: ast.expr) -> bool:
        return (isinstance(node, ast.Attribute) and node.attr == "lock"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    def _state_attr(self, node: ast.expr) -> str | None:
        """The cache state attribute ``node`` refers to, if any."""
        if (isinstance(node, ast.Attribute) and node.attr in CACHE_STATE
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        if isinstance(node, ast.Name) and node.id in self.aliases:
            return self.aliases[node.id]
        return None

    def _check_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Subscript):
            target = target.value
        attr = self._state_attr(target)
        if attr is not None and not self.lock_depth:
            self._report(
                node,
                f"CodeCache.{self.method} mutates self.{attr} "
                f"outside `with self.lock`")

    def visit_Assign(self, node: ast.Assign) -> None:
        # Record aliases first so `x = self.fragments` marks x.
        for target in node.targets:
            if isinstance(target, ast.Name):
                attr = self._state_attr(node.value)
                if attr is not None:
                    self.aliases[target.id] = attr
                    continue
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            attr = self._state_attr(func.value)
            if attr is not None and not self.lock_depth:
                self._report(
                    node,
                    f"CodeCache.{self.method} calls "
                    f"self.{attr}.{func.attr}() outside `with self.lock`")
        self.generic_visit(node)


class _MemoChecker(_LockTracker):
    """Checks that every ``_CODE_MEMO`` access is under ``_CODE_MEMO_LOCK``."""

    def _is_lock_expr(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id == "_CODE_MEMO_LOCK"

    def visit_Name(self, node: ast.Name) -> None:
        if node.id == "_CODE_MEMO" and not self.lock_depth:
            # The module-level definition itself is the only legal
            # unlocked mention (nothing else can be running yet).
            if node.col_offset == 0 and isinstance(node.ctx, ast.Store):
                return
            self._report(
                node,
                "_CODE_MEMO accessed outside `with _CODE_MEMO_LOCK`")


def _parse(path: pathlib.Path) -> ast.Module:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def check_code_cache(path: pathlib.Path) -> list[tuple[pathlib.Path, int, str]]:
    tree = _parse(path)
    violations: list[tuple[pathlib.Path, int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "CodeCache":
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in EXEMPT_METHODS:
                    continue
                checker = _CacheMethodChecker(path, item.name)
                checker.visit(item)
                violations.extend(checker.violations)
    return violations


def check_code_memo(path: pathlib.Path) -> list[tuple[pathlib.Path, int, str]]:
    checker = _MemoChecker(path)
    checker.visit(_parse(path))
    return checker.violations


def run(root: pathlib.Path = REPO_ROOT) -> list[tuple[pathlib.Path, int, str]]:
    violations = []
    violations += check_code_cache(root / "src" / "repro" / "vm" / "code_cache.py")
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        violations += check_code_memo(path)
    return violations


def main() -> int:
    violations = run()
    for path, line, message in violations:
        print(f"{path.relative_to(REPO_ROOT)}:{line}: {message}")
    if violations:
        print(f"{len(violations)} lock violation(s)", file=sys.stderr)
        return 1
    print("lint_locks: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
